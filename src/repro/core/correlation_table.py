"""The main-memory correlation table — paper Sections 3.4.1-3.4.3.

The table is a direct-mapped array of fixed-size entries living in a
contiguous physical-memory region handed out by the OS.  Each entry packs,
within one memory transfer unit (a 64 B cache line), a tag, per-address
LRU information and up to N compressed prefetch addresses (the paper notes
eight addresses fit easily in 64 B once the upper address bytes are shared
with the tag).

Semantics implemented:

* **lookup(key)** — one low-priority memory read; returns the entry's
  prefetch addresses on a tag match.
* **train(key, payload)** — the EMAB-driven update: one read (to fetch the
  entry) and one write.  On a tag match, payload addresses refresh
  matching resident addresses or replace the least-recently-used ones; on
  a mismatch the entry is reallocated wholesale.  Older-epoch addresses
  come first in the payload and are therefore guaranteed slots.  Addresses
  inserted by one training step never evict each other, which preserves
  the old-epoch priority rule.
* **touch(index, line)** — the prefetch-buffer-hit LRU refresh: one
  lowest-priority memory write.  This is the mechanism that lets an entry
  "dynamically select between prefetch depth and width": addresses that
  keep producing useful prefetches stay most-recently-used and survive
  later training replacements.

The table object also *owns* its physical allocation via
:class:`~repro.memory.main_memory.MainMemory`, so the prefetcher's
active/inactive state machine (Section 3.4.1) can be exercised.

State is array-backed: a preallocated tag array (``-1`` = free, valid
tags are non-negative line numbers) parallel to an address-map array,
so the hot lookup path is one hash, one indexed compare and — only on a
hit — one sort, with no per-entry objects allocated on the train path.
:class:`TableEntry` survives as the diagnostic *view* type constructed
on demand by :meth:`CorrelationTable.entry_at`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..memory.main_memory import Allocation, MainMemory, OutOfMemoryError

__all__ = ["TableStats", "TableEntry", "CorrelationTable"]

#: Multiplicative hash constant (Knuth) used to spread structured line
#: addresses across the direct-mapped table.
_HASH_MULT = 0x9E3779B97F4A7C15
_HASH_MASK = (1 << 64) - 1


@dataclass
class TableStats:
    lookups: int = 0
    lookup_hits: int = 0
    trains: int = 0
    allocations: int = 0
    tag_conflicts: int = 0
    address_replacements: int = 0
    touches: int = 0

    @property
    def lookup_hit_ratio(self) -> float:
        return self.lookup_hits / self.lookups if self.lookups else 0.0


@dataclass
class TableEntry:
    """One direct-mapped entry: tag + recency-stamped prefetch addresses."""

    tag: int
    #: line -> last-use stamp; insertion bumps the shared stamp counter.
    addrs: dict[int, int] = field(default_factory=dict)

    def ordered_addresses(self) -> list[int]:
        """Prefetch addresses, most recently used first."""
        return sorted(self.addrs, key=self.addrs.__getitem__, reverse=True)


class CorrelationTable:
    """Direct-mapped, main-memory-resident correlation table."""

    def __init__(
        self,
        n_entries: int,
        addrs_per_entry: int = 8,
        entry_bytes: int = 64,
        memory: MainMemory | None = None,
    ) -> None:
        if n_entries <= 0:
            raise ValueError("table needs at least one entry")
        if addrs_per_entry <= 0:
            raise ValueError("addrs_per_entry must be positive")
        self.n_entries = n_entries
        self.addrs_per_entry = addrs_per_entry
        self.entry_bytes = entry_bytes
        self._tags: list[int] = [-1] * n_entries
        self._addrs: list[dict[int, int] | None] = [None] * n_entries
        self._stamp = 0
        self.stats = TableStats()
        self.allocation: Allocation | None = None
        if memory is not None:
            self.attach_memory(memory)

    # ------------------------------------------------------------------
    # Physical residency (Section 3.4.1)
    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        return self.n_entries * self.entry_bytes

    def attach_memory(self, memory: MainMemory) -> Allocation:
        """Request the OS for the table's physical region."""
        self.allocation = memory.allocate(self.size_bytes)
        return self.allocation

    def detach_memory(self) -> None:
        """The OS reclaimed the region: all learned state is lost."""
        self.allocation = None
        self._tags = [-1] * self.n_entries
        self._addrs = [None] * self.n_entries

    @property
    def is_resident(self) -> bool:
        return self.allocation is not None

    def entry_physical_address(self, index: int) -> int:
        """Physical address of entry ``index`` (base + index * size)."""
        if self.allocation is None:
            raise OutOfMemoryError("correlation table has no physical backing")
        return self.allocation.base + index * self.entry_bytes

    # ------------------------------------------------------------------
    def index_of(self, key_line: int) -> int:
        """Direct-mapped index for a key line address."""
        return ((key_line * _HASH_MULT) & _HASH_MASK) % self.n_entries

    # ------------------------------------------------------------------
    def lookup(self, key_line: int) -> tuple[int, list[int]] | None:
        """Read the entry for ``key_line``.

        Returns ``(index, prefetch_lines_mru_first)`` on a tag match,
        None otherwise.  The caller charges one entry-sized memory read.
        """
        self.stats.lookups += 1
        index = ((key_line * _HASH_MULT) & _HASH_MASK) % self.n_entries
        if self._tags[index] != key_line:
            return None
        self.stats.lookup_hits += 1
        addrs = self._addrs[index]
        return index, sorted(addrs, key=addrs.__getitem__, reverse=True)

    def train(self, key_line: int, payload: tuple[int, ...] | list[int]) -> int:
        """Insert/update the entry for ``key_line`` with EMAB payload.

        Returns the entry index.  The caller charges one read + one write.
        """
        self.stats.trains += 1
        index = self.index_of(key_line)
        capped = list(payload[: self.addrs_per_entry])
        if self._tags[index] != key_line:
            if self._tags[index] != -1:
                self.stats.tag_conflicts += 1
            self.stats.allocations += 1
            addrs = {}
            stamp = self._stamp
            for line in capped:
                stamp += 1
                addrs[line] = stamp
            self._stamp = stamp
            self._tags[index] = key_line
            self._addrs[index] = addrs
            return index
        # Tag match: refresh or LRU-replace.  Addresses inserted by this
        # training step are protected from evicting one another.
        addrs = self._addrs[index]
        inserted: set[int] = set()
        for line in capped:
            self._stamp += 1
            if line in addrs:
                addrs[line] = self._stamp
                inserted.add(line)
                continue
            if len(addrs) >= self.addrs_per_entry:
                candidates = [a for a in addrs if a not in inserted]
                if not candidates:
                    break  # entry entirely filled by this payload already
                victim = min(candidates, key=addrs.__getitem__)
                del addrs[victim]
                self.stats.address_replacements += 1
            addrs[line] = self._stamp
            inserted.add(line)
        return index

    def touch(self, index: int, line: int) -> bool:
        """Refresh the LRU stamp of ``line`` in entry ``index``.

        Called on a prefetch-buffer hit; the caller charges one
        lowest-priority memory write.  Returns True if the address was
        still present.
        """
        self.stats.touches += 1
        if not (0 <= index < self.n_entries):
            return False
        addrs = self._addrs[index]
        if addrs is None or line not in addrs:
            return False
        self._stamp += 1
        addrs[line] = self._stamp
        return True

    # ------------------------------------------------------------------
    def entry_at(self, index: int) -> TableEntry | None:
        """Entry view at ``index`` (tests and diagnostics); the address
        map is shared with the live table, not copied."""
        if self._tags[index] == -1:
            return None
        return TableEntry(tag=self._tags[index], addrs=self._addrs[index])

    @property
    def live_entries(self) -> int:
        return sum(1 for tag in self._tags if tag != -1)
