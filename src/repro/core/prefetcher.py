"""The Epoch-Based Correlation Prefetcher (EBCP) — paper Section 3.

Operation summary (Sections 3.1, 3.2, 3.4):

* The on-chip control watches the entire L2 miss stream (it sits in front
  of the core-to-L2 crossbar) and records instruction/load miss addresses
  of the current epoch into the EMAB.
* At every epoch boundary the EMAB yields a training view: the first miss
  of the oldest buffered epoch (epoch ``i``) keys a correlation-table
  entry that is updated with the misses of epochs ``i+2`` and ``i+3``
  (one table read + one table write, lowest priority).
* When the first L2 instruction/load miss — or prefetch-buffer hit — of a
  new epoch is encountered, its address keys a table lookup (one
  low-priority memory read).  All prefetch addresses of a matching entry
  are issued, up to the configured prefetch degree.  Because the table
  lives in main memory, the data arrives two epochs after the trigger:
  the lookup is hidden under the current epoch's stall and the prefetches
  complete under the next one — precisely why only epochs ``i+2``/``i+3``
  addresses are stored.
* A prefetch-buffer hit refreshes the LRU stamp of the producing address
  in its correlation-table entry (one lowest-priority write), letting the
  entry adapt between prefetch depth and width at run time.

The prefetcher follows the active/inactive protocol of Section 3.4.1: it
requests a physical region from the OS at start-up and suspends itself if
the region is reclaimed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.epoch import Epoch
from ..memory.hierarchy import CacheHierarchy
from ..memory.main_memory import OutOfMemoryError
from ..memory.request import Access, AccessKind, PrefetchRequest, Priority
from ..prefetchers.base import Prefetcher
from .correlation_table import CorrelationTable
from .emab import EpochMissAddressBuffer

__all__ = ["EBCPConfig", "EpochBasedCorrelationPrefetcher"]


@dataclass(frozen=True)
class EBCPConfig:
    """Tunable parameters of the EBCP (defaults = the paper's tuned design).

    ``table_entries`` defaults to 128 K — the paper's one-million-entry
    table scaled by the same 8x factor as the L2 and workload footprints
    (DESIGN.md Section 2).  Use :meth:`idealized` for the design-space
    starting point (Section 5.2): an 8 M-entry-scaled table, 32 addresses
    per entry, degree 32, 1024-entry prefetch buffer (the buffer itself is
    configured on :class:`~repro.engine.config.ProcessorConfig`).
    """

    prefetch_degree: int = 8
    table_entries: int = 128 * 1024
    addrs_per_entry: int | None = None  # defaults to max(8, degree)
    entry_bytes: int = 64
    #: Epochs between the key epoch and the first stored epoch; 2 for
    #: EBCP, 1 for the handicapped EBCP-minus variant (Section 5.3).
    skip_epochs: int = 2
    #: Number of future epochs whose misses are stored (X in the paper).
    stored_epochs: int = 2
    emab_capacity_per_epoch: int = 32
    #: When False, models an on-chip table ablation: prefetches are ready
    #: one epoch after the trigger and no table memory traffic occurs.
    table_in_memory: bool = True

    @property
    def effective_addrs_per_entry(self) -> int:
        if self.addrs_per_entry is not None:
            return self.addrs_per_entry
        return max(8, self.prefetch_degree)

    @classmethod
    def idealized(cls, **overrides: object) -> "EBCPConfig":
        base = dict(
            prefetch_degree=32,
            table_entries=1024 * 1024,
            addrs_per_entry=32,
            entry_bytes=256,
        )
        base.update(overrides)  # type: ignore[arg-type]
        return cls(**base)  # type: ignore[arg-type]


class EpochBasedCorrelationPrefetcher(Prefetcher):
    """EBCP control logic implementing the engine's prefetcher interface."""

    name = "ebcp"
    targets_instructions = True
    #: The epoch-batched execution kernel (``engine/ebcp_kernel.py``) can
    #: replay this prefetcher's exact semantics from a precomputed epoch
    #: segmentation.  Subclasses that override the observe hooks must
    #: clear this flag (the kernel additionally refuses subclasses).
    supports_epoch_batch = True

    def __init__(self, config: EBCPConfig | None = None) -> None:
        super().__init__()
        self.config = config or EBCPConfig()
        if self.config.skip_epochs == 1:
            self.name = "ebcp_minus"
        elif not self.config.table_in_memory:
            self.name = "ebcp_onchip"
        self.table = CorrelationTable(
            n_entries=self.config.table_entries,
            addrs_per_entry=self.config.effective_addrs_per_entry,
            entry_bytes=self.config.entry_bytes,
        )
        self.emab = EpochMissAddressBuffer(
            skip_epochs=self.config.skip_epochs,
            stored_epochs=self.config.stored_epochs,
            capacity_per_epoch=self.config.emab_capacity_per_epoch,
        )
        self._active = not self.config.table_in_memory
        self.lookups_suppressed = 0

    # ------------------------------------------------------------------
    # Residency / state machine (Section 3.4.1)
    # ------------------------------------------------------------------
    def bind(self, hierarchy: CacheHierarchy) -> None:
        """Request the table's physical region from the simulated OS."""
        if not self.config.table_in_memory:
            self._active = True
            return
        try:
            self.table.attach_memory(hierarchy.memory)
        except OutOfMemoryError:
            self._active = False
        else:
            self._active = True

    def deactivate(self) -> None:
        """The OS reclaimed the table region (memory pressure)."""
        self.table.detach_memory()
        self._active = False

    def reactivate(self, hierarchy: CacheHierarchy) -> None:
        """Periodic re-request after deactivation."""
        self.bind(hierarchy)

    @property
    def is_active(self) -> bool:
        return self._active

    # ------------------------------------------------------------------
    # Timeliness
    # ------------------------------------------------------------------
    @property
    def _epochs_until_ready(self) -> int:
        # Main-memory table: one epoch to read the table, one for the
        # prefetches themselves (Section 3.2).  On-chip table: prefetches
        # issue in the triggering epoch and are ready the next.
        return 2 if self.config.table_in_memory else 1

    # ------------------------------------------------------------------
    # Engine callbacks
    # ------------------------------------------------------------------
    def observe_offchip_miss(
        self,
        access: Access,
        line: int,
        epoch: Epoch,
        is_trigger: bool,
    ) -> list[PrefetchRequest]:
        if not self._active:
            return []
        if access.kind is not AccessKind.STORE:
            self.emab.record_miss(line)
        if is_trigger:
            # First miss of a (would-be) epoch: key the table lookup.
            return self._lookup_and_issue(line)
        # Subsequent misses of the epoch do not look up the table
        # (Section 3.4.3).
        self.lookups_suppressed += 1
        return []

    def observe_prefetch_hit(
        self,
        access: Access,
        line: int,
        table_index: int | None,
        epoch_index: int,
        first_in_epoch: bool,
    ) -> list[PrefetchRequest]:
        if not self._active:
            return []
        # The averted miss still belongs to the would-be epoch structure
        # the correlation table encodes: record it so training keeps the
        # learned sequences alive at high coverage.
        self.emab.record_miss(line)
        # LRU refresh of the producing table entry: one low-priority write.
        if table_index is not None:
            if self.table.touch(table_index, line) and self.config.table_in_memory:
                self.traffic.add_lru_write(self.config.entry_bytes)
        if first_in_epoch:
            # A prefetch-buffer hit substitutes for the first miss of a
            # new epoch as the lookup key (Section 3.4.3).
            return self._lookup_and_issue(line)
        return []

    def on_epoch_boundary(self, closed: Epoch | None) -> list[PrefetchRequest]:
        if not self._active:
            return []
        view = self.emab.epoch_boundary()
        if view is not None:
            self.table.train(view.key_line, view.payload)
            if self.config.table_in_memory:
                self.traffic.add_update_read(self.config.entry_bytes)
                self.traffic.add_update_write(self.config.entry_bytes)
        return []

    # ------------------------------------------------------------------
    def _lookup_and_issue(self, key_line: int) -> list[PrefetchRequest]:
        if self.config.table_in_memory:
            self.traffic.add_lookup_read(self.config.entry_bytes)
        hit = self.table.lookup(key_line)
        if hit is None:
            return []
        index, lines = hit
        ready = self._epochs_until_ready
        requests = []
        for line in lines[: self.config.prefetch_degree]:
            requests.append(
                self.make_request(
                    line,
                    epochs_until_ready=ready,
                    priority=Priority.PREFETCH,
                    table_index=index,
                )
            )
        return requests

    # ------------------------------------------------------------------
    # Cost reporting
    # ------------------------------------------------------------------
    @property
    def onchip_storage_bytes(self) -> int:
        # EMAB: depth x capacity 6-byte addresses; plus control state.
        emab = self.emab.depth * self.emab.capacity_per_epoch * 6
        if self.config.table_in_memory:
            return emab
        return emab + self.table.size_bytes

    @property
    def memory_table_bytes(self) -> int:
        return self.table.size_bytes if self.config.table_in_memory else 0
