"""Epoch Miss Addresses Buffer (EMAB) — paper Section 3.4.2.

The EMAB is the only training structure EBCP keeps on chip: a small
circular buffer whose entries each hold the (instruction and load) miss
line addresses of one epoch.  The newest entry accumulates the current
epoch's misses; when an epoch boundary occurs the buffer rotates and, once
full, yields a *training view*:

* the **key** is the first miss address of the oldest buffered epoch
  (epoch ``i``), and
* the **payload** is the miss addresses of the buffered epochs starting
  ``skip`` epochs after it (epochs ``i+skip .. i+skip+X-1``), ordered
  oldest epoch first because older-epoch addresses get priority when the
  correlation-table entry cannot hold them all.

For the paper's EBCP, ``skip = 2`` and ``X = 2`` (store epochs i+2 and
i+3): misses of epoch i itself are naturally overlapped with the trigger,
and misses of epoch i+1 could never be prefetched timely because reading
the main-memory table consumes epoch i and the prefetch itself consumes
epoch i+1.  The handicapped *EBCP minus* variant uses ``skip = 1``
(stores epochs i+1 and i+2).  The buffer depth is always ``skip + X`` —
4 entries for EBCP, matching the paper.

Store misses are never recorded (weak consistency makes store prefetching
non-essential); the engine simply never reports them here.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from itertools import islice

__all__ = ["TrainingView", "EpochMissAddressBuffer"]


@dataclass(frozen=True)
class TrainingView:
    """One training opportunity produced at an epoch boundary."""

    key_line: int
    #: Payload miss lines, oldest epoch first, duplicates removed.
    payload: tuple[int, ...]


class EpochMissAddressBuffer:
    """Circular buffer of per-epoch miss address lists."""

    def __init__(
        self,
        skip_epochs: int = 2,
        stored_epochs: int = 2,
        capacity_per_epoch: int = 32,
    ) -> None:
        if skip_epochs < 1:
            raise ValueError("skip_epochs must be >= 1 (same-epoch misses are never stored)")
        if stored_epochs < 1:
            raise ValueError("stored_epochs must be >= 1")
        if capacity_per_epoch < 1:
            raise ValueError("capacity_per_epoch must be >= 1")
        self.skip_epochs = skip_epochs
        self.stored_epochs = stored_epochs
        self.capacity_per_epoch = capacity_per_epoch
        self.depth = skip_epochs + stored_epochs
        self._entries: deque[list[int]] = deque(maxlen=self.depth)
        self._entries.append([])
        self.overflow_drops = 0

    # ------------------------------------------------------------------
    @property
    def current_entry(self) -> list[int]:
        return self._entries[-1]

    @property
    def filled_entries(self) -> int:
        return len(self._entries)

    def record_miss(self, line: int) -> None:
        """Record an L2 instruction/load miss of the current epoch."""
        entry = self._entries[-1]
        if len(entry) >= self.capacity_per_epoch:
            self.overflow_drops += 1
            return
        entry.append(line)

    # ------------------------------------------------------------------
    def epoch_boundary(self) -> TrainingView | None:
        """Rotate at an epoch boundary; return a training view when full.

        The view is produced *before* rotation, covering the just-ended
        epoch as the newest entry — i.e. the oldest buffered epoch is
        ``depth - 1`` epochs behind the one that just ended.
        """
        view: TrainingView | None = None
        if len(self._entries) == self.depth:
            oldest = self._entries[0]
            if oldest:
                payload: list[int] = []
                seen: set[int] = set()
                seen_add = seen.add
                payload_append = payload.append
                for entry in islice(self._entries, self.skip_epochs, None):
                    for line in entry:
                        if line not in seen:
                            seen_add(line)
                            payload_append(line)
                if payload:
                    view = TrainingView(key_line=oldest[0], payload=tuple(payload))
        self._entries.append([])  # deque maxlen drops the oldest entry
        return view

    def reset(self) -> None:
        self._entries.clear()
        self._entries.append([])

    @property
    def occupancy(self) -> int:
        """Total miss addresses currently buffered across all entries."""
        return sum(len(entry) for entry in self._entries)

    def snapshot(self) -> list[list[int]]:
        """Copy of all buffered entries, oldest first (for tests)."""
        return [list(entry) for entry in self._entries]
