"""Epoch Miss Addresses Buffer (EMAB) — paper Section 3.4.2.

The EMAB is the only training structure EBCP keeps on chip: a small
circular buffer whose entries each hold the (instruction and load) miss
line addresses of one epoch.  The newest entry accumulates the current
epoch's misses; when an epoch boundary occurs the buffer rotates and, once
full, yields a *training view*:

* the **key** is the first miss address of the oldest buffered epoch
  (epoch ``i``), and
* the **payload** is the miss addresses of the buffered epochs starting
  ``skip`` epochs after it (epochs ``i+skip .. i+skip+X-1``), ordered
  oldest epoch first because older-epoch addresses get priority when the
  correlation-table entry cannot hold them all.

For the paper's EBCP, ``skip = 2`` and ``X = 2`` (store epochs i+2 and
i+3): misses of epoch i itself are naturally overlapped with the trigger,
and misses of epoch i+1 could never be prefetched timely because reading
the main-memory table consumes epoch i and the prefetch itself consumes
epoch i+1.  The handicapped *EBCP minus* variant uses ``skip = 1``
(stores epochs i+1 and i+2).  The buffer depth is always ``skip + X`` —
4 entries for EBCP, matching the paper.

Store misses are never recorded (weak consistency makes store prefetching
non-essential); the engine simply never reports them here.

The buffer is backed by one preallocated flat slot array of
``depth × capacity`` lines plus per-entry fill counts and a ring head —
a rotation is two integer updates instead of list allocation and deque
shifting, and a recorded miss is a single indexed store.  The original
list-of-lists surface (``current_entry``, ``snapshot``) is preserved as
copying views.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TrainingView", "EpochMissAddressBuffer"]


@dataclass(frozen=True)
class TrainingView:
    """One training opportunity produced at an epoch boundary."""

    key_line: int
    #: Payload miss lines, oldest epoch first, duplicates removed.
    payload: tuple[int, ...]


class EpochMissAddressBuffer:
    """Circular buffer of per-epoch miss address lists."""

    def __init__(
        self,
        skip_epochs: int = 2,
        stored_epochs: int = 2,
        capacity_per_epoch: int = 32,
    ) -> None:
        if skip_epochs < 1:
            raise ValueError("skip_epochs must be >= 1 (same-epoch misses are never stored)")
        if stored_epochs < 1:
            raise ValueError("stored_epochs must be >= 1")
        if capacity_per_epoch < 1:
            raise ValueError("capacity_per_epoch must be >= 1")
        self.skip_epochs = skip_epochs
        self.stored_epochs = stored_epochs
        self.capacity_per_epoch = capacity_per_epoch
        self.depth = skip_epochs + stored_epochs
        # Flat ring storage: slot s occupies lines[s*cap : s*cap + counts[s]].
        self._lines: list[int] = [0] * (self.depth * capacity_per_epoch)
        self._counts: list[int] = [0] * self.depth
        self._head = 0  # slot holding the oldest buffered epoch
        self._filled = 1  # live entries; a fresh buffer has one open entry
        self.overflow_drops = 0

    # ------------------------------------------------------------------
    def _slot(self, ordinal: int) -> int:
        """Physical slot of the ``ordinal``-th live entry (0 = oldest)."""
        return (self._head + ordinal) % self.depth

    def _entry(self, ordinal: int) -> list[int]:
        slot = self._slot(ordinal)
        base = slot * self.capacity_per_epoch
        return self._lines[base : base + self._counts[slot]]

    @property
    def current_entry(self) -> list[int]:
        return self._entry(self._filled - 1)

    @property
    def filled_entries(self) -> int:
        return self._filled

    def record_miss(self, line: int) -> None:
        """Record an L2 instruction/load miss of the current epoch."""
        slot = self._slot(self._filled - 1)
        count = self._counts[slot]
        if count >= self.capacity_per_epoch:
            self.overflow_drops += 1
            return
        self._lines[slot * self.capacity_per_epoch + count] = line
        self._counts[slot] = count + 1

    # ------------------------------------------------------------------
    def epoch_boundary(self) -> TrainingView | None:
        """Rotate at an epoch boundary; return a training view when full.

        The view is produced *before* rotation, covering the just-ended
        epoch as the newest entry — i.e. the oldest buffered epoch is
        ``depth - 1`` epochs behind the one that just ended.
        """
        view: TrainingView | None = None
        if self._filled == self.depth:
            if self._counts[self._head]:
                payload: list[int] = []
                seen: set[int] = set()
                seen_add = seen.add
                payload_append = payload.append
                for ordinal in range(self.skip_epochs, self.depth):
                    for line in self._entry(ordinal):
                        if line not in seen:
                            seen_add(line)
                            payload_append(line)
                if payload:
                    view = TrainingView(
                        key_line=self._lines[self._head * self.capacity_per_epoch],
                        payload=tuple(payload),
                    )
            # Drop the oldest entry; its slot becomes the new open entry.
            recycled = self._head
            self._head = (self._head + 1) % self.depth
            self._counts[recycled] = 0
        else:
            self._counts[self._slot(self._filled)] = 0
            self._filled += 1
        return view

    def reset(self) -> None:
        self._counts = [0] * self.depth
        self._head = 0
        self._filled = 1

    def restore(self, entries: list[list[int]], overflow_drops: int = 0) -> None:
        """Bulk-load buffered entries (oldest first) — batch-kernel sync."""
        if not 1 <= len(entries) <= self.depth:
            raise ValueError("restore needs between 1 and depth entries")
        self.reset()
        cap = self.capacity_per_epoch
        for slot, entry in enumerate(entries):
            if len(entry) > cap:
                raise ValueError("entry exceeds capacity_per_epoch")
            base = slot * cap
            self._lines[base : base + len(entry)] = entry
            self._counts[slot] = len(entry)
        self._filled = len(entries)
        self.overflow_drops = overflow_drops

    @property
    def occupancy(self) -> int:
        """Total miss addresses currently buffered across all entries."""
        return sum(self._counts[self._slot(i)] for i in range(self._filled))

    def snapshot(self) -> list[list[int]]:
        """Copy of all buffered entries, oldest first (for tests)."""
        return [self._entry(i) for i in range(self._filled)]
