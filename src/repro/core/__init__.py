"""The paper's primary contribution: the epoch-based correlation prefetcher."""

from .cmp import CMPEBCPConfig, InterleavedStreamEBCP, PerThreadEpochPrefetcher
from .correlation_table import CorrelationTable, TableEntry, TableStats
from .emab import EpochMissAddressBuffer, TrainingView
from .prefetcher import EBCPConfig, EpochBasedCorrelationPrefetcher
from .variants import make_ebcp, make_ebcp_minus, make_ebcp_onchip

__all__ = [
    "CMPEBCPConfig",
    "CorrelationTable",
    "InterleavedStreamEBCP",
    "PerThreadEpochPrefetcher",
    "EBCPConfig",
    "EpochBasedCorrelationPrefetcher",
    "EpochMissAddressBuffer",
    "TableEntry",
    "TableStats",
    "TrainingView",
    "make_ebcp",
    "make_ebcp_minus",
    "make_ebcp_onchip",
]
