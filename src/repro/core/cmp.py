"""CMP extension: per-thread epoch-based correlation prefetching.

The paper's Figure 2 places the EBCP control in front of the core-to-L2
crossbar precisely so it "sees the entire L2 miss stream of every thread
executing on the processor": per-thread miss sequences stay coherent even
though the combined stream reaching memory is an arbitrary interleaving.
Section 6 leaves the CMP-optimised design as future work; this module
implements the natural one:

* one **EMAB and would-be-epoch tracker per hardware thread** (the
  on-chip cost stays trivial: 4 entries x threads);
* a **shared** main-memory correlation table (per-thread address slices
  are disjoint, so threads do not alias; sharing lets a hot thread use
  more entries, like the shared L2);
* per-thread lookup keying: the first miss (or prefetch-buffer hit) of a
  thread's would-be epoch keys that thread's lookup.

Because the engine's global interval/trigger notion reflects the *union*
stream, this prefetcher re-derives epoch structure per thread from the
access metadata (instruction index, serial flag, thread id) — exactly
what the in-front-of-crossbar control can observe.

The contrast class :class:`InterleavedStreamEBCP` applies plain EBCP
logic to the interleaved stream while *ignoring* thread ids — what an
EBCP naively bolted onto the memory side would see.  The extension bench
shows per-thread tracking retains the single-thread gains while the
interleaved variants (including Solihin's scheme) collapse — the paper's
Section 3.3.1 argument, quantified.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine.epoch import Epoch
from ..memory.hierarchy import CacheHierarchy
from ..memory.main_memory import OutOfMemoryError
from ..memory.request import Access, AccessKind, PrefetchRequest, Priority
from ..prefetchers.base import Prefetcher
from .correlation_table import CorrelationTable
from .emab import EpochMissAddressBuffer
from .prefetcher import EBCPConfig

__all__ = ["CMPEBCPConfig", "PerThreadEpochPrefetcher", "InterleavedStreamEBCP"]


@dataclass(frozen=True)
class CMPEBCPConfig:
    """CMP EBCP parameters (wraps the single-thread EBCPConfig)."""

    base: EBCPConfig = field(default_factory=EBCPConfig)
    #: ROB span used for the per-thread would-be-epoch rule; matches the
    #: core configuration.
    rob_size: int = 128


@dataclass
class _ThreadState:
    """Per-thread EMAB + would-be-epoch tracking."""

    emab: EpochMissAddressBuffer
    trigger_inst: int | None = None
    sealed: bool = False
    lookup_armed: bool = True


class PerThreadEpochPrefetcher(Prefetcher):
    """EBCP with per-thread stream tracking (the CMP design)."""

    name = "ebcp_cmp"
    targets_instructions = True

    def __init__(self, config: CMPEBCPConfig | None = None) -> None:
        super().__init__()
        self.config = config or CMPEBCPConfig()
        base = self.config.base
        self.table = CorrelationTable(
            n_entries=base.table_entries,
            addrs_per_entry=base.effective_addrs_per_entry,
            entry_bytes=base.entry_bytes,
        )
        self._threads: dict[int, _ThreadState] = {}
        self._active = not base.table_in_memory

    # ------------------------------------------------------------------
    def bind(self, hierarchy: CacheHierarchy) -> None:
        if not self.config.base.table_in_memory:
            self._active = True
            return
        try:
            self.table.attach_memory(hierarchy.memory)
        except OutOfMemoryError:
            self._active = False
        else:
            self._active = True

    @property
    def is_active(self) -> bool:
        return self._active

    def _state(self, tid: int) -> _ThreadState:
        state = self._threads.get(tid)
        if state is None:
            base = self.config.base
            state = _ThreadState(
                emab=EpochMissAddressBuffer(
                    skip_epochs=base.skip_epochs,
                    stored_epochs=base.stored_epochs,
                    capacity_per_epoch=base.emab_capacity_per_epoch,
                )
            )
            self._threads[tid] = state
        return state

    @property
    def n_tracked_threads(self) -> int:
        return len(self._threads)

    # ------------------------------------------------------------------
    # Per-thread would-be-epoch detection (mirrors the engine's rule,
    # applied to one thread's subsequence of the union stream).
    # ------------------------------------------------------------------
    def _interval_event(self, state: _ThreadState, access: Access) -> bool:
        new_interval = (
            state.trigger_inst is None
            or access.serial
            or state.sealed
            or access.inst_index - state.trigger_inst > self.config.rob_size
        )
        if new_interval:
            if state.trigger_inst is not None:
                view = state.emab.epoch_boundary()
                if view is not None:
                    self.table.train(view.key_line, view.payload)
                    if self.config.base.table_in_memory:
                        self.traffic.add_update_read(self.config.base.entry_bytes)
                        self.traffic.add_update_write(self.config.base.entry_bytes)
            state.trigger_inst = access.inst_index
            state.sealed = False
            state.lookup_armed = True
        if access.kind is AccessKind.IFETCH:
            state.sealed = True
        return new_interval

    # ------------------------------------------------------------------
    def observe_offchip_miss(
        self,
        access: Access,
        line: int,
        epoch: Epoch,
        is_trigger: bool,
    ) -> list[PrefetchRequest]:
        if not self._active or access.kind is AccessKind.STORE:
            return []
        state = self._state(access.tid)
        self._interval_event(state, access)
        state.emab.record_miss(line)
        if state.lookup_armed:
            state.lookup_armed = False
            return self._lookup_and_issue(line)
        return []

    def observe_prefetch_hit(
        self,
        access: Access,
        line: int,
        table_index: int | None,
        epoch_index: int,
        first_in_epoch: bool,
    ) -> list[PrefetchRequest]:
        if not self._active:
            return []
        state = self._state(access.tid)
        self._interval_event(state, access)
        state.emab.record_miss(line)
        if table_index is not None:
            if self.table.touch(table_index, line) and self.config.base.table_in_memory:
                self.traffic.add_lru_write(self.config.base.entry_bytes)
        if state.lookup_armed:
            state.lookup_armed = False
            return self._lookup_and_issue(line)
        return []

    # The engine's union-stream epoch boundaries are ignored: this
    # prefetcher derives boundaries per thread.
    def on_epoch_boundary(self, closed: Epoch | None) -> list[PrefetchRequest]:
        return []

    # ------------------------------------------------------------------
    def _lookup_and_issue(self, key_line: int) -> list[PrefetchRequest]:
        base = self.config.base
        if base.table_in_memory:
            self.traffic.add_lookup_read(base.entry_bytes)
        hit = self.table.lookup(key_line)
        if hit is None:
            return []
        index, lines = hit
        ready = 2 if base.table_in_memory else 1
        return [
            self.make_request(
                line,
                epochs_until_ready=ready,
                priority=Priority.PREFETCH,
                table_index=index,
            )
            for line in lines[: base.prefetch_degree]
        ]

    # ------------------------------------------------------------------
    @property
    def onchip_storage_bytes(self) -> int:
        per_thread = 0
        for state in self._threads.values():
            per_thread += state.emab.depth * state.emab.capacity_per_epoch * 6
        return max(per_thread, 4 * 32 * 6)

    @property
    def memory_table_bytes(self) -> int:
        return self.table.size_bytes if self.config.base.table_in_memory else 0


class InterleavedStreamEBCP(PerThreadEpochPrefetcher):
    """EBCP logic applied to the interleaved stream, thread-blind.

    The straw man: the same algorithm observing the union miss stream
    without thread ids — what any engine placed at the memory side (or a
    naive single-EMAB control) would see on a CMP.  Its epoch keys and
    payloads mix threads, so the learned correlations are mostly noise.
    """

    name = "ebcp_interleaved"

    def _state(self, tid: int) -> _ThreadState:
        return super()._state(0)  # collapse every thread onto one stream
