"""Named EBCP variants used in the evaluation.

* :func:`make_ebcp` — the tuned design (degree 8, 64-entry prefetch
  buffer, scaled 128 K-entry table).
* :func:`make_ebcp_minus` — the handicapped variant of Section 5.3 that
  *does* store the misses of the epoch immediately after the trigger
  (skip = 1); the paper uses it to demonstrate the value of skipping the
  un-prefetchable epoch.
* :func:`make_ebcp_onchip` — ablation with the correlation table on chip
  (prefetches ready one epoch earlier, no table memory traffic, but an
  enormous SRAM cost); not in the paper's figures but called out in its
  motivation, and used by the ablation bench.
"""

from __future__ import annotations

from .prefetcher import EBCPConfig, EpochBasedCorrelationPrefetcher

__all__ = ["make_ebcp", "make_ebcp_minus", "make_ebcp_onchip"]


def make_ebcp(
    prefetch_degree: int = 8,
    table_entries: int = 128 * 1024,
    **overrides: object,
) -> EpochBasedCorrelationPrefetcher:
    """The paper's EBCP with the tuned defaults."""
    config = EBCPConfig(
        prefetch_degree=prefetch_degree,
        table_entries=table_entries,
        **overrides,  # type: ignore[arg-type]
    )
    return EpochBasedCorrelationPrefetcher(config)


def make_ebcp_minus(
    prefetch_degree: int = 6,
    table_entries: int = 128 * 1024,
    **overrides: object,
) -> EpochBasedCorrelationPrefetcher:
    """EBCP minus: stores the next epoch's misses too (skip = 1)."""
    config = EBCPConfig(
        prefetch_degree=prefetch_degree,
        table_entries=table_entries,
        skip_epochs=1,
        **overrides,  # type: ignore[arg-type]
    )
    return EpochBasedCorrelationPrefetcher(config)


def make_ebcp_onchip(
    prefetch_degree: int = 8,
    table_entries: int = 16 * 1024,
    **overrides: object,
) -> EpochBasedCorrelationPrefetcher:
    """On-chip-table ablation (smaller table, one epoch better latency)."""
    config = EBCPConfig(
        prefetch_degree=prefetch_degree,
        table_entries=table_entries,
        table_in_memory=False,
        **overrides,  # type: ignore[arg-type]
    )
    return EpochBasedCorrelationPrefetcher(config)
