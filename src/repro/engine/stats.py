"""Simulation statistics and derived metrics.

:class:`SimulationStats` collects raw counters during the measured region
of a run; :class:`SimulationResult` wraps them together with the
configuration and exposes the paper's metrics:

* overall CPI (the primary metric, Section 4.1),
* epochs per (kilo-)instruction — EPI,
* L2 instruction/load miss rates per 1000 retired instructions,
* prefetch coverage and accuracy (secondary metrics),
* bus utilisation and drop counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..memory.request import AccessKind

__all__ = ["SimulationStats", "SimulationResult"]


@dataclass
class SimulationStats:
    """Raw counters for the measured region of one simulation."""

    instructions: int = 0
    accesses: int = 0
    l1i_hits: int = 0
    l1d_hits: int = 0
    l2_accesses: int = 0
    l2_hits: int = 0
    # Off-chip (L2) misses that actually went to memory, by access kind.
    offchip_misses: dict[AccessKind, int] = field(
        default_factory=lambda: {k: 0 for k in AccessKind}
    )
    # Demand accesses satisfied by a ready prefetch-buffer line.
    prefetch_hits: dict[AccessKind, int] = field(
        default_factory=lambda: {k: 0 for k in AccessKind}
    )
    late_prefetches: int = 0
    epochs: int = 0
    serial_epochs: int = 0
    # Prefetch lifecycle.
    prefetches_generated: int = 0
    prefetches_filled: int = 0
    prefetches_redundant: int = 0
    prefetches_dropped: int = 0
    # Timing accumulators.
    offchip_cycles: float = 0.0
    queueing_cycles: float = 0.0
    # Bandwidth.
    read_bytes: int = 0
    write_bytes: int = 0
    read_budget_bytes: int = 0
    # Correlation-table traffic (bytes).
    table_read_bytes: int = 0
    table_write_bytes: int = 0
    # Window-termination census (reason -> count).
    termination_reasons: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def total_offchip_misses(self) -> int:
        return sum(self.offchip_misses.values())

    @property
    def total_prefetch_hits(self) -> int:
        return sum(self.prefetch_hits.values())

    def per_kilo_inst(self, count: float) -> float:
        return 1000.0 * count / self.instructions if self.instructions else 0.0

    # ------------------------------------------------------------------
    # Serialisation (manifests, machine-readable bench output)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dict losslessly convertible back via :meth:`from_dict`."""
        payload: dict[str, Any] = {}
        for name, value in vars(self).items():
            if name in ("offchip_misses", "prefetch_hits"):
                payload[name] = {kind.name.lower(): count for kind, count in value.items()}
            elif name == "termination_reasons":
                payload[name] = dict(value)
            else:
                payload[name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SimulationStats":
        """Rebuild a stats object from :meth:`to_dict` output."""
        stats = cls()
        for name, value in payload.items():
            if name in ("offchip_misses", "prefetch_hits"):
                setattr(
                    stats,
                    name,
                    {AccessKind[kind.upper()]: count for kind, count in value.items()},
                )
            elif name == "termination_reasons":
                stats.termination_reasons = dict(value)
            elif hasattr(stats, name):
                setattr(stats, name, value)
        return stats


@dataclass
class SimulationResult:
    """One simulation's outcome: counters + derived paper metrics."""

    workload: str
    prefetcher: str
    stats: SimulationStats
    cpi_perf: float
    overlap: float
    config_summary: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Timing (epoch MLP model, Section 2.1)
    # ------------------------------------------------------------------
    @property
    def onchip_cycles(self) -> float:
        return self.stats.instructions * self.cpi_perf * (1.0 - self.overlap)

    @property
    def cycles(self) -> float:
        return self.onchip_cycles + self.stats.offchip_cycles

    @property
    def cpi(self) -> float:
        if not self.stats.instructions:
            return 0.0
        return self.cycles / self.stats.instructions

    @property
    def offchip_cpi(self) -> float:
        if not self.stats.instructions:
            return 0.0
        return self.stats.offchip_cycles / self.stats.instructions

    # ------------------------------------------------------------------
    # Paper metrics
    # ------------------------------------------------------------------
    @property
    def epochs_per_kilo_inst(self) -> float:
        return self.stats.per_kilo_inst(self.stats.epochs)

    @property
    def l2_inst_miss_rate(self) -> float:
        """Remaining off-chip instruction misses per 1000 instructions."""
        return self.stats.per_kilo_inst(self.stats.offchip_misses[AccessKind.IFETCH])

    @property
    def l2_load_miss_rate(self) -> float:
        """Remaining off-chip load misses per 1000 instructions."""
        return self.stats.per_kilo_inst(self.stats.offchip_misses[AccessKind.LOAD])

    @property
    def coverage(self) -> float:
        """Fraction of would-be off-chip misses averted by prefetching."""
        averted = self.stats.total_prefetch_hits
        total = averted + self.stats.total_offchip_misses
        return averted / total if total else 0.0

    @property
    def accuracy(self) -> float:
        """Useful prefetches / prefetches that consumed bus bandwidth."""
        issued = self.stats.prefetches_filled
        return self.stats.total_prefetch_hits / issued if issued else 0.0

    @property
    def read_bus_utilization(self) -> float:
        if not self.stats.read_budget_bytes:
            return 0.0
        return self.stats.read_bytes / self.stats.read_budget_bytes

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def improvement_over(self, baseline: "SimulationResult") -> float:
        """Overall performance improvement vs a baseline run.

        Speedup minus one: ``CPI_base / CPI_this - 1`` (e.g. 0.23 for the
        paper's "+23 %").
        """
        if self.cpi == 0:
            return 0.0
        return baseline.cpi / self.cpi - 1.0

    def epi_reduction_over(self, baseline: "SimulationResult") -> float:
        """Fractional reduction in epochs per instruction vs baseline."""
        base = baseline.epochs_per_kilo_inst
        if base == 0:
            return 0.0
        return 1.0 - self.epochs_per_kilo_inst / base

    # ------------------------------------------------------------------
    # Lossless serialisation (checkpoint journal)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Lossless JSON-safe dump, invertible via :meth:`from_snapshot`.

        Unlike :meth:`to_dict` (which reports *derived* metrics for
        tables and manifests), a snapshot keeps the raw counters so the
        restored object is field-for-field identical to the original —
        the property the checkpoint journal's bit-identical-resume
        guarantee rests on.  Floats survive the JSON round trip exactly
        because ``repr``/``float()`` are inverse for IEEE doubles.
        """
        return {
            "workload": self.workload,
            "prefetcher": self.prefetcher,
            "stats": self.stats.to_dict(),
            "cpi_perf": self.cpi_perf,
            "overlap": self.overlap,
            "config_summary": dict(self.config_summary),
        }

    @classmethod
    def from_snapshot(cls, payload: dict[str, Any]) -> "SimulationResult":
        """Rebuild a result from :meth:`snapshot` output."""
        return cls(
            workload=payload["workload"],
            prefetcher=payload["prefetcher"],
            stats=SimulationStats.from_dict(payload["stats"]),
            cpi_perf=payload["cpi_perf"],
            overlap=payload["overlap"],
            config_summary=dict(payload.get("config_summary", {})),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "prefetcher": self.prefetcher,
            "instructions": self.stats.instructions,
            "cpi": self.cpi,
            "offchip_cpi": self.offchip_cpi,
            "epochs_per_kilo_inst": self.epochs_per_kilo_inst,
            "l2_inst_miss_rate": self.l2_inst_miss_rate,
            "l2_load_miss_rate": self.l2_load_miss_rate,
            "coverage": self.coverage,
            "accuracy": self.accuracy,
            "read_bus_utilization": self.read_bus_utilization,
            "prefetches_filled": self.stats.prefetches_filled,
            "prefetches_dropped": self.stats.prefetches_dropped,
            "epochs": self.stats.epochs,
            **self.config_summary,
        }
