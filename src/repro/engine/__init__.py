"""Timing substrate: configuration, epochs, statistics, simulator."""

from .config import CacheConfig, ProcessorConfig, SCALE_FACTOR
from .epoch import Epoch, EpochTracker
from .simulator import EpochSimulator
from .stats import SimulationResult, SimulationStats

__all__ = [
    "CacheConfig",
    "Epoch",
    "EpochSimulator",
    "EpochTracker",
    "ProcessorConfig",
    "SCALE_FACTOR",
    "SimulationResult",
    "SimulationStats",
]
