"""Simulation configuration dataclasses.

``ProcessorConfig`` mirrors the paper's default processor configuration
table (Section 4.4).  Two presets are provided:

* :meth:`ProcessorConfig.paper` — the full-size MICRO 2007 configuration
  (2 MB L2, 500-cycle memory, 9.6/4.8 GB/s buses, 128-entry ROB, ...).
* :meth:`ProcessorConfig.scaled` (the default) — identical latencies,
  bandwidths and window sizes, but with the L2 capacity scaled down 8x
  (256 KB) so that pure-Python trace-driven runs finish quickly.  The
  synthetic workloads scale their footprints by the same factor, keeping
  every capacity *ratio* of the paper intact (see DESIGN.md Section 2).

Timing parameters of the epoch MLP model (Section 2.1) live here too:
``cpi_perf`` (CPI with a perfect L2) and ``overlap`` (fraction of on-chip
cycles hidden under off-chip accesses) — per-workload values override
these from the trace metadata.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any

__all__ = ["CacheConfig", "ProcessorConfig", "SCALE_FACTOR"]

#: Capacity scale-down applied by the default (scaled) configuration and
#: by the synthetic workload footprints, relative to the paper.
SCALE_FACTOR = 8


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    ways: int
    line_size: int = 64
    hit_latency: int = 1

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_size

    @property
    def n_sets(self) -> int:
        return self.n_lines // self.ways


@dataclass(frozen=True)
class ProcessorConfig:
    """Everything the epoch engine needs to time a trace."""

    # Core
    core_ghz: float = 3.0
    rob_size: int = 128
    # Epoch MLP timing model defaults (overridden per workload)
    cpi_perf: float = 1.0
    overlap: float = 0.10
    # Caches
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024, 4, 64, 3))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024, 4, 64, 3))
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig((2 * 1024 * 1024) // SCALE_FACTOR, 4, 64, 20)
    )
    l2_mshrs: int = 32
    # Memory system
    memory_latency: int = 500
    read_bw_gbps: float = 9.6
    write_bw_gbps: float = 4.8
    # Prefetch buffer (shared by every evaluated prefetcher)
    prefetch_buffer_entries: int = 64
    prefetch_buffer_ways: int = 4

    # ------------------------------------------------------------------
    @classmethod
    def scaled(cls, **overrides: Any) -> "ProcessorConfig":
        """The default scaled configuration (see module docstring)."""
        return cls(**overrides)

    @classmethod
    def paper(cls, **overrides: Any) -> "ProcessorConfig":
        """The full-size MICRO 2007 default configuration."""
        base: dict[str, Any] = {"l2": CacheConfig(2 * 1024 * 1024, 4, 64, 20)}
        base.update(overrides)
        return cls(**base)

    def replace(self, **changes: Any) -> "ProcessorConfig":
        """Return a copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def fingerprint(self) -> tuple:
        """A stable, collision-free identity tuple for this configuration.

        Unlike ``hash()``, the tuple is exact (no collisions) and identical
        across processes regardless of hash randomisation, so it can key
        cross-process memo tables (baseline dedup in the sweep runners).
        """
        return dataclasses.astuple(self)

    # ------------------------------------------------------------------
    @property
    def line_size(self) -> int:
        return self.l2.line_size

    @property
    def line_shift(self) -> int:
        return self.line_size.bit_length() - 1

    @property
    def read_bytes_per_cycle(self) -> float:
        return self.read_bw_gbps / self.core_ghz

    @property
    def write_bytes_per_cycle(self) -> float:
        return self.write_bw_gbps / self.core_ghz

    def validate(self) -> None:
        if not (0.0 <= self.overlap < 1.0):
            raise ValueError("overlap must be in [0, 1)")
        if self.cpi_perf <= 0:
            raise ValueError("cpi_perf must be positive")
        if self.rob_size <= 0:
            raise ValueError("rob_size must be positive")
        if self.memory_latency <= 0:
            raise ValueError("memory_latency must be positive")
        for cache in (self.l1i, self.l1d, self.l2):
            if cache.line_size != self.line_size:
                raise ValueError("all cache levels must share one line size")
