"""The epoch-model trace-driven timing simulator.

This is the reproduction's substitute for the paper's proprietary
cycle-accurate SPARC simulator (DESIGN.md Section 2).  It is built
directly on the paper's epoch MLP performance model:

``cycles = instructions * CPI_perf * (1 - Overlap) + sum(epoch penalties)``

The simulator walks an L1-level access trace, filters it through the
functional cache hierarchy, partitions off-chip misses into epochs using
the window-termination rules of :mod:`repro.engine.epoch`, drives the
configured prefetcher, and accounts bandwidth per epoch window with
demand-first priorities.

Prefetch lifecycle
------------------
A request generated during epoch ``e`` with ``epochs_until_ready = r`` is
staged into the prefetch buffer immediately with ``ready_epoch = e + r``
(the buffer's readiness check enforces epoch-granular timeliness), and its
bus transfer is charged to the window of epoch ``e + r - 1`` when that
window closes.  If the read-bus budget of that window is exhausted the
transfer is dropped and the staged line is invalidated — it never became
usable, matching the paper's "prefetches may sometimes be dropped when
the available memory bandwidth is saturated".
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from itertools import islice
from typing import Any, Iterable

from ..memory.bandwidth import BandwidthModel, BusStats, EpochBudget
from ..memory.hierarchy import AccessOutcome, CacheHierarchy
from ..memory.mshr import MSHRFile
from ..memory.request import Access, AccessKind, PrefetchRequest, Priority
from ..obs.bus import EventBus
from ..obs.events import (
    EpochClosed,
    KernelFallback,
    PrefetchDropped,
    PrefetchFilled,
    PrefetchHit,
)
from ..prefetchers.base import Prefetcher
from .config import ProcessorConfig
from .epoch import Epoch, EpochTracker
from .filter_plane import compressed_enabled, get_filter_plane
from .stats import SimulationResult, SimulationStats

__all__ = ["EpochSimulator"]

log = logging.getLogger(__name__)

#: Trace kind-code -> AccessKind, avoiding the enum-constructor call (a
#: surprisingly large share of per-record time) on the hot path.
_KIND_TABLE: tuple[AccessKind, ...] = (AccessKind.IFETCH, AccessKind.LOAD, AccessKind.STORE)


@dataclass
class _PendingTransfer:
    """A staged prefetch whose bus transfer is awaiting its window."""

    request: PrefetchRequest
    issue_epoch: int
    line: int


class EpochSimulator:
    """Runs one trace against one configuration and prefetcher."""

    def __init__(
        self,
        config: ProcessorConfig | None = None,
        prefetcher: Prefetcher | None = None,
        cpi_perf: float | None = None,
        overlap: float | None = None,
        bus: EventBus | None = None,
    ) -> None:
        self.config = config or ProcessorConfig.scaled()
        self.config.validate()
        self.cpi_perf = cpi_perf if cpi_perf is not None else self.config.cpi_perf
        self.overlap = overlap if overlap is not None else self.config.overlap
        self.prefetcher = prefetcher
        self.hierarchy = CacheHierarchy(self.config)
        self.mshrs = MSHRFile(self.config.l2_mshrs)
        self.tracker = EpochTracker(self.config.rob_size)
        self.bandwidth = BandwidthModel(
            read_bytes_per_cycle=self.config.read_bytes_per_cycle,
            write_bytes_per_cycle=self.config.write_bytes_per_cycle,
        )
        self.stats = SimulationStats()
        self._pending: list[_PendingTransfer] = []
        self._store_read_bytes = 0
        self._store_write_bytes = 0
        # Would-be epoch (interval) tracking for the prefetcher.
        self._interval_trigger_inst: int | None = None
        self._interval_sealed = False
        self._measuring = False
        self._cpi_onchip = self.cpi_perf * (1.0 - self.overlap)
        # Hot-path scalars hoisted off the config (attribute chains are a
        # measurable share of per-miss time); the config is never mutated
        # after construction.
        self._memory_latency = self.config.memory_latency
        self._base_penalty = float(self.config.memory_latency)
        self._line_bytes = self.config.line_size
        self._rob_size = self.config.rob_size
        #: Whether the prefetcher actually overrides observe_access; most
        #: (including EBCP) train on the off-chip miss stream only, and
        #: the per-miss no-op call is measurable.
        self._wants_access_stream = prefetcher is not None and (
            type(prefetcher).observe_access is not Prefetcher.observe_access
        )
        #: Wall-clock cycle accumulator: retired instructions contribute
        #: ``cpi_onchip`` cycles each, and every closed epoch adds its
        #: effective miss penalty.  Prefetch readiness is judged on this
        #: clock (see PrefetchBuffer's docstring).
        self._penalty_accum = 0.0
        #: True while a compressed-execution run resolves the L1 filter
        #: from a precomputed plane: _step_miss then passes ``l1=None`` to
        #: the hierarchy so the (never again read) L1 fill is skipped.
        self._l1_precomputed = False
        #: Which execution path the most recent ``run`` took:
        #: ``"epoch_kernel"``, ``"compressed"`` or ``"legacy"``.
        self.last_run_path: str | None = None
        #: The observability event bus; None keeps the null-sink fast path
        #: (a single ``is None`` check per emission site).
        self.bus = bus
        self._wire_bus()
        if self.prefetcher is not None:
            self.prefetcher.bind(self.hierarchy)  # type: ignore[attr-defined]

    def _wire_bus(self) -> None:
        """Propagate the current bus to every emitting component."""
        self.hierarchy.bus = self.bus
        self.hierarchy.prefetch_buffer.bus = self.bus
        self.bandwidth.bus = self.bus
        if self.prefetcher is not None:
            self.prefetcher.attach_bus(self.bus)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self,
        trace: Any,
        warmup_records: int | None = None,
        compressed: bool | None = None,
    ) -> SimulationResult:
        """Simulate ``trace`` and return the measured-region result.

        ``trace`` must expose integer sequences ``gap``, ``kind``, ``pc``,
        ``addr`` and ``serial`` of equal length (see
        :class:`repro.workloads.trace.Trace`).  The first
        ``warmup_records`` records warm the caches, the prefetcher and the
        correlation table without collecting statistics — mirroring the
        paper's 150 M-instruction warm-up before the 100 M-instruction
        measurement window.  The default warm-up is 30 % of the trace.

        ``compressed`` selects miss-stream compressed execution: the L1
        hit/miss outcome of every record is resolved ahead of time from
        the trace's filter plane (:mod:`repro.engine.filter_plane`) and
        the per-record loop visits only the L1 misses, folding each run of
        L1 hits into O(1) prefix-sum updates.  Results are bit-identical
        to the record-by-record path.  The default (``None``) enables it
        for real :class:`~repro.workloads.trace.Trace` inputs unless
        ``REPRO_COMPRESSED`` is set to ``0``/``off``/``false``.
        """
        n = len(trace.gap)
        if warmup_records is None:
            warmup_records = int(0.3 * n)
        warmup_records = max(0, min(warmup_records, n))
        if compressed is None:
            compressed = compressed_enabled()
        # Compressed execution needs the real Trace surface (fingerprint,
        # numpy columns, the attached plane memo); duck-typed test traces
        # fall back to the record-by-record loop.
        compressed = compressed and hasattr(trace, "fingerprint") and n > 0
        log.info(
            "run: %s records (%s warm-up), prefetcher=%s, observability=%s, compressed=%s",
            n,
            warmup_records,
            self.prefetcher.name if self.prefetcher is not None else "none",
            "on" if self.bus is not None else "off",
            compressed,
        )
        batchable = self.prefetcher is not None and getattr(
            self.prefetcher, "supports_epoch_batch", False
        )
        if compressed:
            if batchable:
                result = self._try_epoch_kernel(trace, warmup_records, n)
                if result is not None:
                    return result
            return self._run_compressed(trace, warmup_records, n)
        if batchable:
            # The kernel rides on compressed execution; report the silent
            # scalar fallback so it is visible in the telemetry surface.
            self._note_kernel_fallback("compressed_disabled")

        if hasattr(trace, "columns"):
            # Real Trace objects pack their columns once and reuse them
            # across repeated runs of the same trace (sweeps run each trace
            # dozens of times; the conversion used to dominate short runs).
            gaps, kinds, pcs, addrs, serials, tids = trace.columns()
        else:
            gaps = trace.gap.tolist() if hasattr(trace.gap, "tolist") else list(trace.gap)
            kinds = trace.kind.tolist() if hasattr(trace.kind, "tolist") else list(trace.kind)
            pcs = trace.pc.tolist() if hasattr(trace.pc, "tolist") else list(trace.pc)
            addrs = trace.addr.tolist() if hasattr(trace.addr, "tolist") else list(trace.addr)
            serials = (
                trace.serial.tolist() if hasattr(trace.serial, "tolist") else list(trace.serial)
            )
            tids = (
                trace.tid.tolist()
                if hasattr(trace, "tid") and hasattr(trace.tid, "tolist")
                else [0] * n
            )

        self.last_run_path = "legacy"
        self._measuring = False
        inst = 0
        measure_start_inst = 0
        # Hot loop: the overwhelmingly common case is an L1 hit, which
        # needs only the line lookup and a counter — handle it inline with
        # every lookup hoisted to a local, and fall into _step_miss (the
        # former _step body) only on an L1 miss.  Behaviour is bit-for-bit
        # identical to the straightforward per-record _step call.
        line_shift = self.hierarchy.line_shift
        l1i_lookup = self.hierarchy.l1i.lookup
        l1d_lookup = self.hierarchy.l1d.lookup
        step_miss = self._step_miss
        stats = self.stats
        measuring = False
        for i in range(n):
            if i == warmup_records:
                measure_start_inst = inst
                self._begin_measurement()
                stats = self.stats
                measuring = True
            inst += gaps[i]
            kind_code = kinds[i]
            line = addrs[i] >> line_shift
            if measuring:
                stats.accesses += 1
            if l1i_lookup(line) if kind_code == 0 else l1d_lookup(line):
                if measuring:
                    if kind_code == 0:
                        stats.l1i_hits += 1
                    else:
                        stats.l1d_hits += 1
                continue
            step_miss(kind_code, pcs[i], addrs[i], bool(serials[i]), inst, tids[i], line)
        return self._finish_run(trace, inst, measure_start_inst)

    # ------------------------------------------------------------------
    # Compressed execution (precomputed L1 filter plane)
    # ------------------------------------------------------------------
    def _try_epoch_kernel(
        self, trace: Any, warmup_records: int, n: int
    ) -> SimulationResult | None:
        """Dispatch to the epoch-batched kernel when its preconditions
        hold; otherwise report the fallback cause and return None."""
        from .ebcp_kernel import kernel_fallback_cause, run_epoch_batched

        cause = kernel_fallback_cause(self)
        if cause is not None:
            self._note_kernel_fallback(cause)
            return None
        return run_epoch_batched(self, trace, warmup_records, n)

    def _note_kernel_fallback(self, cause: str) -> None:
        name = self.prefetcher.name if self.prefetcher is not None else "none"
        log.debug("epoch kernel fallback (%s): %s", name, cause)
        if self.bus is not None:
            self.bus.emit(KernelFallback(prefetcher=name, cause=cause))

    def _run_compressed(self, trace: Any, warmup_records: int, n: int) -> SimulationResult:
        """Run only the L1-miss records; L1-hit runs collapse to O(1).

        The plane supplies the miss mask and the prefix sums needed to
        reconstruct every bulk statistic (accesses, per-class L1 hits, the
        instruction clock at each miss) exactly as the record-by-record
        loop would have accumulated them.
        """
        self.last_run_path = "compressed"
        hierarchy = self.hierarchy
        plane = get_filter_plane(
            trace, hierarchy.l1i.geometry_key(), hierarchy.l1d.geometry_key()
        )
        kinds, pcs, addrs, serials, insts, tids, lines = plane.miss_columns(trace)
        n_misses = plane.n_misses
        split = plane.miss_count_before(warmup_records)
        inst_prefix = plane.inst_prefix
        total_inst = int(inst_prefix[n])
        measure_start_inst = int(inst_prefix[warmup_records])

        self._measuring = False
        self._l1_precomputed = True
        # Without a prefetcher or bus subscribers the miss path collapses
        # to L2 + epochs + bandwidth; a specialised loop skips the work
        # that is unobservable in that configuration.
        simple = self.prefetcher is None and self.bus is None
        step_miss = self._step_miss
        # One iterator consumed across the warm-up boundary: the measured
        # loop picks up exactly where the warm-up loop stopped.
        miss_args = zip(kinds, pcs, addrs, serials, insts, tids, lines)
        try:
            if simple:
                self._run_misses_simple(kinds, pcs, serials, insts, lines, 0, split)
            else:
                for args in islice(miss_args, split):
                    step_miss(*args)
            if warmup_records < n:
                self._begin_measurement()
                stats = self.stats
                stats.accesses = n - warmup_records
                stats.l1i_hits = int(
                    plane.l1i_hit_prefix[n] - plane.l1i_hit_prefix[warmup_records]
                )
                stats.l1d_hits = int(
                    plane.l1d_hit_prefix[n] - plane.l1d_hit_prefix[warmup_records]
                )
            if simple:
                self._run_misses_simple(kinds, pcs, serials, insts, lines, split, n_misses)
            else:
                for args in miss_args:
                    step_miss(*args)
        finally:
            self._l1_precomputed = False
        return self._finish_run(trace, total_inst, measure_start_inst)

    def _run_misses_simple(
        self, kinds: list, pcs: list, serials: list, insts: list, lines: list,
        start: int, stop: int,
    ) -> None:
        """Miss loop specialised for ``prefetcher is None and bus is None``.

        Everything the generic ``_step_miss`` does for the benefit of a
        prefetcher or an event subscriber — the frozen ``Access`` record,
        the wall-clock cycle, the prefetch-buffer probe, interval
        tracking, request registration — is unobservable in this
        configuration and skipped; the L2, epoch, MSHR and bandwidth
        mutations are performed in exactly the legacy order, so the
        resulting statistics are bit-identical.
        """
        stats = self.stats
        measuring = self._measuring
        l2 = self.hierarchy.l2
        l2_lookup = l2.lookup
        l2_insert = l2.insert
        l2_pop_dirty = l2.pop_dirty
        tracker = self.tracker
        mshrs = self.mshrs
        rob_size = tracker.rob_size
        line_bytes = self.config.line_size
        offchip = stats.offchip_misses
        term = tracker.termination_reasons
        process_close = self._process_epoch_close
        kind_table = _KIND_TABLE
        for j in range(start, stop):
            line = lines[j]
            if measuring:
                stats.l2_accesses += 1
            if l2_lookup(line):
                if measuring:
                    stats.l2_hits += 1
                continue
            kind_code = kinds[j]
            kind = kind_table[kind_code]
            victim = l2_insert(line)
            if kind_code == 2:
                l2.mark_dirty(line)
            if victim is not None and l2_pop_dirty(victim):
                self._store_write_bytes += line_bytes
            if measuring:
                offchip[kind] += 1
            if kind_code == 2:
                # Weak consistency: store misses only consume bandwidth.
                self._store_read_bytes += line_bytes
                self._store_write_bytes += line_bytes
                continue
            inst = insts[j]
            serial = serials[j]
            epoch = tracker.open_epoch
            if epoch is None:
                reason = "first_miss"
            elif serial:
                reason = "serial_dependence"
            elif epoch.sealed:
                reason = "instruction_miss_seal"
            elif inst - epoch.trigger_inst > rob_size:
                reason = "rob_window"
            elif mshrs.has(line) or not mshrs.is_full:
                # Overlaps the open epoch (EpochTracker.join, inlined).
                mshrs.allocate(line)
                epoch.miss_lines.append(line)
                epoch.miss_kinds.append(kind)
                if kind_code == 0:
                    epoch.sealed = True
                continue
            else:
                reason = "mshr_full"
            # Window terminated (EpochTracker.open_new, inlined): count
            # the reason *before* closing so the close merges it, exactly
            # like the legacy ordering.
            term[reason] = term.get(reason, 0) + 1
            new_epoch = Epoch(
                index=tracker.epoch_count,
                trigger_line=line,
                trigger_kind=kind,
                trigger_pc=pcs[j],
                trigger_inst=inst,
            )
            new_epoch.miss_lines.append(line)
            new_epoch.miss_kinds.append(kind)
            if kind_code == 0:
                new_epoch.sealed = True
            tracker.epoch_count += 1
            tracker.open_epoch = new_epoch
            if epoch is not None:
                epoch.close_inst = inst
                process_close(epoch, inst)
            if measuring:
                stats.epochs += 1
                if serial:
                    stats.serial_epochs += 1
            mshrs.allocate(line)

    def _finish_run(self, trace: Any, inst: int, measure_start_inst: int) -> SimulationResult:
        """Close the final epoch, flush transfers, assemble the result."""
        closed = self.tracker.close(inst)
        if closed is not None:
            self._process_epoch_close(closed, inst)
        if self._pending:
            self._flush_pending(inst)

        if self._measuring:
            self.stats.instructions = inst - measure_start_inst
        workload_name = getattr(getattr(trace, "meta", None), "name", "trace")
        pf_name = self.prefetcher.name if self.prefetcher is not None else "none"
        log.info(
            "run done: %s instructions measured, %s epochs, %s off-chip misses",
            self.stats.instructions,
            self.stats.epochs,
            self.stats.total_offchip_misses,
        )
        return SimulationResult(
            workload=workload_name,
            prefetcher=pf_name,
            stats=self.stats,
            cpi_perf=self.cpi_perf,
            overlap=self.overlap,
            config_summary={
                "l2_bytes": self.config.l2.size_bytes,
                "read_bw_gbps": self.config.read_bw_gbps,
                "prefetch_buffer_entries": self.config.prefetch_buffer_entries,
            },
        )

    # ------------------------------------------------------------------
    # Measurement control
    # ------------------------------------------------------------------
    def _begin_measurement(self) -> None:
        """Reset statistics at the warm-up / measurement boundary."""
        self.stats = SimulationStats()
        self.bandwidth.read_stats = BusStats()
        self.bandwidth.write_stats = BusStats()
        self._measuring = True

    # ------------------------------------------------------------------
    # Per-record step
    # ------------------------------------------------------------------
    def _step(
        self, kind_code: int, pc: int, addr: int, serial: bool, inst: int, tid: int = 0
    ) -> None:
        """One trace record: L1 filter, then the miss path.

        Retained as the single-record entry point (run() inlines the L1-hit
        fast path for speed but is behaviourally identical).
        """
        stats = self.stats
        if self._measuring:
            stats.accesses += 1
        line = addr >> self.hierarchy.line_shift
        l1 = self.hierarchy.l1i if kind_code == 0 else self.hierarchy.l1d
        if l1.lookup(line):
            if self._measuring:
                if kind_code == 0:
                    stats.l1i_hits += 1
                else:
                    stats.l1d_hits += 1
            return
        self._step_miss(kind_code, pc, addr, serial, inst, tid, line)

    def _step_miss(
        self, kind_code: int, pc: int, addr: int, serial: bool, inst: int, tid: int, line: int
    ) -> None:
        """An L1 miss (== L2 access): epochs, prefetcher, hierarchy, timing.

        The caller has already counted the access and performed the L1
        lookup (whose LRU side effect is the same whether it hits or
        misses).
        """
        stats = self.stats
        measuring = self._measuring
        hierarchy = self.hierarchy
        # L2-hit fast path: when no prefetcher observes the access stream
        # and no bus listens, a hit has no observer — the only effects are
        # the L2 LRU touch, the L1 fill and two counters, so the Access
        # and HierarchyResult objects need never exist.  (The epoch
        # bookkeeping skipped here is pure computation on the miss path.)
        if not self._wants_access_stream and hierarchy.bus is None:
            if hierarchy.l2.lookup(line):
                if not self._l1_precomputed:
                    (hierarchy.l1i if kind_code == 0 else hierarchy.l1d).insert(line)
                if measuring:
                    stats.l2_accesses += 1
                    stats.l2_hits += 1
                return
            l2_known_miss = True
        else:
            l2_known_miss = False
        kind = _KIND_TABLE[kind_code]
        tracker = self.tracker
        prefetcher = self.prefetcher

        access = Access(kind, pc, addr, serial, inst, tid)
        requests: list[PrefetchRequest] = []

        # Prospective epoch membership: would this access overlap the
        # open epoch, or does it logically execute after its stall?
        # (EpochTracker.can_join, inlined — innermost branch of the path.)
        open_epoch = tracker.open_epoch
        if open_epoch is None:
            prospective = tracker.epoch_count
            joins = False
            reason = "first_miss"
        else:
            if serial:
                joins, reason = False, "serial_dependence"
            elif open_epoch.sealed:
                joins, reason = False, "instruction_miss_seal"
            elif inst - open_epoch.trigger_inst > tracker.rob_size:
                joins, reason = False, "rob_window"
            elif self.mshrs.has(line) or not self.mshrs.is_full:
                joins, reason = True, ""
            else:
                joins, reason = False, "mshr_full"
            prospective = open_epoch.index if joins else tracker.epoch_count
        # Wall-clock time of this access: instructions retired so far plus
        # all resolved stalls, plus the still-open epoch's stall if the
        # access can only execute after it resolves.
        cycle = inst * self._cpi_onchip + self._penalty_accum
        if open_epoch is not None and not joins:
            cycle += self._memory_latency

        # Every L1 miss is an L2 access the prefetcher control can see.
        if self._wants_access_stream:
            requests.extend(prefetcher.observe_access(access, line, prospective))

        if self._l1_precomputed:
            l1 = None
        else:
            l1 = hierarchy.l1i if kind_code == 0 else hierarchy.l1d
        result = hierarchy.access_after_l1_miss(access, line, l1, cycle, l2_known_miss)
        if result.writeback_line is not None:
            # Dirty L2 victim: a memory write, visible to memory-side
            # prefetchers as part of the raw request stream.
            self._store_write_bytes += self._line_bytes
            if prefetcher is not None and prefetcher.observes_stores:
                wb_access = Access(
                    kind=AccessKind.STORE,
                    pc=0,
                    addr=result.writeback_line << self.hierarchy.line_shift,
                    inst_index=inst,
                )
                requests.extend(
                    prefetcher.observe_offchip_miss(
                        wb_access, result.writeback_line, None, False
                    )
                )
        if measuring:
            stats.l2_accesses += 1

        if result.outcome is AccessOutcome.L2_HIT:
            if measuring:
                stats.l2_hits += 1
            if requests:
                self._register_requests(requests, prospective, cycle)
            return

        if result.outcome is AccessOutcome.PREFETCH_HIT:
            if measuring:
                stats.prefetch_hits[kind] += 1
            if self.bus is not None and self.bus.wants(PrefetchHit):
                self.bus.emit(
                    PrefetchHit(
                        line=line,
                        epoch_index=prospective,
                        issue_epoch=result.prefetch_issue_epoch,
                        source=result.prefetch_source,
                        measured=measuring,
                        table_index=result.table_index,
                    )
                )
            if kind is not AccessKind.STORE:
                # An averted miss still marks the would-be epoch structure
                # the prefetcher tracks (paper Section 3.4.3: a prefetch
                # buffer hit substitutes for the first miss of a new epoch).
                first = self._interval_event(kind, serial, inst)
                if prefetcher is not None:
                    requests.extend(
                        prefetcher.observe_prefetch_hit(
                            access, line, result.table_index, prospective, first
                        )
                    )
            if requests:
                self._register_requests(requests, prospective, cycle)
            return

        # Genuine off-chip miss.
        if measuring:
            stats.offchip_misses[kind] += 1
            if result.late_prefetch:
                stats.late_prefetches += 1

        if kind is AccessKind.STORE:
            # Weak consistency: store misses never stall the window and
            # never create epochs; they only consume bandwidth.
            self._store_read_bytes += self._line_bytes
            self._store_write_bytes += self._line_bytes
            if requests:
                self._register_requests(requests, prospective, cycle)
            return

        if joins:
            self.mshrs.allocate(line)
            epoch = tracker.join(access, line)
        else:
            closed, epoch = tracker.open_new(access, line, reason)
            if closed is not None:
                self._process_epoch_close(closed, inst)
            if measuring:
                stats.epochs += 1
                if serial:
                    stats.serial_epochs += 1
            self.mshrs.allocate(line)

        is_trigger = self._interval_event(kind, serial, inst)
        if prefetcher is not None:
            requests.extend(
                prefetcher.observe_offchip_miss(access, line, epoch, is_trigger)
            )
        if requests:
            self._register_requests(requests, epoch.index if not joins else prospective, cycle)

    # ------------------------------------------------------------------
    # Would-be epoch (interval) tracking for the prefetcher
    # ------------------------------------------------------------------
    def _interval_event(self, kind: AccessKind, serial: bool, inst: int) -> bool:
        """Advance the would-be epoch structure on an off-chip-class event.

        Real misses *and* prefetch-buffer hits advance this structure: it
        is the epoch partitioning the program would exhibit without
        prefetching, which is what the prefetcher keys its correlation
        table on.  (With no prefetcher it coincides with the real epoch
        sequence.)  Returns True when the event opens a new interval —
        i.e. it is the (would-be) epoch trigger.
        """
        new_interval = (
            self._interval_trigger_inst is None
            or serial
            or self._interval_sealed
            or inst - self._interval_trigger_inst > self._rob_size
        )
        if new_interval:
            if self.prefetcher is not None and self._interval_trigger_inst is not None:
                boundary_requests = self.prefetcher.on_epoch_boundary(self.tracker.open_epoch)
                if boundary_requests:
                    self._register_requests(
                        boundary_requests,
                        self.tracker.epoch_count,
                        inst * self._cpi_onchip + self._penalty_accum,
                    )
            self._interval_trigger_inst = inst
            self._interval_sealed = False
        if kind is AccessKind.IFETCH:
            # An off-chip instruction miss terminates the window: nothing
            # after it can overlap into the same (would-be) epoch.
            self._interval_sealed = True
        return new_interval

    # ------------------------------------------------------------------
    # Prefetch registration
    # ------------------------------------------------------------------
    def _register_requests(
        self, requests: Iterable[PrefetchRequest], epoch_index: int, cycle: float
    ) -> None:
        for req in requests:
            if self._measuring:
                self.stats.prefetches_generated += 1
            # One miss penalty per pipeline step: the table read occupies
            # the first, the prefetch transfer the last (Section 3.2).
            ready_cycle = cycle + req.epochs_until_ready * self._memory_latency
            # Bandwidth is charged to the epoch window the request was
            # created in: that window's duration spans the wall time in
            # which the transfer occupies the bus.
            issue_epoch = epoch_index
            line = req.line_addr
            if not self.hierarchy.fill_prefetch(
                line, ready_cycle, req.table_index, req.source, issue_epoch
            ):
                if self._measuring:
                    self.stats.prefetches_redundant += 1
                continue
            req.issue_epoch = issue_epoch
            self._pending.append(_PendingTransfer(req, issue_epoch, line))

    # ------------------------------------------------------------------
    # Epoch close: timing + bandwidth accounting
    # ------------------------------------------------------------------
    def _process_epoch_close(self, closed: Epoch, now_inst: int) -> None:
        self.mshrs.drain()
        base_penalty = self._base_penalty
        bandwidth = self.bandwidth
        measuring = self._measuring
        span_insts = max(0, now_inst - closed.trigger_inst)
        duration = span_insts * self._cpi_onchip + base_penalty
        # Wall-clock position of the window, for the epoch timeline.
        start_cycle = closed.trigger_inst * self._cpi_onchip + self._penalty_accum
        budget = bandwidth.open_epoch(duration)
        line_bytes = self._line_bytes

        # 1. Demand fills (never droppable).
        budget.charge_read(Priority.DEMAND, closed.n_misses * line_bytes, droppable=False)
        if self._store_read_bytes:
            budget.charge_read(Priority.DEMAND, self._store_read_bytes, droppable=False)
            self._store_read_bytes = 0
        if self._store_write_bytes:
            budget.charge_write(Priority.DEMAND, self._store_write_bytes, droppable=False)
            self._store_write_bytes = 0

        # 2. Correlation-table traffic.
        if self.prefetcher is not None:
            lookup_r, update_r, update_w, lru_w = self.prefetcher.traffic.drain()
            if lookup_r:
                budget.charge_read(Priority.TABLE_LOOKUP, lookup_r, droppable=False)
            if update_r:
                budget.charge_read(Priority.TABLE_UPDATE, update_r, droppable=True)
            if update_w:
                budget.charge_write(Priority.TABLE_UPDATE, update_w)
            if lru_w:
                budget.charge_write(Priority.LRU_WRITEBACK, lru_w)
            if measuring:
                self.stats.table_read_bytes += lookup_r + update_r
                self.stats.table_write_bytes += update_w + lru_w

        # 3. Prefetch transfers whose window this is.
        if self._pending:
            still_pending: list[_PendingTransfer] = []
            for transfer in self._pending:
                if transfer.issue_epoch > closed.index:
                    still_pending.append(transfer)
                    continue
                self._charge_transfer(transfer, budget, line_bytes, closed.index)
            self._pending = still_pending

        bandwidth.close_epoch(budget)

        # 4. Effective penalty: queueing from this window's utilisation.
        queueing = bandwidth.queueing_delay(base_penalty)
        self._penalty_accum += base_penalty + queueing
        if self.bus is not None and self.bus.wants(EpochClosed):
            emab = getattr(self.prefetcher, "emab", None)
            self.bus.emit(
                EpochClosed(
                    epoch=closed,
                    index=closed.index,
                    n_misses=closed.n_misses,
                    start_cycle=start_cycle,
                    duration_cycles=duration,
                    read_utilization=budget.read_utilization,
                    queueing_cycles=queueing,
                    measured=measuring,
                    emab_occupancy=emab.occupancy if emab is not None else -1,
                    buffer_occupancy=self.hierarchy.prefetch_buffer.occupancy,
                )
            )
        if measuring:
            stats = self.stats
            stats.offchip_cycles += base_penalty + queueing
            stats.queueing_cycles += queueing
            stats.read_bytes += int(budget.read_used)
            stats.write_bytes += int(budget.write_used)
            stats.read_budget_bytes += int(budget.read_budget)
            merged = stats.termination_reasons
            for reason, count in self.tracker.termination_reasons.items():
                merged[reason] = merged.get(reason, 0) + count
            self.tracker.termination_reasons.clear()
        else:
            self.tracker.termination_reasons.clear()

    def _charge_transfer(
        self,
        transfer: _PendingTransfer,
        budget: EpochBudget,
        line_bytes: int,
        window_epoch: int,
    ) -> None:
        bus = self.bus
        entry = self.hierarchy.prefetch_buffer.peek(transfer.line)
        if entry is None or entry.used:
            # Consumed or already evicted: the transfer physically
            # happened, charge it unconditionally.
            budget.charge_read(Priority.PREFETCH, line_bytes, droppable=False)
            if self._measuring:
                self.stats.prefetches_filled += 1
            if bus is not None and bus.wants(PrefetchFilled):
                bus.emit(
                    PrefetchFilled(
                        line=transfer.line,
                        issue_epoch=transfer.issue_epoch,
                        window_epoch=window_epoch,
                    )
                )
            return
        if budget.charge_read(Priority.PREFETCH, line_bytes, droppable=True):
            if self._measuring:
                self.stats.prefetches_filled += 1
            if bus is not None and bus.wants(PrefetchFilled):
                bus.emit(
                    PrefetchFilled(
                        line=transfer.line,
                        issue_epoch=transfer.issue_epoch,
                        window_epoch=window_epoch,
                    )
                )
        else:
            self.hierarchy.prefetch_buffer.invalidate(transfer.line)
            if self._measuring:
                self.stats.prefetches_dropped += 1
            if bus is not None and bus.wants(PrefetchDropped):
                bus.emit(
                    PrefetchDropped(
                        line=transfer.line,
                        reason="bandwidth",
                        source=transfer.request.source,
                    )
                )

    def _flush_pending(self, now_inst: int) -> None:
        """Charge transfers still pending at end of trace."""
        duration = self._base_penalty
        budget = self.bandwidth.open_epoch(duration)
        for transfer in self._pending:
            self._charge_transfer(
                transfer, budget, self._line_bytes, self.tracker.epoch_count
            )
        self._pending.clear()
        self.bandwidth.close_epoch(budget)
