"""Epoch bookkeeping for the epoch MLP model (paper Section 2.1).

An *epoch* is a period of on-chip computation followed by overlapped
off-chip accesses.  The first off-chip miss of an epoch is the *epoch
trigger*; the epoch count increments exactly when the number of
outstanding off-chip misses transitions from 0 to 1.

:class:`EpochTracker` implements the membership rules: a new off-chip
miss joins the open epoch unless a window-termination condition applies.
The termination conditions modelled (from [26] via Section 2.1) are:

* no epoch is open (trivially a new trigger);
* the miss is data-dependent on an earlier miss of the open epoch
  (``Access.serial`` — pointer chasing serialises);
* the reorder buffer would fill: more than ``rob_size`` instructions
  separate the miss from the epoch trigger;
* the MSHR file is exhausted (checked by the engine before joining);
* the open epoch was sealed by an off-chip *instruction* miss — an
  instruction miss prevents any later instruction from executing until it
  resolves, so nothing after it can overlap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..memory.request import Access, AccessKind

__all__ = ["Epoch", "EpochTracker"]


@dataclass
class Epoch:
    """One closed or open epoch."""

    index: int
    trigger_line: int
    trigger_kind: AccessKind
    trigger_pc: int
    trigger_inst: int
    miss_lines: list[int] = field(default_factory=list)
    miss_kinds: list[AccessKind] = field(default_factory=list)
    sealed: bool = False
    #: Instruction index at which the epoch was closed (set on close).
    close_inst: int = 0

    @property
    def n_misses(self) -> int:
        return len(self.miss_lines)

    def add_miss(self, line: int, kind: AccessKind) -> None:
        self.miss_lines.append(line)
        self.miss_kinds.append(kind)
        if kind is AccessKind.IFETCH:
            # Off-chip instruction misses terminate the window: no later
            # miss may overlap with this epoch.
            self.sealed = True


class EpochTracker:
    """Tracks the open epoch and applies membership rules."""

    def __init__(self, rob_size: int) -> None:
        if rob_size <= 0:
            raise ValueError("rob_size must be positive")
        self.rob_size = rob_size
        self.open_epoch: Epoch | None = None
        self.epoch_count = 0
        #: Why new epochs were opened, for diagnostics.
        self.termination_reasons: dict[str, int] = {}

    # ------------------------------------------------------------------
    def can_join(self, access: Access, mshr_ok: bool) -> tuple[bool, str]:
        """Would this off-chip miss join the open epoch?

        Returns ``(joins, reason)`` where ``reason`` names the
        window-termination condition when ``joins`` is False.
        """
        epoch = self.open_epoch
        if epoch is None:
            return False, "first_miss"
        if access.serial:
            return False, "serial_dependence"
        if epoch.sealed:
            return False, "instruction_miss_seal"
        if access.inst_index - epoch.trigger_inst > self.rob_size:
            return False, "rob_window"
        if not mshr_ok:
            return False, "mshr_full"
        return True, ""

    def join(self, access: Access, line: int) -> Epoch:
        """Add an overlapped miss to the open epoch."""
        epoch = self.open_epoch
        assert epoch is not None, "join() with no open epoch"
        epoch.add_miss(line, access.kind)
        return epoch

    def open_new(self, access: Access, line: int, reason: str) -> tuple[Epoch | None, Epoch]:
        """Close the open epoch (if any) and open a new one.

        Returns ``(closed_epoch, new_epoch)``; ``closed_epoch`` is None
        for the very first epoch of the run.
        """
        closed = self.close(access.inst_index)
        self.termination_reasons[reason] = self.termination_reasons.get(reason, 0) + 1
        epoch = Epoch(
            index=self.epoch_count,
            trigger_line=line,
            trigger_kind=access.kind,
            trigger_pc=access.pc,
            trigger_inst=access.inst_index,
        )
        epoch.add_miss(line, access.kind)
        self.epoch_count += 1
        self.open_epoch = epoch
        return closed, epoch

    def close(self, at_inst: int) -> Epoch | None:
        """Close the open epoch, if any, and return it."""
        closed = self.open_epoch
        if closed is not None:
            closed.close_inst = at_inst
            self.open_epoch = None
        return closed
