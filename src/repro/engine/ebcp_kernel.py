"""Epoch-batched execution kernel for EBCP and its variants.

The scalar simulator spends most of an ``ebcp`` run re-deriving facts that
are pure functions of the trace and the cache geometry: the L2 outcome of
every L1 miss, the victim each install evicts, the would-be epoch
(interval) boundaries, and the EMAB's entire contents (the buffer records
every non-store off-chip-class event in stream order, so its state at any
boundary — and therefore every training view it will ever emit — is known
before the run starts).  :mod:`repro.engine.filter_plane` precomputes all
of that once per (trace, geometry) as an :class:`EpochSegmentPlane`.

What remains genuinely dynamic is the feedback loop through the
correlation table and the prefetch buffer: a table lookup issues
prefetches, a later demand access may hit the staged line, the hit
refreshes the producing table entry's LRU stamp (``touch``), which
changes what later training steps evict — so table and buffer state
cannot be precomputed.  This kernel walks only the L2-*missing* records
(the L2-hit majority of the miss stream collapses into the precomputed
plane) and replays the exact operation sequence of
``EpochSimulator._step_miss`` with every piece of mutable state held in
plain locals: the correlation table's arrays, the bandwidth model's
budget arithmetic and the traffic meter are inlined against the same
data the real objects own, performing the identical Python float and
dict operations in the identical order — bit-identical results, enforced
by kernel-vs-scalar identity tests across every workload family.

At the end of the run the simulator's objects (L2 contents, prefetch
buffer, MSHRs, EMAB, epoch tracker, correlation-table stats, bus stats,
pending transfers) are restored to exactly the state the scalar walk
would have left, so ``_finish_run`` — and any later scalar run on the
same simulator — behaves identically.

``REPRO_KERNEL=0/off`` (or the ``--no-kernel`` CLI flag) forces the
scalar reference path; :func:`kernel_fallback_cause` names why a run
cannot use the kernel, and the simulator reports it as a
``KernelFallback`` observability event.
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING, Any, Optional

from ..core.correlation_table import _HASH_MASK, _HASH_MULT
from ..memory.prefetch_buffer import BufferEntry
from ..memory.request import AccessKind, PrefetchRequest, Priority
from .epoch import Epoch
from .filter_plane import get_epoch_segments, get_filter_plane, kernel_enabled

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .simulator import EpochSimulator

__all__ = ["kernel_enabled", "kernel_fallback_cause", "run_epoch_batched"]

log = logging.getLogger(__name__)

_KIND_OBJS = (AccessKind.IFETCH, AccessKind.LOAD, AccessKind.STORE)


def kernel_fallback_cause(sim: "EpochSimulator") -> Optional[str]:
    """Why the epoch-batched kernel cannot run this simulation.

    Returns ``None`` when the kernel is usable.  The checks mirror the
    kernel's assumptions: it replays EBCP's exact semantics (so only the
    unmodified prefetcher class qualifies), it cannot feed per-access
    event subscribers, and it precomputes the epoch segmentation from a
    cold start (so a warm simulator must take the scalar path).
    """
    from ..core.prefetcher import EpochBasedCorrelationPrefetcher

    prefetcher = sim.prefetcher
    if prefetcher is None or not getattr(prefetcher, "supports_epoch_batch", False):
        return "unsupported_prefetcher"
    if type(prefetcher) is not EpochBasedCorrelationPrefetcher:
        return "subclassed_prefetcher"
    if not kernel_enabled():
        return "disabled"
    if sim.bus is not None:
        return "bus_attached"
    if sim._wants_access_stream:
        return "access_stream"
    if not prefetcher.is_active:
        return "prefetcher_inactive"
    emab = prefetcher.emab
    if (
        sim.tracker.open_epoch is not None
        or sim.tracker.epoch_count != 0
        or sim._interval_trigger_inst is not None
        or sim._pending
        or sim._penalty_accum != 0.0
        or sim._store_read_bytes
        or sim._store_write_bytes
        or sim.mshrs.outstanding
        or sim.hierarchy.l2.occupancy
        or sim.hierarchy.prefetch_buffer.occupancy
        or emab.occupancy != 0
        or emab.filled_entries != 1
    ):
        return "warm_state"
    return None


def run_epoch_batched(
    sim: "EpochSimulator", trace: Any, warmup_records: int, n: int
):
    """Run the trace through the epoch-batched kernel.

    The caller (``EpochSimulator.run``) has validated the preconditions
    via :func:`kernel_fallback_cause`.
    """
    hierarchy = sim.hierarchy
    prefetcher = sim.prefetcher
    cfg = prefetcher.config
    plane = get_filter_plane(
        trace, hierarchy.l1i.geometry_key(), hierarchy.l1d.geometry_key()
    )
    seg = get_epoch_segments(trace, plane, hierarchy.l2.geometry_key(), sim._rob_size)
    views, view_entries, emab_overflow = seg.training_views(
        trace, plane, cfg.skip_epochs, cfg.stored_epochs, cfg.emab_capacity_per_epoch
    )
    (
        w_kinds,
        w_pcs,
        w_serials,
        w_insts,
        w_lines,
        w_victims,
        w_vdirty,
        w_triggers,
    ) = seg.walk_columns(trace, plane)

    n_misses = plane.n_misses
    n_walk = seg.n_walk
    split = plane.miss_count_before(warmup_records)
    wsplit = seg.walk_count_before(split)
    inst_prefix = plane.inst_prefix
    total_inst = int(inst_prefix[n])
    measure_start_inst = int(inst_prefix[warmup_records])

    # ------------------------------------------------------------------
    # Hot-loop locals.  Everything below mirrors a field of a simulator
    # object; the sync-back section at the end is the single place where
    # local state flows back into those objects.
    # ------------------------------------------------------------------
    sim._measuring = False
    measuring = False

    cpi = sim._cpi_onchip
    mem_lat = sim._memory_latency
    base_penalty = sim._base_penalty
    line_bytes = sim._line_bytes
    rob_size = sim._rob_size
    pacc = sim._penalty_accum

    # Epoch tracker state as plain scalars; the open Epoch object is
    # reconstructed at the end of the run.
    ep_open = False
    ep_index = 0
    ep_trigger_line = 0
    ep_trigger_kind = 0
    ep_trigger_pc = 0
    ep_trigger_inst = 0
    ep_sealed = False
    ep_lines: list = []
    ep_kind_codes: list = []
    epoch_count = sim.tracker.epoch_count
    term = sim.tracker.termination_reasons  # mutated in place, like the scalar path

    # Interval state (final values synced back; the per-event trigger
    # decision itself comes precomputed from the segment plane).
    itrig: Optional[int] = None
    isealed = False
    boundary_ordinal = 0

    # MSHR file as a plain set plus counters.
    mshr_cap = sim.mshrs.capacity
    ms: set = set()
    ms_add = ms.add
    n_mshr_alloc = 0
    n_mshr_merge = 0

    # L2 residency: the real cache object stays untouched during the walk
    # (its exact final contents come from the segment plane); the kernel
    # only needs membership for prefetch redundancy filtering.
    resident: set = set()
    res_add = resident.add
    res_discard = resident.discard

    # Prefetch buffer shadow: per-set dicts of line -> mutable
    # [ready_cycle, table_index, last_use, issue_epoch] entries.
    buffer = hierarchy.prefetch_buffer
    bways = buffer.ways
    bmask = buffer._set_mask
    bsets: list = [dict() for _ in range(buffer.n_sets)]
    bstamp = buffer._stamp
    b_fills = b_hits = b_late = b_evictions = b_evicted_unused = 0

    # Pending bus transfers as (issue_epoch, line, table_index) tuples.
    pending: list = []
    pending_append = pending.append

    store_read = sim._store_read_bytes
    store_write = sim._store_write_bytes

    # Bandwidth model: the per-close budget arithmetic of
    # EpochBudget/BandwidthModel.close_epoch/queueing_delay, inlined with
    # the identical float-operation sequence.  Per-priority byte accounts
    # mirror BusStats and are merged into the live objects at the end.
    bandwidth = sim.bandwidth
    read_bpc = bandwidth.read_bytes_per_cycle
    write_bpc = bandwidth.write_bytes_per_cycle
    q_threshold = bandwidth.queue_threshold
    q_factor = bandwidth.queue_penalty_factor
    ema_alpha = bandwidth.EMA_ALPHA
    ema = bandwidth._ema_read_utilization
    last_util = bandwidth._last_read_utilization
    r_by: dict = {}
    r_drop: dict = {}
    w_by: dict = {}
    w_drop: dict = {}
    r_used_total = 0
    w_used_total = 0
    r_budget_total = 0
    w_budget_total = 0
    iD = int(Priority.DEMAND)
    iL = int(Priority.TABLE_LOOKUP)
    iP = int(Priority.PREFETCH)
    iU = int(Priority.TABLE_UPDATE)
    iW = int(Priority.LRU_WRITEBACK)

    # Correlation table, inlined against its own arrays (CorrelationTable
    # lookup/train/touch semantics, including the shared LRU stamp).
    table = prefetcher.table
    tbl_tags = table._tags
    tbl_addrs = table._addrs
    tbl_n = table.n_entries
    tbl_cap = table.addrs_per_entry
    tbl_stamp = table._stamp
    n_lookups = n_lookup_hits = n_trains = n_allocs = 0
    n_conflicts = n_repl = n_touches = 0

    # Traffic meter (TrafficMeter add_*/drain), as pending + total locals.
    traffic = prefetcher.traffic
    tm_lookup_r = traffic.lookup_read_bytes
    tm_update_r = traffic.update_read_bytes
    tm_update_w = traffic.update_write_bytes
    tm_lru_w = traffic.lru_write_bytes
    tm_total_r = 0
    tm_total_w = 0

    in_memory = cfg.table_in_memory
    entry_bytes = cfg.entry_bytes
    degree = cfg.prefetch_degree
    ready_mul = (2 if in_memory else 1) * mem_lat
    n_issued = 0
    n_suppressed = 0

    # Measured-region statistics as plain locals, reset at the warm-up
    # boundary and folded into the fresh SimulationStats at the end.
    of_counts = [0, 0, 0]  # offchip_misses by kind code
    ph_counts = [0, 0, 0]  # prefetch_hits by kind code
    s_late = 0
    s_epochs = 0
    s_serial_epochs = 0
    s_generated = 0
    s_filled = 0
    s_redundant = 0
    s_dropped = 0
    s_offchip_cycles = 0.0
    s_queueing_cycles = 0.0
    s_read_bytes = 0
    s_write_bytes = 0
    s_read_budget = 0
    s_table_r = 0
    s_table_w = 0
    term_merged: dict = {}

    walk_iter = zip(
        w_kinds, w_pcs, w_serials, w_insts, w_lines, w_victims, w_vdirty, w_triggers
    )
    for i, (kc, pc, serial, inst, line, victim, vdirty, trig) in enumerate(walk_iter):
        if i == wsplit and not measuring and warmup_records < n:
            # Warm-up / measurement boundary: the scalar path swaps in
            # fresh stats objects; here the locals reset instead.
            sim._begin_measurement()
            measuring = True
            of_counts = [0, 0, 0]
            ph_counts = [0, 0, 0]
            s_late = s_epochs = s_serial_epochs = 0
            s_generated = s_filled = s_redundant = s_dropped = 0
            s_offchip_cycles = s_queueing_cycles = 0.0
            s_read_bytes = s_write_bytes = s_read_budget = 0
            s_table_r = s_table_w = 0
            term_merged = {}
            r_by = {}
            r_drop = {}
            w_by = {}
            w_drop = {}
            r_used_total = w_used_total = 0
            r_budget_total = w_budget_total = 0

        # Prospective epoch membership (EpochTracker.can_join, inlined).
        if not ep_open:
            prospective = epoch_count
            joins = False
            reason = "first_miss"
        else:
            if serial:
                joins, reason = False, "serial_dependence"
            elif ep_sealed:
                joins, reason = False, "instruction_miss_seal"
            elif inst - ep_trigger_inst > rob_size:
                joins, reason = False, "rob_window"
            elif line in ms or len(ms) < mshr_cap:
                joins, reason = True, ""
            else:
                joins, reason = False, "mshr_full"
            prospective = ep_index if joins else epoch_count
        cycle = inst * cpi + pacc
        if ep_open and not joins:
            cycle += mem_lat

        # Prefetch-buffer probe (PrefetchBuffer.lookup, inlined) and the
        # L2 install, whose outcome the segment plane precomputed.
        bucket = bsets[line & bmask]
        hit_entry = bucket.get(line)
        late = False
        if hit_entry is not None:
            if hit_entry[0] <= cycle:
                del bucket[line]
                b_hits += 1
            else:
                hit_entry = None
                late = True
                b_late += 1
        res_add(line)
        if victim >= 0:
            res_discard(victim)
            if vdirty:
                store_write += line_bytes

        cand = None
        if hit_entry is not None:
            # ---------------- PREFETCH_HIT ----------------
            ph_counts[kc] += 1
            if kc != 2:
                if trig:
                    if boundary_ordinal:
                        view = views[boundary_ordinal]
                        if view is not None:
                            # table.train(view[0], view[1]), inlined.
                            vk = view[0]
                            n_trains += 1
                            ti = ((vk * _HASH_MULT) & _HASH_MASK) % tbl_n
                            capped = view[1][:tbl_cap]
                            if tbl_tags[ti] != vk:
                                if tbl_tags[ti] != -1:
                                    n_conflicts += 1
                                n_allocs += 1
                                addrs = {}
                                st = tbl_stamp
                                for ln in capped:
                                    st += 1
                                    addrs[ln] = st
                                tbl_stamp = st
                                tbl_tags[ti] = vk
                                tbl_addrs[ti] = addrs
                            else:
                                addrs = tbl_addrs[ti]
                                inserted = set()
                                for ln in capped:
                                    tbl_stamp += 1
                                    if ln in addrs:
                                        addrs[ln] = tbl_stamp
                                        inserted.add(ln)
                                        continue
                                    if len(addrs) >= tbl_cap:
                                        cands = [a for a in addrs if a not in inserted]
                                        if not cands:
                                            break
                                        vv = min(cands, key=addrs.__getitem__)
                                        del addrs[vv]
                                        n_repl += 1
                                    addrs[ln] = tbl_stamp
                                    inserted.add(ln)
                            if in_memory:
                                tm_update_r += entry_bytes
                                tm_update_w += entry_bytes
                                tm_total_r += entry_bytes
                                tm_total_w += entry_bytes
                    boundary_ordinal += 1
                    itrig = inst
                    isealed = False
                if kc == 0:
                    isealed = True
                # observe_prefetch_hit: the EMAB record is precomputed;
                # table.touch refreshes the producing entry's LRU stamp.
                ti = hit_entry[1]
                if ti is not None:
                    n_touches += 1
                    addrs = tbl_addrs[ti]
                    if addrs is not None and line in addrs:
                        tbl_stamp += 1
                        addrs[line] = tbl_stamp
                        if in_memory:
                            tm_lru_w += entry_bytes
                            tm_total_w += entry_bytes
                if trig:
                    # _lookup_and_issue: table.lookup(line), inlined.
                    if in_memory:
                        tm_lookup_r += entry_bytes
                        tm_total_r += entry_bytes
                    n_lookups += 1
                    ti = ((line * _HASH_MULT) & _HASH_MASK) % tbl_n
                    if tbl_tags[ti] == line:
                        n_lookup_hits += 1
                        addrs = tbl_addrs[ti]
                        cand = sorted(addrs, key=addrs.__getitem__, reverse=True)
        else:
            # ---------------- genuine off-chip miss ----------------
            of_counts[kc] += 1
            if late:
                s_late += 1
            if kc == 2:
                # Weak consistency: stores only consume bandwidth.
                store_read += line_bytes
                store_write += line_bytes
                continue
            if joins:
                if line in ms:
                    n_mshr_merge += 1
                else:
                    ms_add(line)
                    n_mshr_alloc += 1
                ep_lines.append(line)
                ep_kind_codes.append(kc)
                if kc == 0:
                    ep_sealed = True
            else:
                term[reason] = term.get(reason, 0) + 1
                if ep_open:
                    # ---- close the open epoch (_process_epoch_close +
                    # EpochBudget charges, inlined) ----
                    ms.clear()
                    span = inst - ep_trigger_inst
                    if span < 0:
                        span = 0
                    duration = span * cpi + base_penalty
                    rb = duration * read_bpc
                    wb = duration * write_bpc
                    r_budget_total += int(rb)
                    w_budget_total += int(wb)
                    r_used = 0.0
                    w_used = 0.0
                    nb = len(ep_lines) * line_bytes
                    r_used += nb
                    r_by[iD] = r_by.get(iD, 0) + nb
                    r_used_total += nb
                    if store_read:
                        r_used += store_read
                        r_by[iD] = r_by.get(iD, 0) + store_read
                        r_used_total += store_read
                        store_read = 0
                    if store_write:
                        w_used += store_write
                        w_by[iD] = w_by.get(iD, 0) + store_write
                        w_used_total += store_write
                        store_write = 0
                    # TrafficMeter.drain()
                    lookup_r, update_r = tm_lookup_r, tm_update_r
                    update_w, lru_w = tm_update_w, tm_lru_w
                    tm_lookup_r = tm_update_r = tm_update_w = tm_lru_w = 0
                    if lookup_r:
                        r_used += lookup_r
                        r_by[iL] = r_by.get(iL, 0) + lookup_r
                        r_used_total += lookup_r
                    if update_r:
                        if r_used + update_r > rb:
                            r_drop[iU] = r_drop.get(iU, 0) + update_r
                        else:
                            r_used += update_r
                            r_by[iU] = r_by.get(iU, 0) + update_r
                            r_used_total += update_r
                    if update_w:
                        if w_used + update_w > wb:
                            w_drop[iU] = w_drop.get(iU, 0) + update_w
                        else:
                            w_used += update_w
                            w_by[iU] = w_by.get(iU, 0) + update_w
                            w_used_total += update_w
                    if lru_w:
                        if w_used + lru_w > wb:
                            w_drop[iW] = w_drop.get(iW, 0) + lru_w
                        else:
                            w_used += lru_w
                            w_by[iW] = w_by.get(iW, 0) + lru_w
                            w_used_total += lru_w
                    s_table_r += lookup_r + update_r
                    s_table_w += update_w + lru_w
                    if pending:
                        still: list = []
                        still_append = still.append
                        for tr in pending:
                            if tr[0] > ep_index:
                                still_append(tr)
                                continue
                            tline = tr[1]
                            tb = bsets[tline & bmask]
                            if tline not in tb:
                                # Consumed or evicted: the transfer
                                # physically happened, charge it.
                                r_used += line_bytes
                                r_by[iP] = r_by.get(iP, 0) + line_bytes
                                r_used_total += line_bytes
                                s_filled += 1
                            elif r_used + line_bytes > rb:
                                r_drop[iP] = r_drop.get(iP, 0) + line_bytes
                                del tb[tline]
                                s_dropped += 1
                            else:
                                r_used += line_bytes
                                r_by[iP] = r_by.get(iP, 0) + line_bytes
                                r_used_total += line_bytes
                                s_filled += 1
                        pending = still
                        pending_append = pending.append
                    # close_epoch + queueing_delay
                    last_util = r_used / rb if rb else 0.0
                    ema += ema_alpha * (last_util - ema)
                    over = ema - q_threshold
                    if over <= 0:
                        queueing = 0.0
                    else:
                        q_span = 1.0 - q_threshold
                        if q_span < 1e-9:
                            q_span = 1e-9
                        q_ratio = over / q_span
                        if q_ratio > 2.0:
                            q_ratio = 2.0
                        queueing = base_penalty * q_factor * q_ratio
                    pacc += base_penalty + queueing
                    s_offchip_cycles += base_penalty + queueing
                    s_queueing_cycles += queueing
                    s_read_bytes += int(r_used)
                    s_write_bytes += int(w_used)
                    s_read_budget += int(rb)
                    for r, c in term.items():
                        term_merged[r] = term_merged.get(r, 0) + c
                    term.clear()
                # ---- open the new epoch ----
                ep_open = True
                ep_index = epoch_count
                ep_trigger_line = line
                ep_trigger_kind = kc
                ep_trigger_pc = pc
                ep_trigger_inst = inst
                ep_lines = [line]
                ep_kind_codes = [kc]
                ep_sealed = kc == 0
                epoch_count += 1
                s_epochs += 1
                if serial:
                    s_serial_epochs += 1
                # MSHR allocation happens after the close drained the file.
                if line in ms:
                    n_mshr_merge += 1
                else:
                    ms_add(line)
                    n_mshr_alloc += 1
            # _interval_event + observe_offchip_miss (EMAB precomputed).
            if trig:
                if boundary_ordinal:
                    view = views[boundary_ordinal]
                    if view is not None:
                        # table.train(view[0], view[1]), inlined.
                        vk = view[0]
                        n_trains += 1
                        ti = ((vk * _HASH_MULT) & _HASH_MASK) % tbl_n
                        capped = view[1][:tbl_cap]
                        if tbl_tags[ti] != vk:
                            if tbl_tags[ti] != -1:
                                n_conflicts += 1
                            n_allocs += 1
                            addrs = {}
                            st = tbl_stamp
                            for ln in capped:
                                st += 1
                                addrs[ln] = st
                            tbl_stamp = st
                            tbl_tags[ti] = vk
                            tbl_addrs[ti] = addrs
                        else:
                            addrs = tbl_addrs[ti]
                            inserted = set()
                            for ln in capped:
                                tbl_stamp += 1
                                if ln in addrs:
                                    addrs[ln] = tbl_stamp
                                    inserted.add(ln)
                                    continue
                                if len(addrs) >= tbl_cap:
                                    cands = [a for a in addrs if a not in inserted]
                                    if not cands:
                                        break
                                    vv = min(cands, key=addrs.__getitem__)
                                    del addrs[vv]
                                    n_repl += 1
                                addrs[ln] = tbl_stamp
                                inserted.add(ln)
                        if in_memory:
                            tm_update_r += entry_bytes
                            tm_update_w += entry_bytes
                            tm_total_r += entry_bytes
                            tm_total_w += entry_bytes
                boundary_ordinal += 1
                itrig = inst
                isealed = False
                # _lookup_and_issue: table.lookup(line), inlined.
                if in_memory:
                    tm_lookup_r += entry_bytes
                    tm_total_r += entry_bytes
                n_lookups += 1
                ti = ((line * _HASH_MULT) & _HASH_MASK) % tbl_n
                if tbl_tags[ti] == line:
                    n_lookup_hits += 1
                    addrs = tbl_addrs[ti]
                    cand = sorted(addrs, key=addrs.__getitem__, reverse=True)
            else:
                n_suppressed += 1
            if kc == 0:
                isealed = True

        if cand is not None:
            # make_request + _register_requests, inlined against the
            # buffer shadow.  Both call sites register with the same epoch
            # index: the prospective epoch (== the new epoch's index when
            # one was just opened).
            for pline in cand[:degree]:
                n_issued += 1
                s_generated += 1
                if pline in resident:
                    s_redundant += 1
                    continue
                rc = cycle + ready_mul
                b = bsets[pline & bmask]
                bstamp += 1
                existing = b.get(pline)
                if existing is not None:
                    # Refresh: earliest readiness wins, LRU stamp updates.
                    if rc < existing[0]:
                        existing[0] = rc
                    existing[2] = bstamp
                else:
                    if len(b) >= bways:
                        vmin = -1
                        vline = -1
                        for bl, be in b.items():
                            lu = be[2]
                            if vmin < 0 or lu < vmin:
                                vmin = lu
                                vline = bl
                        del b[vline]
                        b_evictions += 1
                        b_evicted_unused += 1
                    b[pline] = [rc, ti, bstamp, prospective]
                    b_fills += 1
                pending_append((prospective, pline, ti))

    if not measuring and warmup_records < n:
        # Boundary past the last walk item: reset for the measured region.
        sim._begin_measurement()
        measuring = True
        of_counts = [0, 0, 0]
        ph_counts = [0, 0, 0]
        s_late = s_epochs = s_serial_epochs = 0
        s_generated = s_filled = s_redundant = s_dropped = 0
        s_offchip_cycles = s_queueing_cycles = 0.0
        s_read_bytes = s_write_bytes = s_read_budget = 0
        s_table_r = s_table_w = 0
        term_merged = {}
        r_by = {}
        r_drop = {}
        w_by = {}
        w_drop = {}
        r_used_total = w_used_total = 0
        r_budget_total = w_budget_total = 0

    # ------------------------------------------------------------------
    # Sync every piece of state back to the simulator's real objects so
    # _finish_run — and any subsequent scalar use of this simulator —
    # observes exactly what the scalar walk would have left behind.
    # ------------------------------------------------------------------
    if measuring:
        stats = sim.stats
        stats.accesses = n - warmup_records
        stats.l1i_hits = int(
            plane.l1i_hit_prefix[n] - plane.l1i_hit_prefix[warmup_records]
        )
        stats.l1d_hits = int(
            plane.l1d_hit_prefix[n] - plane.l1d_hit_prefix[warmup_records]
        )
        stats.l2_accesses = n_misses - split
        stats.l2_hits = seg.l2_hits_in(split, n_misses)
        offchip = stats.offchip_misses
        phits = stats.prefetch_hits
        for code, kind in enumerate(_KIND_OBJS):
            offchip[kind] += of_counts[code]
            phits[kind] += ph_counts[code]
        stats.late_prefetches += s_late
        stats.epochs += s_epochs
        stats.serial_epochs += s_serial_epochs
        stats.prefetches_generated += s_generated
        stats.prefetches_filled += s_filled
        stats.prefetches_redundant += s_redundant
        stats.prefetches_dropped += s_dropped
        stats.offchip_cycles += s_offchip_cycles
        stats.queueing_cycles += s_queueing_cycles
        stats.read_bytes += s_read_bytes
        stats.write_bytes += s_write_bytes
        stats.read_budget_bytes += s_read_budget
        stats.table_read_bytes += s_table_r
        stats.table_write_bytes += s_table_w
        merged = stats.termination_reasons
        for r, c in term_merged.items():
            merged[r] = merged.get(r, 0) + c

    sim._penalty_accum = pacc
    sim._store_read_bytes = store_read
    sim._store_write_bytes = store_write
    sim._interval_trigger_inst = itrig
    sim._interval_sealed = isealed
    prefetcher.issued_requests += n_issued
    prefetcher.lookups_suppressed += n_suppressed

    # Bandwidth model: EMA feedback plus the (post-boundary) bus stats.
    bandwidth._last_read_utilization = last_util
    bandwidth._ema_read_utilization = ema
    for shadow_by, shadow_drop, bus_stats, used, budget in (
        (r_by, r_drop, bandwidth.read_stats, r_used_total, r_budget_total),
        (w_by, w_drop, bandwidth.write_stats, w_used_total, w_budget_total),
    ):
        bus_stats.used_bytes += used
        bus_stats.budget_bytes += budget
        by = bus_stats.bytes_by_priority
        for k, v in shadow_by.items():
            by[k] = by.get(k, 0) + v
        dropped = bus_stats.dropped_by_priority
        for k, v in shadow_drop.items():
            dropped[k] = dropped.get(k, 0) + v

    # Correlation table: stamp + stats (the arrays were mutated in place).
    table._stamp = tbl_stamp
    tstats = table.stats
    tstats.lookups += n_lookups
    tstats.lookup_hits += n_lookup_hits
    tstats.trains += n_trains
    tstats.allocations += n_allocs
    tstats.tag_conflicts += n_conflicts
    tstats.address_replacements += n_repl
    tstats.touches += n_touches

    # Traffic meter: pending (undrained) bytes + lifetime totals.
    traffic.lookup_read_bytes = tm_lookup_r
    traffic.update_read_bytes = tm_update_r
    traffic.update_write_bytes = tm_update_w
    traffic.lru_write_bytes = tm_lru_w
    traffic.total_read_bytes += tm_total_r
    traffic.total_write_bytes += tm_total_w

    # EMAB end-of-run state: the capped entries of the trailing intervals.
    if boundary_ordinal:
        emab = prefetcher.emab
        tail = view_entries[max(0, boundary_ordinal - emab.depth) : boundary_ordinal]
        emab.restore(
            [list(entry) for entry in tail], emab.overflow_drops + emab_overflow
        )

    mshrs = sim.mshrs
    mshrs._lines.clear()
    mshrs._lines.update(ms)
    mshrs.stats.allocations += n_mshr_alloc
    mshrs.stats.merges += n_mshr_merge

    # L2: adopt the precomputed final contents (stamps are stream
    # positions + 1, shifted by whatever the global stamp already was).
    l2 = hierarchy.l2
    final_lines, final_stamps, final_dirty = seg.final_state
    l2_sets = l2._sets
    l2_tshift = l2._tag_shift
    l2_smask = l2._set_mask
    stamp_base = l2._stamp
    for fline, fstamp in zip(final_lines.tolist(), final_stamps.tolist()):
        l2_sets[fline & l2_smask][fline >> l2_tshift] = stamp_base + fstamp
    l2._stamp = stamp_base + n_misses  # each miss record bumps it exactly once
    l2._dirty.update(final_lines[final_dirty].tolist())
    l2.stats.hits += int(seg.l2_hit_prefix[n_misses])
    l2.stats.misses += n_walk
    l2.stats.insertions += n_walk
    l2.stats.evictions += seg.n_evictions

    buffer._stamp = bstamp
    bstats = buffer.stats
    bstats.fills += b_fills
    bstats.hits += b_hits
    bstats.late_hits += b_late
    bstats.evictions += b_evictions
    bstats.evicted_unused += b_evicted_unused
    pf_name = prefetcher.name
    real_sets = buffer._sets
    for set_index, shadow in enumerate(bsets):
        if shadow:
            real_set = real_sets[set_index]
            for bl, be in shadow.items():
                real_set[bl] = BufferEntry(
                    line=bl,
                    ready_cycle=be[0],
                    table_index=be[1],
                    source=pf_name,
                    last_use=be[2],
                    issue_epoch=be[3],
                )

    from .simulator import _PendingTransfer

    epochs_until_ready = 2 if in_memory else 1
    sim._pending = [
        _PendingTransfer(
            PrefetchRequest(
                line_addr=tline,
                epochs_until_ready=epochs_until_ready,
                priority=Priority.PREFETCH,
                table_index=tindex,
                source=pf_name,
                issue_epoch=tie,
            ),
            tie,
            tline,
        )
        for tie, tline, tindex in pending
    ]

    tracker = sim.tracker
    tracker.epoch_count = epoch_count
    if ep_open:
        epoch = Epoch(
            index=ep_index,
            trigger_line=ep_trigger_line,
            trigger_kind=_KIND_OBJS[ep_trigger_kind],
            trigger_pc=ep_trigger_pc,
            trigger_inst=ep_trigger_inst,
        )
        epoch.miss_lines = ep_lines
        epoch.miss_kinds = [_KIND_OBJS[k] for k in ep_kind_codes]
        epoch.sealed = ep_sealed
        tracker.open_epoch = epoch
    else:
        tracker.open_epoch = None

    sim.last_run_path = "epoch_kernel"
    return sim._finish_run(trace, total_inst, measure_start_inst)
