"""Precomputed L1 filter plane.

The L1 caches are *pure filters* of the demand stream: ``CacheHierarchy``
installs the line into the requesting L1 on every non-L1-hit access no
matter where it was serviced, and nothing else mutates L1 state.  The L1
hit/miss outcome of every trace record is therefore a function of the
trace and the two L1 geometries alone — identical across prefetchers and
across every L2/buffer/bandwidth configuration that shares L1 geometry.

This module computes that outcome once per ``(trace fingerprint, L1I
geometry, L1D geometry)`` as a boolean *miss mask* plus prefix-sum
columns (instructions, per-class L1 hits, store bytes), and caches it

* **in memory** on the :class:`~repro.workloads.trace.Trace` object
  itself (the workload registry memoises traces per process, so every
  simulator run of the same trace shares one plane), and
* **on disk** as ``.npz`` beside the trace cache
  (:func:`repro.workloads.cache.plane_cache_root`, honouring
  ``$REPRO_TRACE_CACHE``), so parallel sweep workers and later processes
  load instead of recomputing.

The mask kernel is a NumPy per-set grouped LRU (sets advance in lockstep,
so the per-record Python loop disappears); a pure-Python reference
implementation over :class:`~repro.memory.cache.SetAssociativeCache`
exists for verification and as a fallback for degenerate geometries.
``REPRO_FILTER_KERNEL=python`` forces the reference kernel.
"""

from __future__ import annotations

import logging
import os
import tempfile
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..workloads.trace import Trace

__all__ = [
    "FilterPlane",
    "EpochSegmentPlane",
    "compute_filter_plane",
    "compute_epoch_segments",
    "get_filter_plane",
    "get_epoch_segments",
    "l1_hit_mask",
    "l1_hit_mask_reference",
    "l2_evolution",
    "l2_evolution_reference",
    "compressed_enabled",
    "kernel_enabled",
]

log = logging.getLogger(__name__)

#: Geometry key: (size_bytes, ways, line_size) — see
#: :meth:`repro.memory.cache.SetAssociativeCache.geometry_key`.
GeometryKey = Tuple[int, int, int]

#: Values of ``REPRO_COMPRESSED`` that turn compressed execution off.
_DISABLED_VALUES = {"0", "off", "none", "false", "no"}

#: Traces shorter than this are not persisted to disk (the plane is
#: cheaper to recompute than to load, and tests would litter the cache).
_MIN_PERSIST_RECORDS = 20_000

_PLANE_FORMAT_VERSION = 1

_SEGMENT_FORMAT_VERSION = 1


def compressed_enabled() -> bool:
    """Default for compressed execution: on unless ``REPRO_COMPRESSED``
    is set to a disabled value (``0``/``off``/``false``/...)."""
    value = os.environ.get("REPRO_COMPRESSED")
    if value is None:
        return True
    return value.strip().lower() not in _DISABLED_VALUES


def kernel_enabled() -> bool:
    """Default for the epoch-batched kernel: on unless ``REPRO_KERNEL``
    is set to a disabled value (``0``/``off``/``false``/...)."""
    value = os.environ.get("REPRO_KERNEL")
    if value is None:
        return True
    return value.strip().lower() not in _DISABLED_VALUES


# ----------------------------------------------------------------------
# Mask kernels
# ----------------------------------------------------------------------
def _geometry_sets(key: GeometryKey) -> tuple[int, int]:
    """(n_sets, ways) for a geometry key; validates like the cache does."""
    size_bytes, ways, line_size = key
    n_sets = size_bytes // line_size // ways
    if n_sets <= 0 or n_sets & (n_sets - 1):
        raise ValueError(f"number of sets ({n_sets}) must be a power of two")
    return n_sets, ways


def _grouped_lru_hit_mask(lines: np.ndarray, n_sets: int, ways: int) -> np.ndarray:
    """True-LRU hit mask for one cache over a line-number stream.

    Accesses are grouped by set (stable order within each set) and all
    sets advance in lockstep: each round consumes at most one access per
    still-active set with a handful of vectorized operations, so the
    Python iteration count is the *deepest* set's access count, not the
    stream length.  Stamps are the global round number — unique per set
    because a set sees at most one access per round — which reproduces
    the reference cache's strict-LRU victim order exactly.
    """
    n = lines.size
    hit_mask = np.empty(n, dtype=bool)
    if n == 0:
        return hit_mask
    set_mask = n_sets - 1
    tag_shift = n_sets.bit_length() - 1
    set_idx = (lines & set_mask).astype(np.int64)
    tags = lines >> tag_shift
    order = np.argsort(set_idx, kind="stable")
    sorted_tags = tags[order]
    counts = np.bincount(set_idx, minlength=n_sets)
    offsets = np.zeros(n_sets, dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    hit_sorted = np.empty(n, dtype=bool)

    state_tags = np.full((n_sets, ways), -1, dtype=np.int64)
    state_stamp = np.full((n_sets, ways), -1, dtype=np.int64)
    ptr = np.zeros(n_sets, dtype=np.int64)
    active = np.flatnonzero(counts)
    round_no = 0
    while active.size:
        pos = offsets[active] + ptr[active]
        t = sorted_tags[pos]
        st = state_tags[active]
        eq = st == t[:, None]
        hit = eq.any(axis=1)
        hit_sorted[pos] = hit
        way = np.where(hit, eq.argmax(axis=1), state_stamp[active].argmin(axis=1))
        state_tags[active, way] = t
        state_stamp[active, way] = round_no
        ptr[active] += 1
        round_no += 1
        active = active[ptr[active] < counts[active]]

    hit_mask[order] = hit_sorted
    return hit_mask


def l1_hit_mask(
    kinds: np.ndarray,
    addrs: np.ndarray,
    l1i_key: GeometryKey,
    l1d_key: GeometryKey,
) -> np.ndarray:
    """Boolean L1 *hit* mask of the record stream (NumPy kernel).

    Instruction fetches (``kind == 0``) filter through the L1I, loads and
    stores through the L1D — exactly the split the simulator applies.
    """
    if l1i_key[2] != l1d_key[2]:
        raise ValueError("L1I and L1D must share one line size")
    line_shift = int(l1i_key[2]).bit_length() - 1
    lines = np.asarray(addrs, dtype=np.int64) >> line_shift
    kinds = np.asarray(kinds)
    is_ifetch = kinds == 0
    mask = np.empty(lines.size, dtype=bool)
    for selector, key in ((is_ifetch, l1i_key), (~is_ifetch, l1d_key)):
        n_sets, ways = _geometry_sets(key)
        mask[selector] = _grouped_lru_hit_mask(lines[selector], n_sets, ways)
    return mask


def l1_hit_mask_reference(
    kinds: np.ndarray,
    addrs: np.ndarray,
    l1i_key: GeometryKey,
    l1d_key: GeometryKey,
) -> np.ndarray:
    """Pure-Python reference mask: literally the simulator's L1 filter.

    Replays every record through two :class:`SetAssociativeCache`
    instances with the simulator's exact lookup-then-insert protocol.
    Used to verify the NumPy kernel and as the fallback for degenerate
    geometries.
    """
    from ..memory.cache import SetAssociativeCache

    if l1i_key[2] != l1d_key[2]:
        raise ValueError("L1I and L1D must share one line size")
    l1i = SetAssociativeCache(*l1i_key, name="plane-L1I")
    l1d = SetAssociativeCache(*l1d_key, name="plane-L1D")
    line_shift = l1i.line_shift
    mask = np.empty(len(addrs), dtype=bool)
    kind_list = np.asarray(kinds).tolist()
    addr_list = np.asarray(addrs).tolist()
    for i, (kind, addr) in enumerate(zip(kind_list, addr_list)):
        line = addr >> line_shift
        cache = l1i if kind == 0 else l1d
        if cache.lookup(line):
            mask[i] = True
        else:
            cache.insert(line)
            mask[i] = False
    return mask


# ----------------------------------------------------------------------
# The plane object
# ----------------------------------------------------------------------
class FilterPlane:
    """Precomputed L1 outcomes and prefix sums for one (trace, geometry).

    ``miss_mask[i]`` is True when record ``i`` misses its L1.  The prefix
    arrays all have length ``n + 1`` with a leading 0, so any record
    range ``[a, b)`` aggregates in O(1):

    * ``inst_prefix`` — retired instructions,
    * ``l1i_hit_prefix`` / ``l1d_hit_prefix`` — L1 hits by class,
    * ``store_bytes_prefix`` — store traffic in bytes
      (count × line size; the timing model keeps L1-hit stores free, the
      column exists for analysis and alternative bandwidth models).
    """

    def __init__(
        self,
        miss_mask: np.ndarray,
        trace: "Trace",
        l1i_key: GeometryKey,
        l1d_key: GeometryKey,
    ) -> None:
        n = len(trace.gap)
        if miss_mask.shape != (n,):
            raise ValueError(f"mask length {miss_mask.shape} != trace length {n}")
        self.miss_mask = miss_mask
        self.l1i_key = l1i_key
        self.l1d_key = l1d_key
        self.trace_fingerprint = trace.fingerprint()
        self.line_shift = int(l1i_key[2]).bit_length() - 1
        self.inst_prefix = trace.inst_prefix()
        hits = ~miss_mask
        is_ifetch = trace.kind == 0
        self.l1i_hit_prefix = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(hits & is_ifetch, out=self.l1i_hit_prefix[1:])
        self.l1d_hit_prefix = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(hits & ~is_ifetch, out=self.l1d_hit_prefix[1:])
        self.store_bytes_prefix = trace.store_count_prefix() * int(l1i_key[2])
        self.miss_indices = np.flatnonzero(miss_mask)
        self._miss_columns: tuple | None = None
        self._segment_cache: dict = {}

    # ------------------------------------------------------------------
    @property
    def n_records(self) -> int:
        return int(self.miss_mask.size)

    @property
    def n_misses(self) -> int:
        return int(self.miss_indices.size)

    def miss_count_before(self, record_index: int) -> int:
        """Number of L1 misses among records ``[0, record_index)``."""
        return int(np.searchsorted(self.miss_indices, record_index))

    def miss_columns(self, trace: "Trace") -> tuple:
        """Packed per-miss record columns as plain Python lists.

        ``(kind, pc, addr, serial, inst, tid, line)`` — ``inst`` is the
        retired-instruction clock *after* the record's gap, ``line`` is
        the L1 line number.  Built once and reused across every run of
        the same trace (sweeps run a trace dozens of times).
        """
        if self._miss_columns is None:
            idx = self.miss_indices
            self._miss_columns = (
                trace.kind[idx].tolist(),
                trace.pc[idx].tolist(),
                trace.addr[idx].tolist(),
                (trace.serial[idx] != 0).tolist(),
                self.inst_prefix[idx + 1].tolist(),
                trace.tid[idx].tolist(),
                (trace.addr[idx] >> self.line_shift).tolist(),
            )
        return self._miss_columns


# ----------------------------------------------------------------------
# Computation + caching
# ----------------------------------------------------------------------
def compute_filter_plane(
    trace: "Trace",
    l1i_key: GeometryKey,
    l1d_key: GeometryKey,
    kernel: str | None = None,
) -> FilterPlane:
    """Compute a plane directly (no caching).  ``kernel``: numpy|python."""
    if kernel is None:
        kernel = os.environ.get("REPRO_FILTER_KERNEL", "numpy").strip().lower()
    # Tiny set counts make the lockstep kernel degenerate to one set per
    # round; the reference loop is faster and trivially correct there.
    if kernel == "python" or _geometry_sets(l1i_key)[0] < 4 or _geometry_sets(l1d_key)[0] < 4:
        hit = l1_hit_mask_reference(trace.kind, trace.addr, l1i_key, l1d_key)
    else:
        hit = l1_hit_mask(trace.kind, trace.addr, l1i_key, l1d_key)
    return FilterPlane(~hit, trace, l1i_key, l1d_key)


def _plane_path(trace: "Trace", l1i_key: GeometryKey, l1d_key: GeometryKey):
    from ..workloads.cache import plane_cache_root

    root = plane_cache_root()
    if root is None:
        return None
    geom = (
        f"i{l1i_key[0]}x{l1i_key[1]}-d{l1d_key[0]}x{l1d_key[1]}-l{l1i_key[2]}"
    )
    return root / f"{trace.fingerprint()}-{geom}.npz"


def _load_plane(path, trace, l1i_key, l1d_key) -> Optional[FilterPlane]:
    from ..resilience.integrity import quarantine_entry, verify_checksum

    reason = verify_checksum(path)
    if reason is not None:
        quarantine_entry(path, "plane", reason)
        return None
    try:
        with np.load(path) as data:
            if int(data["version"][0]) != _PLANE_FORMAT_VERSION:
                return None
            miss_mask = np.unpackbits(data["miss_mask"], count=len(trace.gap)).astype(bool)
        return FilterPlane(miss_mask, trace, l1i_key, l1d_key)
    except Exception as exc:  # corrupt/truncated/incompatible entry
        quarantine_entry(path, "plane", f"unreadable entry ({exc})")
        return None


def _store_plane(path, plane: FilterPlane) -> None:
    """Atomic write, mirroring the trace cache; failures only cost speed."""
    from ..resilience.faults import FaultSpec
    from ..resilience.integrity import write_checksum

    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.stem, suffix=".tmp.npz"
        )
        os.close(fd)
        try:
            np.savez_compressed(
                tmp_name,
                version=np.array([_PLANE_FORMAT_VERSION], dtype=np.int64),
                miss_mask=np.packbits(plane.miss_mask),
            )
            os.replace(tmp_name, path)
        finally:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
        write_checksum(path)
        FaultSpec.from_env().maybe_corrupt(path, "plane")
    except OSError as exc:
        log.warning("could not write filter-plane cache entry %s (%s)", path, exc)


def get_filter_plane(
    trace: "Trace", l1i_key: GeometryKey, l1d_key: GeometryKey
) -> FilterPlane:
    """The plane for ``(trace, L1 geometries)``, through both cache layers."""
    memo = trace._plane_cache
    memo_key = (l1i_key, l1d_key)
    plane = memo.get(memo_key)
    if plane is not None:
        return plane
    path = None
    if len(trace.gap) >= _MIN_PERSIST_RECORDS:
        path = _plane_path(trace, l1i_key, l1d_key)
    if path is not None and path.exists():
        plane = _load_plane(path, trace, l1i_key, l1d_key)
    if plane is None:
        plane = compute_filter_plane(trace, l1i_key, l1d_key)
        if path is not None:
            _store_plane(path, plane)
    memo[memo_key] = plane
    return plane


# ----------------------------------------------------------------------
# Epoch segmentation over the compressed miss stream
# ----------------------------------------------------------------------
# Just as the L1s are pure filters of the demand stream, the *L2* is a
# pure filter of the L1-miss stream: ``CacheHierarchy`` looks every miss
# up in the L2 and installs it on an L2 miss regardless of prefetcher
# outcome, and nothing else mutates L2 state.  The L2 hit/miss outcome,
# the evicted victim line, and the victim's dirty bit are therefore
# functions of (trace, L1 geometries, L2 geometry) alone.
#
# Epoch *triggers* go one step further.  ``EpochSimulator._interval_event``
# is fed every non-store record that reaches off-chip decision logic —
# prefetch hit or genuine miss alike — and its new-interval rule (first
# event, serial instruction, sealed by an instruction fetch, or ROB-range
# overflow) reads only the event stream itself.  The "first miss of each
# would-be epoch" mask is therefore precomputable per (trace, L1 geoms,
# L2 geom, ROB size) and shared by every EBCP variant and every run.


def l2_evolution(
    lines: np.ndarray, store_mask: np.ndarray, n_sets: int, ways: int
) -> tuple:
    """L2 outcomes over the L1-miss line stream (NumPy lockstep kernel).

    Extends :func:`_grouped_lru_hit_mask` with the write-allocate dirty
    protocol the hierarchy applies per miss record: lookup, then on a
    miss insert the line (marking it dirty when the record is a store)
    and evict the strict-LRU victim, reporting the victim's dirty bit.

    Returns ``(hit_mask, victims, victim_dirty, final_state)`` where the
    per-record ``victims`` entry is the evicted line number or ``-1``,
    and ``final_state = (lines, stamps, dirty)`` reconstructs the cache
    contents after the full stream — stamps equal the reference cache's
    global LRU counter (each miss-stream record bumps it exactly once),
    so a simulator can adopt the state mid-flight.
    """
    n = lines.size
    hit_mask = np.empty(n, dtype=bool)
    victims = np.full(n, -1, dtype=np.int64)
    victim_dirty = np.zeros(n, dtype=bool)
    if n == 0:
        empty = (np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0, bool))
        return hit_mask, victims, victim_dirty, empty
    set_mask = n_sets - 1
    tag_shift = n_sets.bit_length() - 1
    set_idx = (lines & set_mask).astype(np.int64)
    tags = lines >> tag_shift
    order = np.argsort(set_idx, kind="stable")
    sorted_tags = tags[order]
    sorted_store = np.asarray(store_mask, dtype=bool)[order]
    counts = np.bincount(set_idx, minlength=n_sets)
    offsets = np.zeros(n_sets, dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])

    state_tags = np.full((n_sets, ways), -1, dtype=np.int64)
    state_stamp = np.full((n_sets, ways), -1, dtype=np.int64)
    state_dirty = np.zeros((n_sets, ways), dtype=bool)
    state_pos = np.full((n_sets, ways), -1, dtype=np.int64)
    ptr = np.zeros(n_sets, dtype=np.int64)
    active = np.flatnonzero(counts)
    round_no = 0
    while active.size:
        pos = offsets[active] + ptr[active]
        opos = order[pos]
        t = sorted_tags[pos]
        eq = state_tags[active] == t[:, None]
        hit = eq.any(axis=1)
        hit_mask[opos] = hit
        way = np.where(hit, eq.argmax(axis=1), state_stamp[active].argmin(axis=1))
        vtag = state_tags[active, way]
        vdirty = state_dirty[active, way]
        evict = ~hit & (vtag >= 0)
        victims[opos[evict]] = (vtag[evict] << tag_shift) | active[evict]
        victim_dirty[opos[evict]] = vdirty[evict]
        state_tags[active, way] = t
        state_dirty[active, way] = np.where(hit, vdirty, sorted_store[pos])
        state_stamp[active, way] = round_no
        state_pos[active, way] = opos
        ptr[active] += 1
        round_no += 1
        active = active[ptr[active] < counts[active]]

    valid = state_tags >= 0
    set_ids = np.nonzero(valid)[0]
    final_lines = (state_tags[valid] << tag_shift) | set_ids
    final_stamps = state_pos[valid] + 1
    final_dirty = state_dirty[valid]
    return hit_mask, victims, victim_dirty, (final_lines, final_stamps, final_dirty)


def l2_evolution_reference(
    lines: np.ndarray, store_mask: np.ndarray, l2_key: GeometryKey
) -> tuple:
    """Pure-Python reference: replays the hierarchy's exact L2 protocol
    through :class:`SetAssociativeCache` (lookup → insert → mark dirty on
    store → pop the victim's dirty bit).  Verifies the NumPy kernel and
    serves degenerate geometries."""
    from ..memory.cache import SetAssociativeCache

    l2 = SetAssociativeCache(*l2_key, name="plane-L2")
    n = len(lines)
    hit_mask = np.empty(n, dtype=bool)
    victims = np.full(n, -1, dtype=np.int64)
    victim_dirty = np.zeros(n, dtype=bool)
    line_list = np.asarray(lines).tolist()
    store_list = np.asarray(store_mask, dtype=bool).tolist()
    for i, (line, is_store) in enumerate(zip(line_list, store_list)):
        if l2.lookup(line):
            hit_mask[i] = True
            continue
        hit_mask[i] = False
        victim = l2.insert(line)
        if is_store:
            l2.mark_dirty(line)
        if victim is not None:
            victims[i] = victim
            victim_dirty[i] = l2.pop_dirty(victim)
    final_lines, final_stamps, final_dirty = [], [], []
    tag_shift = l2._tag_shift
    for index, cache_set in enumerate(l2._sets):
        for tag, stamp in cache_set.items():
            line = (tag << tag_shift) | index
            final_lines.append(line)
            final_stamps.append(stamp)
            final_dirty.append(l2.is_dirty(line))
    final = (
        np.asarray(final_lines, dtype=np.int64),
        np.asarray(final_stamps, dtype=np.int64),
        np.asarray(final_dirty, dtype=bool),
    )
    return hit_mask, victims, victim_dirty, final


def _trigger_mask(kinds, serials, insts, rob_size: int) -> np.ndarray:
    """First-event-of-interval mask over the walk stream.

    Mirrors ``EpochSimulator._interval_event``: stores never participate;
    a non-store event opens a new interval when it is the first ever, is
    marked serializing, follows an instruction fetch (sealed), or retired
    more than ``rob_size`` instructions after the current trigger."""
    n = len(kinds)
    out = np.zeros(n, dtype=bool)
    trigger_inst = None
    sealed = False
    for i in range(n):
        kind = kinds[i]
        if kind == 2:  # store — bypasses interval logic entirely
            continue
        inst = insts[i]
        if (
            trigger_inst is None
            or serials[i]
            or sealed
            or inst - trigger_inst > rob_size
        ):
            out[i] = True
            trigger_inst = inst
            sealed = False
        if kind == 0:  # IFETCH seals the interval
            sealed = True
    return out


class EpochSegmentPlane:
    """Precomputed epoch segmentation for one (plane, L2 geometry, ROB).

    Everything here is shared by every run of the same configuration:

    * ``l2_hit_mask[j]`` — L2 outcome of miss-stream record ``j`` (with a
      leading-zero prefix for O(1) range stats),
    * ``walk_sel`` — positions of L2-*missing* records inside the miss
      stream (the only records the epoch kernel must walk),
    * ``victims`` / ``victim_dirty`` — per walk item, the L2 line evicted
      by the install (−1 when the set had a free way) and its dirty bit,
    * ``trigger`` — per walk item, True when the record is the first
      miss of a (would-be) epoch interval; always False for stores,
    * ``final_state`` — L2 contents after the whole stream, so a kernel
      run can leave the simulator's real L2 object in the exact state the
      scalar walk would have produced.

    Derived, lazily-built batch views (walk columns, per-epoch training
    views) are memoised on the instance and shared across runs.
    """

    def __init__(
        self,
        l2_hit_mask: np.ndarray,
        victims: np.ndarray,
        victim_dirty: np.ndarray,
        trigger: np.ndarray,
        final_state: tuple,
        l2_key: GeometryKey,
        rob_size: int,
    ) -> None:
        self.l2_hit_mask = l2_hit_mask
        self.l2_key = l2_key
        self.rob_size = rob_size
        m = l2_hit_mask.size
        self.l2_hit_prefix = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(l2_hit_mask, out=self.l2_hit_prefix[1:])
        self.walk_sel = np.flatnonzero(~l2_hit_mask)
        self.victims = victims
        self.victim_dirty = victim_dirty
        self.trigger = trigger
        self.final_state = final_state
        self.n_evictions = int(np.count_nonzero(victims >= 0))
        if victims.shape != self.walk_sel.shape or trigger.shape != self.walk_sel.shape:
            raise ValueError("segment columns must be walk-stream length")
        self._walk_columns: tuple | None = None
        self._views_memo: dict = {}

    # ------------------------------------------------------------------
    @property
    def n_walk(self) -> int:
        return int(self.walk_sel.size)

    def l2_hits_in(self, lo: int, hi: int) -> int:
        """L2 hits among miss-stream records ``[lo, hi)``."""
        return int(self.l2_hit_prefix[hi] - self.l2_hit_prefix[lo])

    def walk_count_before(self, miss_index: int) -> int:
        """Walk items among miss-stream records ``[0, miss_index)``."""
        return int(np.searchsorted(self.walk_sel, miss_index))

    def walk_columns(self, trace: "Trace", plane: FilterPlane) -> tuple:
        """Packed per-walk-item columns as plain Python lists.

        ``(kind, pc, serial, inst, line, victim, victim_dirty, trigger)``
        — built once and reused by every kernel run of this plane.
        """
        if self._walk_columns is None:
            idx = plane.miss_indices[self.walk_sel]
            self._walk_columns = (
                trace.kind[idx].tolist(),
                trace.pc[idx].tolist(),
                (trace.serial[idx] != 0).tolist(),
                plane.inst_prefix[idx + 1].tolist(),
                (trace.addr[idx] >> plane.line_shift).tolist(),
                self.victims.tolist(),
                self.victim_dirty.tolist(),
                self.trigger.tolist(),
            )
        return self._walk_columns

    def training_views(
        self, trace: "Trace", plane: FilterPlane, skip: int, stored: int, cap: int
    ) -> tuple:
        """Per-trigger EMAB training views for one (skip, stored, cap).

        The EMAB's contents are a pure function of the event stream: the
        buffer rotates at every interval boundary *before* recording the
        boundary's own miss, so interval ``k`` spans the events from
        trigger ``k`` (inclusive) to trigger ``k+1`` (exclusive), capped
        at ``cap`` lines.  Returns ``(views, entries, overflow)``:

        * ``views[k]`` — ``(key_line, payload_lines)`` emitted at the
          boundary that *opens* interval ``k``, or ``None`` when the
          buffer was not yet full or produced an empty payload,
        * ``entries[k]`` — interval ``k``'s capped line list (the tail of
          this list rebuilds the EMAB's end-of-run state),
        * ``overflow`` — total lines dropped past the per-entry cap.
        """
        key = (skip, stored, cap)
        cached = self._views_memo.get(key)
        if cached is not None:
            return cached
        kinds, _pcs, _serials, _insts, lines, _v, _vd, triggers = self.walk_columns(
            trace, plane
        )
        ev_lines = [ln for ln, k in zip(lines, kinds) if k != 2]
        ev_trigger = [tr for tr, k in zip(triggers, kinds) if k != 2]
        starts = [i for i, tr in enumerate(ev_trigger) if tr]
        bounds = starts + [len(ev_lines)]
        depth = skip + stored
        n_triggers = len(starts)
        entries = []
        overflow = 0
        for k in range(n_triggers):
            lo, hi = bounds[k], bounds[k + 1]
            if hi - lo > cap:
                overflow += (hi - lo) - cap
                hi = lo + cap
            entries.append(ev_lines[lo:hi])
        views: list = [None] * n_triggers
        for k in range(depth, n_triggers):
            oldest = entries[k - depth]
            if not oldest:
                continue
            payload = []
            seen = set()
            for entry in entries[k - depth + skip : k]:
                for line in entry:
                    if line not in seen:
                        seen.add(line)
                        payload.append(line)
            if payload:
                views[k] = (oldest[0], payload)
        cached = (views, entries, overflow)
        self._views_memo[key] = cached
        return cached


def compute_epoch_segments(
    trace: "Trace",
    plane: FilterPlane,
    l2_key: GeometryKey,
    rob_size: int,
    kernel: str | None = None,
) -> EpochSegmentPlane:
    """Compute the segmentation directly (no caching)."""
    if kernel is None:
        kernel = os.environ.get("REPRO_FILTER_KERNEL", "numpy").strip().lower()
    idx = plane.miss_indices
    lines = (np.asarray(trace.addr, dtype=np.int64)[idx]) >> plane.line_shift
    kinds = np.asarray(trace.kind)[idx]
    store_mask = kinds == 2
    n_sets, ways = _geometry_sets(l2_key)
    if kernel == "python" or n_sets < 4:
        hit, victims, victim_dirty, final = l2_evolution_reference(
            lines, store_mask, l2_key
        )
    else:
        hit, victims, victim_dirty, final = l2_evolution(
            lines, store_mask, n_sets, ways
        )
    walk_sel = np.flatnonzero(~hit)
    widx = idx[walk_sel]
    trigger = _trigger_mask(
        kinds[walk_sel].tolist(),
        (np.asarray(trace.serial)[widx] != 0).tolist(),
        plane.inst_prefix[widx + 1].tolist(),
        rob_size,
    )
    return EpochSegmentPlane(
        hit, victims[walk_sel], victim_dirty[walk_sel], trigger, final, l2_key, rob_size
    )


def _segment_path(trace: "Trace", plane: FilterPlane, l2_key: GeometryKey, rob_size: int):
    from ..workloads.cache import plane_cache_root

    root = plane_cache_root()
    if root is None:
        return None
    l1i, l1d = plane.l1i_key, plane.l1d_key
    geom = (
        f"i{l1i[0]}x{l1i[1]}-d{l1d[0]}x{l1d[1]}-l{l1i[2]}"
        f"-seg-l2{l2_key[0]}x{l2_key[1]}-r{rob_size}"
    )
    return root / f"{trace.fingerprint()}-{geom}.npz"


def _load_segments(path, plane, l2_key, rob_size) -> Optional[EpochSegmentPlane]:
    from ..resilience.integrity import quarantine_entry, verify_checksum

    reason = verify_checksum(path)
    if reason is not None:
        quarantine_entry(path, "plane", reason)
        return None
    try:
        with np.load(path) as data:
            if int(data["version"][0]) != _SEGMENT_FORMAT_VERSION:
                return None
            n_misses = int(data["n_misses"][0])
            if n_misses != plane.n_misses:
                return None
            l2_hit = np.unpackbits(data["l2_hit"], count=n_misses).astype(bool)
            n_walk = int(n_misses - l2_hit.sum())
            victims = data["victims"]
            victim_dirty = np.unpackbits(data["victim_dirty"], count=n_walk).astype(bool)
            trigger = np.unpackbits(data["trigger"], count=n_walk).astype(bool)
            final = (
                data["final_lines"],
                data["final_stamps"],
                np.unpackbits(
                    data["final_dirty"], count=int(data["final_lines"].size)
                ).astype(bool),
            )
        return EpochSegmentPlane(
            l2_hit, victims, victim_dirty, trigger, final, l2_key, rob_size
        )
    except Exception as exc:  # corrupt/truncated/incompatible entry
        quarantine_entry(path, "plane", f"unreadable entry ({exc})")
        return None


def _store_segments(path, seg: EpochSegmentPlane) -> None:
    from ..resilience.faults import FaultSpec
    from ..resilience.integrity import write_checksum

    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.stem, suffix=".tmp.npz"
        )
        os.close(fd)
        try:
            np.savez_compressed(
                tmp_name,
                version=np.array([_SEGMENT_FORMAT_VERSION], dtype=np.int64),
                n_misses=np.array([seg.l2_hit_mask.size], dtype=np.int64),
                l2_hit=np.packbits(seg.l2_hit_mask),
                victims=seg.victims,
                victim_dirty=np.packbits(seg.victim_dirty),
                trigger=np.packbits(seg.trigger),
                final_lines=seg.final_state[0],
                final_stamps=seg.final_state[1],
                final_dirty=np.packbits(seg.final_state[2]),
            )
            os.replace(tmp_name, path)
        finally:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
        write_checksum(path)
        FaultSpec.from_env().maybe_corrupt(path, "plane")
    except OSError as exc:
        log.warning("could not write epoch-segment cache entry %s (%s)", path, exc)


def get_epoch_segments(
    trace: "Trace", plane: FilterPlane, l2_key: GeometryKey, rob_size: int
) -> EpochSegmentPlane:
    """The segmentation for ``(plane, L2 geometry, ROB)``, cached twice:
    in memory on the plane object, on disk beside the plane's ``.npz``."""
    memo = plane._segment_cache
    memo_key = (l2_key, rob_size)
    seg = memo.get(memo_key)
    if seg is not None:
        return seg
    path = None
    if plane.n_records >= _MIN_PERSIST_RECORDS:
        path = _segment_path(trace, plane, l2_key, rob_size)
    if path is not None and path.exists():
        seg = _load_segments(path, plane, l2_key, rob_size)
    if seg is None:
        seg = compute_epoch_segments(trace, plane, l2_key, rob_size)
        if path is not None:
            _store_segments(path, seg)
    memo[memo_key] = seg
    return seg
