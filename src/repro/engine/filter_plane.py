"""Precomputed L1 filter plane.

The L1 caches are *pure filters* of the demand stream: ``CacheHierarchy``
installs the line into the requesting L1 on every non-L1-hit access no
matter where it was serviced, and nothing else mutates L1 state.  The L1
hit/miss outcome of every trace record is therefore a function of the
trace and the two L1 geometries alone — identical across prefetchers and
across every L2/buffer/bandwidth configuration that shares L1 geometry.

This module computes that outcome once per ``(trace fingerprint, L1I
geometry, L1D geometry)`` as a boolean *miss mask* plus prefix-sum
columns (instructions, per-class L1 hits, store bytes), and caches it

* **in memory** on the :class:`~repro.workloads.trace.Trace` object
  itself (the workload registry memoises traces per process, so every
  simulator run of the same trace shares one plane), and
* **on disk** as ``.npz`` beside the trace cache
  (:func:`repro.workloads.cache.plane_cache_root`, honouring
  ``$REPRO_TRACE_CACHE``), so parallel sweep workers and later processes
  load instead of recomputing.

The mask kernel is a NumPy per-set grouped LRU (sets advance in lockstep,
so the per-record Python loop disappears); a pure-Python reference
implementation over :class:`~repro.memory.cache.SetAssociativeCache`
exists for verification and as a fallback for degenerate geometries.
``REPRO_FILTER_KERNEL=python`` forces the reference kernel.
"""

from __future__ import annotations

import logging
import os
import tempfile
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..workloads.trace import Trace

__all__ = [
    "FilterPlane",
    "compute_filter_plane",
    "get_filter_plane",
    "l1_hit_mask",
    "l1_hit_mask_reference",
    "compressed_enabled",
]

log = logging.getLogger(__name__)

#: Geometry key: (size_bytes, ways, line_size) — see
#: :meth:`repro.memory.cache.SetAssociativeCache.geometry_key`.
GeometryKey = Tuple[int, int, int]

#: Values of ``REPRO_COMPRESSED`` that turn compressed execution off.
_DISABLED_VALUES = {"0", "off", "none", "false", "no"}

#: Traces shorter than this are not persisted to disk (the plane is
#: cheaper to recompute than to load, and tests would litter the cache).
_MIN_PERSIST_RECORDS = 20_000

_PLANE_FORMAT_VERSION = 1


def compressed_enabled() -> bool:
    """Default for compressed execution: on unless ``REPRO_COMPRESSED``
    is set to a disabled value (``0``/``off``/``false``/...)."""
    value = os.environ.get("REPRO_COMPRESSED")
    if value is None:
        return True
    return value.strip().lower() not in _DISABLED_VALUES


# ----------------------------------------------------------------------
# Mask kernels
# ----------------------------------------------------------------------
def _geometry_sets(key: GeometryKey) -> tuple[int, int]:
    """(n_sets, ways) for a geometry key; validates like the cache does."""
    size_bytes, ways, line_size = key
    n_sets = size_bytes // line_size // ways
    if n_sets <= 0 or n_sets & (n_sets - 1):
        raise ValueError(f"number of sets ({n_sets}) must be a power of two")
    return n_sets, ways


def _grouped_lru_hit_mask(lines: np.ndarray, n_sets: int, ways: int) -> np.ndarray:
    """True-LRU hit mask for one cache over a line-number stream.

    Accesses are grouped by set (stable order within each set) and all
    sets advance in lockstep: each round consumes at most one access per
    still-active set with a handful of vectorized operations, so the
    Python iteration count is the *deepest* set's access count, not the
    stream length.  Stamps are the global round number — unique per set
    because a set sees at most one access per round — which reproduces
    the reference cache's strict-LRU victim order exactly.
    """
    n = lines.size
    hit_mask = np.empty(n, dtype=bool)
    if n == 0:
        return hit_mask
    set_mask = n_sets - 1
    tag_shift = n_sets.bit_length() - 1
    set_idx = (lines & set_mask).astype(np.int64)
    tags = lines >> tag_shift
    order = np.argsort(set_idx, kind="stable")
    sorted_tags = tags[order]
    counts = np.bincount(set_idx, minlength=n_sets)
    offsets = np.zeros(n_sets, dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    hit_sorted = np.empty(n, dtype=bool)

    state_tags = np.full((n_sets, ways), -1, dtype=np.int64)
    state_stamp = np.full((n_sets, ways), -1, dtype=np.int64)
    ptr = np.zeros(n_sets, dtype=np.int64)
    active = np.flatnonzero(counts)
    round_no = 0
    while active.size:
        pos = offsets[active] + ptr[active]
        t = sorted_tags[pos]
        st = state_tags[active]
        eq = st == t[:, None]
        hit = eq.any(axis=1)
        hit_sorted[pos] = hit
        way = np.where(hit, eq.argmax(axis=1), state_stamp[active].argmin(axis=1))
        state_tags[active, way] = t
        state_stamp[active, way] = round_no
        ptr[active] += 1
        round_no += 1
        active = active[ptr[active] < counts[active]]

    hit_mask[order] = hit_sorted
    return hit_mask


def l1_hit_mask(
    kinds: np.ndarray,
    addrs: np.ndarray,
    l1i_key: GeometryKey,
    l1d_key: GeometryKey,
) -> np.ndarray:
    """Boolean L1 *hit* mask of the record stream (NumPy kernel).

    Instruction fetches (``kind == 0``) filter through the L1I, loads and
    stores through the L1D — exactly the split the simulator applies.
    """
    if l1i_key[2] != l1d_key[2]:
        raise ValueError("L1I and L1D must share one line size")
    line_shift = int(l1i_key[2]).bit_length() - 1
    lines = np.asarray(addrs, dtype=np.int64) >> line_shift
    kinds = np.asarray(kinds)
    is_ifetch = kinds == 0
    mask = np.empty(lines.size, dtype=bool)
    for selector, key in ((is_ifetch, l1i_key), (~is_ifetch, l1d_key)):
        n_sets, ways = _geometry_sets(key)
        mask[selector] = _grouped_lru_hit_mask(lines[selector], n_sets, ways)
    return mask


def l1_hit_mask_reference(
    kinds: np.ndarray,
    addrs: np.ndarray,
    l1i_key: GeometryKey,
    l1d_key: GeometryKey,
) -> np.ndarray:
    """Pure-Python reference mask: literally the simulator's L1 filter.

    Replays every record through two :class:`SetAssociativeCache`
    instances with the simulator's exact lookup-then-insert protocol.
    Used to verify the NumPy kernel and as the fallback for degenerate
    geometries.
    """
    from ..memory.cache import SetAssociativeCache

    if l1i_key[2] != l1d_key[2]:
        raise ValueError("L1I and L1D must share one line size")
    l1i = SetAssociativeCache(*l1i_key, name="plane-L1I")
    l1d = SetAssociativeCache(*l1d_key, name="plane-L1D")
    line_shift = l1i.line_shift
    mask = np.empty(len(addrs), dtype=bool)
    kind_list = np.asarray(kinds).tolist()
    addr_list = np.asarray(addrs).tolist()
    for i, (kind, addr) in enumerate(zip(kind_list, addr_list)):
        line = addr >> line_shift
        cache = l1i if kind == 0 else l1d
        if cache.lookup(line):
            mask[i] = True
        else:
            cache.insert(line)
            mask[i] = False
    return mask


# ----------------------------------------------------------------------
# The plane object
# ----------------------------------------------------------------------
class FilterPlane:
    """Precomputed L1 outcomes and prefix sums for one (trace, geometry).

    ``miss_mask[i]`` is True when record ``i`` misses its L1.  The prefix
    arrays all have length ``n + 1`` with a leading 0, so any record
    range ``[a, b)`` aggregates in O(1):

    * ``inst_prefix`` — retired instructions,
    * ``l1i_hit_prefix`` / ``l1d_hit_prefix`` — L1 hits by class,
    * ``store_bytes_prefix`` — store traffic in bytes
      (count × line size; the timing model keeps L1-hit stores free, the
      column exists for analysis and alternative bandwidth models).
    """

    def __init__(
        self,
        miss_mask: np.ndarray,
        trace: "Trace",
        l1i_key: GeometryKey,
        l1d_key: GeometryKey,
    ) -> None:
        n = len(trace.gap)
        if miss_mask.shape != (n,):
            raise ValueError(f"mask length {miss_mask.shape} != trace length {n}")
        self.miss_mask = miss_mask
        self.l1i_key = l1i_key
        self.l1d_key = l1d_key
        self.trace_fingerprint = trace.fingerprint()
        self.line_shift = int(l1i_key[2]).bit_length() - 1
        self.inst_prefix = trace.inst_prefix()
        hits = ~miss_mask
        is_ifetch = trace.kind == 0
        self.l1i_hit_prefix = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(hits & is_ifetch, out=self.l1i_hit_prefix[1:])
        self.l1d_hit_prefix = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(hits & ~is_ifetch, out=self.l1d_hit_prefix[1:])
        self.store_bytes_prefix = trace.store_count_prefix() * int(l1i_key[2])
        self.miss_indices = np.flatnonzero(miss_mask)
        self._miss_columns: tuple | None = None

    # ------------------------------------------------------------------
    @property
    def n_records(self) -> int:
        return int(self.miss_mask.size)

    @property
    def n_misses(self) -> int:
        return int(self.miss_indices.size)

    def miss_count_before(self, record_index: int) -> int:
        """Number of L1 misses among records ``[0, record_index)``."""
        return int(np.searchsorted(self.miss_indices, record_index))

    def miss_columns(self, trace: "Trace") -> tuple:
        """Packed per-miss record columns as plain Python lists.

        ``(kind, pc, addr, serial, inst, tid, line)`` — ``inst`` is the
        retired-instruction clock *after* the record's gap, ``line`` is
        the L1 line number.  Built once and reused across every run of
        the same trace (sweeps run a trace dozens of times).
        """
        if self._miss_columns is None:
            idx = self.miss_indices
            self._miss_columns = (
                trace.kind[idx].tolist(),
                trace.pc[idx].tolist(),
                trace.addr[idx].tolist(),
                (trace.serial[idx] != 0).tolist(),
                self.inst_prefix[idx + 1].tolist(),
                trace.tid[idx].tolist(),
                (trace.addr[idx] >> self.line_shift).tolist(),
            )
        return self._miss_columns


# ----------------------------------------------------------------------
# Computation + caching
# ----------------------------------------------------------------------
def compute_filter_plane(
    trace: "Trace",
    l1i_key: GeometryKey,
    l1d_key: GeometryKey,
    kernel: str | None = None,
) -> FilterPlane:
    """Compute a plane directly (no caching).  ``kernel``: numpy|python."""
    if kernel is None:
        kernel = os.environ.get("REPRO_FILTER_KERNEL", "numpy").strip().lower()
    # Tiny set counts make the lockstep kernel degenerate to one set per
    # round; the reference loop is faster and trivially correct there.
    if kernel == "python" or _geometry_sets(l1i_key)[0] < 4 or _geometry_sets(l1d_key)[0] < 4:
        hit = l1_hit_mask_reference(trace.kind, trace.addr, l1i_key, l1d_key)
    else:
        hit = l1_hit_mask(trace.kind, trace.addr, l1i_key, l1d_key)
    return FilterPlane(~hit, trace, l1i_key, l1d_key)


def _plane_path(trace: "Trace", l1i_key: GeometryKey, l1d_key: GeometryKey):
    from ..workloads.cache import plane_cache_root

    root = plane_cache_root()
    if root is None:
        return None
    geom = (
        f"i{l1i_key[0]}x{l1i_key[1]}-d{l1d_key[0]}x{l1d_key[1]}-l{l1i_key[2]}"
    )
    return root / f"{trace.fingerprint()}-{geom}.npz"


def _load_plane(path, trace, l1i_key, l1d_key) -> Optional[FilterPlane]:
    from ..resilience.integrity import quarantine_entry, verify_checksum

    reason = verify_checksum(path)
    if reason is not None:
        quarantine_entry(path, "plane", reason)
        return None
    try:
        with np.load(path) as data:
            if int(data["version"][0]) != _PLANE_FORMAT_VERSION:
                return None
            miss_mask = np.unpackbits(data["miss_mask"], count=len(trace.gap)).astype(bool)
        return FilterPlane(miss_mask, trace, l1i_key, l1d_key)
    except Exception as exc:  # corrupt/truncated/incompatible entry
        quarantine_entry(path, "plane", f"unreadable entry ({exc})")
        return None


def _store_plane(path, plane: FilterPlane) -> None:
    """Atomic write, mirroring the trace cache; failures only cost speed."""
    from ..resilience.faults import FaultSpec
    from ..resilience.integrity import write_checksum

    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.stem, suffix=".tmp.npz"
        )
        os.close(fd)
        try:
            np.savez_compressed(
                tmp_name,
                version=np.array([_PLANE_FORMAT_VERSION], dtype=np.int64),
                miss_mask=np.packbits(plane.miss_mask),
            )
            os.replace(tmp_name, path)
        finally:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
        write_checksum(path)
        FaultSpec.from_env().maybe_corrupt(path, "plane")
    except OSError as exc:
        log.warning("could not write filter-plane cache entry %s (%s)", path, exc)


def get_filter_plane(
    trace: "Trace", l1i_key: GeometryKey, l1d_key: GeometryKey
) -> FilterPlane:
    """The plane for ``(trace, L1 geometries)``, through both cache layers."""
    memo = trace._plane_cache
    memo_key = (l1i_key, l1d_key)
    plane = memo.get(memo_key)
    if plane is not None:
        return plane
    path = None
    if len(trace.gap) >= _MIN_PERSIST_RECORDS:
        path = _plane_path(trace, l1i_key, l1d_key)
    if path is not None and path.exists():
        plane = _load_plane(path, trace, l1i_key, l1d_key)
    if plane is None:
        plane = compute_filter_plane(trace, l1i_key, l1d_key)
        if path is not None:
            _store_plane(path, plane)
    memo[memo_key] = plane
    return plane
