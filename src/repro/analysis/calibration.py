"""Calibration check: measured baselines vs the paper's Table 1.

The synthetic workloads are only credible stand-ins if the no-prefetching
baseline reproduces the paper's published workload characteristics.  This
module holds the Table 1 targets and a checker used by the test suite,
the Table 1 bench and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.config import ProcessorConfig
from ..engine.simulator import EpochSimulator
from ..engine.stats import SimulationResult
from ..workloads.registry import make_workload

__all__ = ["Table1Targets", "TABLE1_TARGETS", "CalibrationReport", "check_baseline"]


@dataclass(frozen=True)
class Table1Targets:
    """One workload's row of the paper's Table 1."""

    cpi_overall: float
    epochs_per_kilo_inst: float
    l2_inst_miss_rate: float
    l2_load_miss_rate: float


TABLE1_TARGETS: dict[str, Table1Targets] = {
    "database": Table1Targets(3.27, 4.07, 1.00, 6.23),
    "tpcw": Table1Targets(2.00, 1.59, 0.71, 1.27),
    "specjbb2005": Table1Targets(2.06, 2.65, 0.12, 4.30),
    "jappserver2004": Table1Targets(2.78, 3.25, 1.57, 2.64),
}


@dataclass(frozen=True)
class CalibrationReport:
    """Measured baseline vs target, with relative errors."""

    workload: str
    measured: SimulationResult
    targets: Table1Targets

    def _rel(self, measured: float, target: float) -> float:
        return abs(measured - target) / target if target else abs(measured)

    @property
    def cpi_error(self) -> float:
        return self._rel(self.measured.cpi, self.targets.cpi_overall)

    @property
    def epi_error(self) -> float:
        return self._rel(
            self.measured.epochs_per_kilo_inst, self.targets.epochs_per_kilo_inst
        )

    @property
    def inst_miss_error(self) -> float:
        return self._rel(self.measured.l2_inst_miss_rate, self.targets.l2_inst_miss_rate)

    @property
    def load_miss_error(self) -> float:
        return self._rel(self.measured.l2_load_miss_rate, self.targets.l2_load_miss_rate)

    def within(self, tolerance: float) -> bool:
        """All four Table 1 statistics within a relative tolerance."""
        return (
            self.cpi_error <= tolerance
            and self.epi_error <= tolerance
            and self.inst_miss_error <= tolerance
            and self.load_miss_error <= tolerance
        )


def check_baseline(
    workload: str,
    records: int = 280_000,
    seed: int = 7,
    config: ProcessorConfig | None = None,
) -> CalibrationReport:
    """Simulate the no-prefetching baseline and compare against Table 1."""
    if workload not in TABLE1_TARGETS:
        raise KeyError(f"no Table 1 targets for '{workload}'")
    trace = make_workload(workload, records=records, seed=seed)
    config = config or ProcessorConfig.scaled()
    result = EpochSimulator(
        config, None, cpi_perf=trace.meta.cpi_perf, overlap=trace.meta.overlap
    ).run(trace)
    return CalibrationReport(
        workload=workload, measured=result, targets=TABLE1_TARGETS[workload]
    )
