"""ASCII rendering of experiment outputs.

The benches print the same rows/series the paper's tables and figures
report; these helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_series", "format_percent", "banner"]


def format_percent(value: float, digits: int = 1) -> str:
    """0.234 -> '+23.4 %' (improvements are signed)."""
    return f"{value * 100:+.{digits}f} %"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a simple aligned ASCII table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str = "",
    value_format: str = "+.1%",
) -> str:
    """Render figure-style series: one row per series, one column per x."""
    headers = [x_label] + [str(x) for x in x_values]
    rows = []
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series '{name}' has {len(values)} points, expected {len(x_values)}"
            )
        rows.append([name] + [format(v, value_format) for v in values])
    return format_table(headers, rows, title=title)


def banner(text: str, width: int = 72) -> str:
    bar = "=" * width
    return f"{bar}\n{text}\n{bar}"


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
