"""Metrics, parameter sweeps, calibration checks and report rendering."""

from .calibration import TABLE1_TARGETS, CalibrationReport, Table1Targets, check_baseline
from .diagnostics import (
    bus_breakdown,
    miss_mix,
    prefetch_lifecycle,
    render_diagnostics,
    termination_census,
)
from .metrics import (
    ComparisonRow,
    compare_to_baseline,
    epi_reduction,
    geometric_mean,
    improvement,
    miss_rate_split,
)
from .reporting import banner, format_percent, format_series, format_table
from .sweep import SweepPoint, SweepRunner

__all__ = [
    "CalibrationReport",
    "ComparisonRow",
    "SweepPoint",
    "SweepRunner",
    "TABLE1_TARGETS",
    "Table1Targets",
    "banner",
    "bus_breakdown",
    "check_baseline",
    "compare_to_baseline",
    "epi_reduction",
    "format_percent",
    "format_series",
    "format_table",
    "geometric_mean",
    "improvement",
    "miss_mix",
    "miss_rate_split",
    "prefetch_lifecycle",
    "render_diagnostics",
    "termination_census",
]
