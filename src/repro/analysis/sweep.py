"""Parameter-sweep runner.

The design-space figures (4-8) are sweeps of one or two parameters over
the four commercial workloads with the no-prefetching baseline held
fixed.  :class:`SweepRunner` owns the mechanical part: workload traces
are built once (the registry memoises them), each workload's baseline is
simulated once per processor configuration, and candidate points reuse
both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..engine.config import ProcessorConfig
from ..engine.simulator import EpochSimulator
from ..engine.stats import SimulationResult
from ..prefetchers.base import Prefetcher
from ..workloads.registry import COMMERCIAL_WORKLOADS, make_workload
from ..workloads.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - avoids an import cycle at runtime
    from ..resilience.policy import ExecutionPolicy

__all__ = ["SweepPoint", "SweepRunner"]


@dataclass(frozen=True)
class SweepPoint:
    """One simulated point of a sweep."""

    workload: str
    label: str
    result: SimulationResult
    baseline: SimulationResult

    @property
    def improvement(self) -> float:
        return self.result.improvement_over(self.baseline)

    @property
    def epi_reduction(self) -> float:
        return self.result.epi_reduction_over(self.baseline)


@dataclass
class SweepRunner:
    """Runs (workload x configuration) grids against shared baselines."""

    records: int = 280_000
    seed: int = 7
    workloads: tuple[str, ...] = COMMERCIAL_WORKLOADS
    #: Compressed execution over precomputed L1 filter planes; ``None``
    #: defers to ``$REPRO_COMPRESSED`` (on by default).  Because planes
    #: are memoised per (trace, L1 geometry), a sweep of many L2 /
    #: prefetcher configurations filters each workload exactly once.
    compressed: bool | None = None
    _baselines: dict[tuple[str, tuple], SimulationResult] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def trace(self, workload: str) -> Trace:
        return make_workload(workload, records=self.records, seed=self.seed)

    def _timing_kwargs(self, trace: Trace) -> dict[str, float]:
        return {"cpi_perf": trace.meta.cpi_perf, "overlap": trace.meta.overlap}

    def baseline(self, workload: str, config: ProcessorConfig) -> SimulationResult:
        """Simulate (and cache) the no-prefetching baseline."""
        # fingerprint() is exact and stable across processes; hash() is
        # neither (collisions, per-process randomisation) and once silently
        # served a colliding config's baseline.
        key = (workload, config.fingerprint())
        cached = self._baselines.get(key)
        if cached is not None:
            return cached
        trace = self.trace(workload)
        result = EpochSimulator(config, None, **self._timing_kwargs(trace)).run(
            trace, compressed=self.compressed
        )
        self._baselines[key] = result
        return result

    def run_point(
        self,
        workload: str,
        config: ProcessorConfig,
        prefetcher: Prefetcher,
        label: str,
    ) -> SweepPoint:
        """Simulate one candidate configuration for one workload."""
        trace = self.trace(workload)
        result = EpochSimulator(config, prefetcher, **self._timing_kwargs(trace)).run(
            trace, compressed=self.compressed
        )
        return SweepPoint(
            workload=workload,
            label=label,
            result=result,
            baseline=self.baseline(workload, config),
        )

    # ------------------------------------------------------------------
    def sweep(
        self,
        labels: list[str],
        prefetcher_factory: Callable[[str], Prefetcher],
        config_factory: Callable[[str], ProcessorConfig] | None = None,
        config: ProcessorConfig | None = None,
        jobs: int | None = None,
        policy: "ExecutionPolicy | None" = None,
    ) -> dict[str, list[SweepPoint]]:
        """Run every (workload, label) combination.

        ``prefetcher_factory(label)`` builds a fresh prefetcher per point
        (prefetcher state is never shared between runs).  Either a fixed
        ``config`` or a per-label ``config_factory`` must be given.

        ``policy`` routes the grid through the fault-tolerant executor
        (worker fan-out, retries, timeouts, checkpoint resume — see
        :class:`repro.resilience.ExecutionPolicy`); results stay
        bit-identical to this runner's sequential path.  ``jobs`` is the
        legacy one-knob spelling: > 1 fans out over worker processes,
        ``None`` defers to ``$REPRO_JOBS``.

        Returns ``{workload: [SweepPoint per label, in label order]}``.
        """
        if (config is None) == (config_factory is None):
            raise ValueError("provide exactly one of config / config_factory")
        from ..parallel import ParallelSweepRunner, resolve_jobs  # lazy: import cycle

        if policy is not None or resolve_jobs(jobs) > 1:
            runner = ParallelSweepRunner(
                records=self.records,
                seed=self.seed,
                workloads=self.workloads,
                jobs=jobs,
                compressed=self.compressed,
                policy=policy,
                baseline_memo=self._baselines,
            )
            return runner.sweep(
                labels, prefetcher_factory, config_factory=config_factory, config=config
            )
        grid: dict[str, list[SweepPoint]] = {}
        for workload in self.workloads:
            points = []
            for label in labels:
                point_config = config if config is not None else config_factory(label)  # type: ignore[misc]
                points.append(
                    self.run_point(workload, point_config, prefetcher_factory(label), label)
                )
            grid[workload] = points
        return grid
