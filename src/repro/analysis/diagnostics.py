"""Per-run diagnostic breakdowns.

A :class:`SimulationResult` carries more than the headline metrics; this
module renders the detail a microarchitect actually debugs with:

* the **window-termination census** — why epochs ended (serial chains vs
  ROB span vs instruction-miss seals vs MSHR pressure), the paper's
  Section 2.1 decomposition;
* the **miss mix** — remaining off-chip misses and averted misses by
  access kind;
* the **bus breakdown** — read/write bytes by priority class (demand,
  table lookups, prefetches, training, LRU write-backs) plus drop and
  utilisation figures;
* the **prefetch lifecycle** — generated / staged / dropped / redundant /
  used / late.

Used by ``python -m repro simulate --diagnose`` and handy in notebooks.
"""

from __future__ import annotations

from ..engine.stats import SimulationResult
from ..memory.bandwidth import BandwidthModel
from ..memory.request import AccessKind, Priority
from .reporting import format_table

__all__ = [
    "termination_census",
    "miss_mix",
    "prefetch_lifecycle",
    "bus_breakdown",
    "render_diagnostics",
]


def termination_census(result: SimulationResult) -> list[tuple[str, int, float]]:
    """(reason, count, fraction) rows for why new epochs were opened."""
    reasons = result.stats.termination_reasons
    total = sum(reasons.values())
    rows = []
    for reason, count in sorted(reasons.items(), key=lambda kv: -kv[1]):
        rows.append((reason, count, count / total if total else 0.0))
    return rows


def miss_mix(result: SimulationResult) -> list[tuple[str, int, int]]:
    """(kind, remaining off-chip misses, averted misses) rows."""
    stats = result.stats
    return [
        (
            kind.name.lower(),
            stats.offchip_misses[kind],
            stats.prefetch_hits[kind],
        )
        for kind in AccessKind
    ]


def prefetch_lifecycle(result: SimulationResult) -> dict[str, int]:
    stats = result.stats
    return {
        "generated": stats.prefetches_generated,
        "staged (bus)": stats.prefetches_filled,
        "dropped (bandwidth)": stats.prefetches_dropped,
        "redundant (on-chip)": stats.prefetches_redundant,
        "used (averted misses)": stats.total_prefetch_hits,
        "late": stats.late_prefetches,
    }


def bus_breakdown(bandwidth: BandwidthModel) -> list[tuple[str, str, int, int]]:
    """(bus, priority, bytes, dropped bytes) rows."""
    rows = []
    for bus_name, stats in (("read", bandwidth.read_stats), ("write", bandwidth.write_stats)):
        for priority in Priority:
            moved = stats.bytes_by_priority.get(int(priority), 0)
            dropped = stats.dropped_by_priority.get(int(priority), 0)
            if moved or dropped:
                rows.append((bus_name, priority.name.lower(), moved, dropped))
    return rows


def render_diagnostics(
    result: SimulationResult, bandwidth: BandwidthModel | None = None
) -> str:
    """Full multi-section diagnostic report."""
    sections = []

    rows = [
        (reason, count, f"{fraction:.1%}")
        for reason, count, fraction in termination_census(result)
    ]
    if rows:
        sections.append(
            format_table(
                ["termination reason", "epochs", "fraction"],
                rows,
                title="Window-termination census",
            )
        )

    sections.append(
        format_table(
            ["kind", "off-chip misses", "averted"],
            [(k, m, a) for k, m, a in miss_mix(result)],
            title="Miss mix",
        )
    )

    lifecycle = prefetch_lifecycle(result)
    if lifecycle["generated"]:
        sections.append(
            format_table(
                ["stage", "count"],
                list(lifecycle.items()),
                title="Prefetch lifecycle",
            )
        )

    if bandwidth is not None:
        rows = [
            (bus, prio, f"{moved:,}", f"{dropped:,}")
            for bus, prio, moved, dropped in bus_breakdown(bandwidth)
        ]
        if rows:
            sections.append(
                format_table(
                    ["bus", "priority", "bytes", "dropped"],
                    rows,
                    title="Bus traffic by priority",
                )
            )
        sections.append(
            f"read-bus utilisation (measured mean): {result.read_bus_utilization:.1%}"
        )

    return "\n\n".join(sections)
