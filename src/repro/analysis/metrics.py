"""Derived metrics over simulation results.

Thin, well-tested arithmetic shared by the experiment modules: pairwise
improvements, EPI reductions, miss-rate splits, and aggregation over
(workload x configuration) result grids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..engine.stats import SimulationResult
from ..memory.request import AccessKind

__all__ = [
    "improvement",
    "epi_reduction",
    "miss_rate_split",
    "geometric_mean",
    "ComparisonRow",
    "compare_to_baseline",
]


def improvement(baseline: SimulationResult, candidate: SimulationResult) -> float:
    """Overall performance improvement (speedup - 1), e.g. 0.23 = +23 %."""
    return candidate.improvement_over(baseline)


def epi_reduction(baseline: SimulationResult, candidate: SimulationResult) -> float:
    """Fractional reduction in epochs per instruction."""
    return candidate.epi_reduction_over(baseline)


def miss_rate_split(result: SimulationResult) -> dict[str, float]:
    """Remaining off-chip misses per kilo-instruction, by access kind."""
    stats = result.stats
    return {
        "inst": stats.per_kilo_inst(stats.offchip_misses[AccessKind.IFETCH]),
        "load": stats.per_kilo_inst(stats.offchip_misses[AccessKind.LOAD]),
        "store": stats.per_kilo_inst(stats.offchip_misses[AccessKind.STORE]),
    }


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of speedups (1 + improvement terms)."""
    values = list(values)
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError("geometric mean requires positive values")
        product *= v
    return product ** (1.0 / len(values))


@dataclass(frozen=True)
class ComparisonRow:
    """One (workload, prefetcher) cell of a comparison grid."""

    workload: str
    prefetcher: str
    improvement: float
    coverage: float
    accuracy: float
    epi_reduction: float
    cpi: float


def compare_to_baseline(
    baselines: Mapping[str, SimulationResult],
    candidates: Iterable[SimulationResult],
) -> list[ComparisonRow]:
    """Join candidate results against per-workload baselines."""
    rows = []
    for result in candidates:
        base = baselines[result.workload]
        rows.append(
            ComparisonRow(
                workload=result.workload,
                prefetcher=result.prefetcher,
                improvement=improvement(base, result),
                coverage=result.coverage,
                accuracy=result.accuracy,
                epi_reduction=epi_reduction(base, result),
                cpi=result.cpi,
            )
        )
    return rows
