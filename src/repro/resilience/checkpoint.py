"""JSONL checkpoint journal for interruptible sweeps.

A sweep of several hundred simulations that dies at job 180 of 200 used
to restart from zero.  With ``ExecutionPolicy(checkpoint_dir=...)`` the
executor journals every completed job to ``<dir>/journal.jsonl`` — one
line per result, written with flush + fsync so a SIGKILL loses at most
the job in flight — and a re-run of the *same* batch loads completed
jobs from disk instead of re-simulating them.

Identity and bit-identical resume
---------------------------------
Each journal line is keyed by :func:`job_key`: a SHA-256 over the job's
batch position and every spec field that influences its result (workload
generation parameters, processor-configuration fingerprint, prefetcher
class, label).  ``compressed`` is deliberately excluded — compressed and
legacy execution are bit-identical by construction, so a resume may
switch modes.  Results round-trip through
:meth:`~repro.engine.stats.SimulationResult.snapshot`, which preserves
raw counters (and exact IEEE floats via JSON ``repr``), so a resumed
sweep's merged result list is field-for-field identical to an
uninterrupted run.

A journal written for one batch is harmless to another: unknown keys are
simply never looked up, and a corrupt trailing line (the half-written
record of a crash) is skipped with a warning.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Union

from ..engine.stats import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - cycle: parallel.jobs imports us
    from ..parallel.jobs import JobSpec

__all__ = ["CheckpointJournal", "job_key"]

log = logging.getLogger(__name__)

PathLike = Union[str, "os.PathLike[str]"]


def job_key(spec: "JobSpec", index: int) -> str:
    """Stable identity of one job within a batch (hex SHA-256 prefix).

    Covers the batch position and every spec field that influences the
    result.  Excludes ``compressed`` (bit-identical execution modes) so
    a checkpoint taken in one mode resumes cleanly in the other.
    """
    prefetcher = spec.prefetcher
    identity = (
        index,
        spec.workload,
        spec.records,
        spec.seed,
        spec.scale,
        spec.n_threads,
        spec.warmup_records,
        spec.label,
        type(prefetcher).__name__ if prefetcher is not None else "",
        spec.config.fingerprint(),
    )
    digest = hashlib.sha256(repr(identity).encode("utf-8"))
    return digest.hexdigest()[:32]


class CheckpointJournal:
    """Append-only JSONL journal of completed jobs under a run directory."""

    FILENAME = "journal.jsonl"

    def __init__(self, run_dir: PathLike) -> None:
        self.run_dir = Path(run_dir)
        self.path = self.run_dir / self.FILENAME
        self._completed: Dict[str, dict] = {}
        self._fh = None

    # ------------------------------------------------------------------
    # Loading (resume)
    # ------------------------------------------------------------------
    def load(self) -> int:
        """Read the journal from disk; returns the number of usable entries.

        Tolerates a missing file (fresh run) and a corrupt trailing line
        (the half-written record of whatever killed the previous run).
        """
        self._completed.clear()
        try:
            raw = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return 0
        except OSError as exc:
            log.warning("checkpoint journal %s unreadable (%s)", self.path, exc)
            return 0
        dropped = 0
        for lineno, line in enumerate(raw.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                key = entry["key"]
                snapshot = entry["result"]
                # Validate eagerly: a restorable snapshot or no entry at all.
                SimulationResult.from_snapshot(snapshot)
            except (ValueError, KeyError, TypeError) as exc:
                dropped += 1
                log.warning(
                    "skipping corrupt checkpoint line %d in %s (%s)",
                    lineno,
                    self.path,
                    exc,
                )
                continue
            self._completed[key] = snapshot
        if dropped:
            log.warning(
                "checkpoint journal %s: %d corrupt line(s) ignored, "
                "%d job(s) resumable",
                self.path,
                dropped,
                len(self._completed),
            )
        return len(self._completed)

    def lookup(self, key: str) -> Optional[SimulationResult]:
        """The journalled result for ``key``, or None if not completed."""
        snapshot = self._completed.get(key)
        if snapshot is None:
            return None
        return SimulationResult.from_snapshot(snapshot)

    def __len__(self) -> int:
        return len(self._completed)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, key: str, result: SimulationResult) -> None:
        """Journal one completed job durably (flush + fsync)."""
        entry = {"key": key, "result": result.snapshot()}
        if self._fh is None:
            self.run_dir.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(entry) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._completed[key] = entry["result"]

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
