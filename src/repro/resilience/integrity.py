"""Cache-entry integrity: checksum sidecars and quarantine.

The trace cache and the filter-plane cache persist ``.npz`` archives that
are expensive to rebuild.  A half-written or bit-rotted entry used to be
deleted on decode failure; this module upgrades that story in two ways:

* every stored entry gets a ``<name>.sha256`` sidecar written after the
  atomic rename, and readers verify it *before* attempting to decode —
  catching corruption that still decodes (silently wrong data), not just
  corruption that raises;
* a bad entry is moved into a ``quarantine/`` sibling directory (with its
  sidecar and a short ``.reason`` note) instead of being unlinked, so a
  recurring corruption source stays diagnosable, and a
  :class:`~repro.obs.events.CacheQuarantined` event is published on the
  process-wide bus.

Both caches then simply regenerate the entry; corruption is never fatal.
"""

from __future__ import annotations

import hashlib
import logging
import os
from pathlib import Path
from typing import Optional, Union

__all__ = [
    "checksum_path",
    "write_checksum",
    "verify_checksum",
    "quarantine_entry",
]

log = logging.getLogger(__name__)

_CHUNK = 1 << 20

PathLike = Union[str, "os.PathLike[str]"]


def _digest(path: Path) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(_CHUNK)
            if not chunk:
                break
            h.update(chunk)
    return h.hexdigest()


def checksum_path(path: PathLike) -> Path:
    """The sidecar path for a cache entry (``<entry>.sha256``)."""
    p = Path(path)
    return p.with_name(p.name + ".sha256")


def write_checksum(path: PathLike) -> Path:
    """Write/refresh the sidecar checksum for ``path``; returns the sidecar."""
    p = Path(path)
    sidecar = checksum_path(p)
    tmp = sidecar.with_name(sidecar.name + ".tmp")
    tmp.write_text(_digest(p) + "\n", encoding="ascii")
    os.replace(tmp, sidecar)
    return sidecar


def verify_checksum(path: PathLike) -> Optional[str]:
    """Check ``path`` against its sidecar.

    Returns ``None`` when the entry is good *or* unverifiable (no sidecar
    — e.g. an entry written by an older version; decode-time validation
    still applies).  Returns a human-readable reason string on mismatch.
    """
    p = Path(path)
    sidecar = checksum_path(p)
    try:
        expected = sidecar.read_text(encoding="ascii").strip()
    except (OSError, UnicodeDecodeError):
        return None
    if not expected:
        return None
    try:
        actual = _digest(p)
    except OSError as exc:
        return f"unreadable entry ({exc})"
    if actual != expected:
        return "checksum_mismatch"
    return None


def quarantine_entry(path: PathLike, kind: str, reason: str) -> Optional[Path]:
    """Move a corrupt cache entry (and sidecar) into ``quarantine/``.

    ``kind`` is ``"trace"`` or ``"plane"``.  Returns the quarantined
    path, or ``None`` when the entry had already vanished.  Emits
    :class:`~repro.obs.events.CacheQuarantined` on the process-wide bus
    when one exists.
    """
    p = Path(path)
    qdir = p.parent / "quarantine"
    quarantined: Optional[Path] = None
    try:
        qdir.mkdir(parents=True, exist_ok=True)
        target = qdir / p.name
        if p.exists():
            os.replace(p, target)
            quarantined = target
            note = target.with_name(target.name + ".reason")
            try:
                note.write_text(f"{kind}: {reason}\n", encoding="utf-8")
            except OSError:
                pass
        sidecar = checksum_path(p)
        if sidecar.exists():
            os.replace(sidecar, qdir / sidecar.name)
    except OSError as exc:
        # Quarantine is best-effort: fall back to deletion so the corrupt
        # entry cannot be picked up again.
        log.warning("could not quarantine %s (%s); deleting instead", p, exc)
        for victim in (p, checksum_path(p)):
            try:
                victim.unlink()
            except OSError:
                pass
    log.warning(
        "quarantined corrupt %s cache entry %s (%s); it will be regenerated",
        kind,
        p.name,
        reason,
    )
    _emit_quarantined(str(p), kind, reason)
    return quarantined


def _emit_quarantined(path: str, kind: str, reason: str) -> None:
    from ..obs.bus import peek_global_bus
    from ..obs.events import CacheQuarantined

    bus = peek_global_bus()
    if bus is not None and bus.wants(CacheQuarantined):
        bus.emit(CacheQuarantined(path=path, kind=kind, reason=reason))
