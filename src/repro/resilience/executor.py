"""Fault-tolerant execution of simulation job batches.

:func:`execute` is the single engine behind ``run_jobs`` and both sweep
runners.  It keeps the contract that made the old primitive trustworthy —
results in input order, bit-identical between sequential and parallel
execution — and layers the failure handling an overnight sweep needs:

* **bounded retry** with exponential backoff for failing attempts;
* **per-job timeouts** in pool mode (the pool is killed and rebuilt —
  a ``ProcessPoolExecutor`` cannot cancel a running task — and the
  survivor jobs are requeued without spending an attempt);
* **``BrokenProcessPool`` recovery**: when a worker dies, the jobs that
  were in flight replay in-process (each spending one attempt) and the
  pool is rebuilt for the remaining queue;
* **checkpoint resume**: with ``policy.checkpoint_dir`` set, completed
  jobs are journalled durably and a re-run of the same batch loads them
  from disk instead of re-simulating;
* **observable degradation**: the legacy silent fall-backs (unpicklable
  specs, a pool that cannot start) now log a warning *and* publish an
  :class:`~repro.obs.events.ExecutionDegraded` event with the cause.

Every decision is announced on the event bus (``JobRetried``,
``JobTimedOut``, ``WorkerCrashed``, ``JobResumed``, ``ExecutionDegraded``)
— the bus passed by the caller, or the process-wide one when subscribers
exist and no bus was given.

Deterministic failure for tests comes from :mod:`repro.resilience.faults`;
with an empty :class:`~repro.resilience.faults.FaultSpec` the fault hooks
cost a few string comparisons per attempt.
"""

from __future__ import annotations

import dataclasses
import logging
import os
import pickle
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..obs.bus import EventBus, peek_global_bus
from ..obs.events import (
    Event,
    ExecutionDegraded,
    JobResumed,
    JobRetried,
    JobTimedOut,
    WorkerCrashed,
)
from ..obs.tracing import SpanRecorder, TelemetrySink, TraceContext
from .checkpoint import CheckpointJournal, job_key
from .faults import FaultSpec
from .policy import ExecutionPolicy

if TYPE_CHECKING:  # pragma: no cover - cycle: parallel.jobs imports us
    from ..engine.stats import SimulationResult
    from ..parallel.jobs import JobSpec

__all__ = ["PersistentPool", "execute"]

log = logging.getLogger(__name__)

#: Ceiling on the event-loop tick while jobs are in flight (keeps
#: pool-crash detection responsive even with no deadline pending).
_MAX_TICK_S = 0.5


def _emit(bus: Optional[EventBus], event: Event) -> None:
    """Publish on the caller's bus, else the process-wide one (if any)."""
    target = bus if bus is not None else peek_global_bus()
    if target is not None and target.wants(type(event)):
        target.emit(event)


#: What one attempt ships back: the result plus the telemetry recorded
#: while producing it (spans as a tuple of dicts, metrics as a registry
#: snapshot or ``None``).  Everything is picklable, so the same triple
#: crosses the pool boundary and the in-process fast path.
_AttemptOutcome = Tuple["SimulationResult", tuple, Optional[dict]]


def _attempt(
    payload: "Tuple[JobSpec, str, FaultSpec, Optional[dict], bool]",
) -> _AttemptOutcome:
    """Run one job attempt with fault hooks (pool entry point).

    Module-level so it pickles; also used verbatim for in-process
    attempts so both execution modes share one fault schedule.

    ``payload[3]`` is an optional :class:`TraceContext` wire dict — when
    present the run is wrapped in a worker-side span that joins the
    caller's trace.  ``payload[4]`` asks the attempt to observe the
    simulation with a private bus + :class:`SimulationMetrics` and ship
    the registry snapshot back.  With neither, this is exactly the
    untraced fast path: ``spec.run()`` and empty telemetry.
    """
    spec, key, faults, ctx_wire, collect = payload
    # Fault matching targets the human-facing label (falling back to the
    # workload name), with the job key appended so claims stay unique.
    fault_key = f"{spec.label or spec.workload}#{key}"
    faults.maybe_crash(fault_key)
    hang = faults.maybe_hang(fault_key)
    if hang > 0:
        time.sleep(hang)
    ctx = TraceContext.from_wire(ctx_wire)
    if ctx is None and not collect:
        return spec.run(), (), None

    from ..obs.metrics import SimulationMetrics

    bus: Optional[EventBus] = None
    sim_metrics: Optional[SimulationMetrics] = None
    if collect:
        bus = EventBus()
        sim_metrics = SimulationMetrics(bus)
    recorder = SpanRecorder("worker")
    with recorder.span(
        f"job:{spec.label or spec.workload}",
        parent=ctx,
        workload=spec.workload,
        records=spec.records,
        seed=spec.seed,
    ):
        result = spec.run(bus=bus)
    snapshot = sim_metrics.registry.to_dict() if sim_metrics is not None else None
    spans = tuple(recorder.drain()) if ctx is not None else ()
    return result, spans, snapshot


def _pool_warmup() -> int:
    """No-op pool task (module-level so it pickles); see ``warm()``."""
    return os.getpid()


class PersistentPool:
    """A process pool that outlives individual :func:`execute` calls.

    Batch callers pay pool spin-up once per call; a resident service
    (:mod:`repro.service`) cannot afford that per request.  Passing a
    ``PersistentPool`` as ``execute(..., pool=...)`` makes the executor
    *lease* the pool instead of creating its own: the pool's warm workers
    (with their inherited trace/filter-plane memos under ``fork``) are
    reused across calls, and the executor leaves it running when the
    batch finishes.

    The fault-handling contract is preserved: when the executor must kill
    the pool (per-job timeout, ``BrokenProcessPool``), it calls
    :meth:`invalidate` — the broken pool dies and the *next* lease builds
    a fresh one.  Not thread-safe; the owner is expected to dispatch
    batches from one thread at a time (the service's batcher does).
    """

    def __init__(self, max_workers: int) -> None:
        self.max_workers = max(1, max_workers)
        self._pool: Optional[ProcessPoolExecutor] = None
        #: Pools built over this object's lifetime (1 = never invalidated).
        self.generation = 0

    def lease(self) -> ProcessPoolExecutor:
        """The live pool, building one if needed (may raise ``OSError``)."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            self.generation += 1
        return self._pool

    def warm(self, timeout_s: float = 30.0) -> int:
        """Pre-spawn every worker so the first batch pays no fork cost.

        ``ProcessPoolExecutor`` forks workers lazily on submission; a
        freshly started shard would otherwise pay that latency on its
        first request.  Submits one no-op per worker and waits for all
        of them; returns the number of workers confirmed live (0 when
        the pool could not start — callers treat warming as best-effort).
        """
        try:
            pool = self.lease()
            futures = [pool.submit(_pool_warmup) for _ in range(self.max_workers)]
            done, _pending = wait(futures, timeout=timeout_s)
            return sum(1 for f in done if not f.exception())
        except (OSError, PermissionError, ValueError, BrokenProcessPool):
            return 0

    def invalidate(self) -> None:
        """Kill the current pool; the next :meth:`lease` starts fresh."""
        if self._pool is not None:
            _kill_pool(self._pool)
            self._pool = None

    def shutdown(self) -> None:
        """Tear the pool down for good (service shutdown)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


def execute(
    specs: "Sequence[JobSpec]",
    policy: Optional[ExecutionPolicy] = None,
    bus: Optional[EventBus] = None,
    pool: Optional[PersistentPool] = None,
    trace: Optional[TraceContext] = None,
    telemetry: Optional[TelemetrySink] = None,
) -> "List[SimulationResult]":
    """Run every job under ``policy`` and return results in input order.

    ``trace`` joins this batch to a caller's trace: the whole call is
    wrapped in an ``execute`` span (recorded on ``telemetry.recorder``
    when present) whose context propagates into every attempt, so
    worker-side ``job:*`` spans share the caller's trace_id.
    ``telemetry`` additionally makes attempts observe their simulation
    and ship back a metrics snapshot, which is merged into
    ``telemetry.registry`` under a per-job label prefix.  Both are pure
    observability: results stay bit-identical with or without them.
    """
    from ..parallel.jobs import _warm_trace_cache

    policy = policy or ExecutionPolicy()
    specs = list(specs)
    if not specs:
        return []
    collect = telemetry is not None and telemetry.collects_metrics
    recorder = telemetry.recorder if telemetry is not None else None
    exec_span = None
    ctx = trace
    if recorder is not None and trace is not None:
        exec_span = recorder.span("execute", parent=trace, jobs=len(specs))
        exec_span.__enter__()
        ctx = exec_span.context
    ctx_wire = ctx.to_wire() if ctx is not None else None
    faults = policy.faults()
    if policy.compressed is not None:
        # The policy decides for specs that left the mode open; a spec's
        # explicit choice (benchmarks pinning the legacy path) wins.
        specs = [
            dataclasses.replace(s, compressed=policy.compressed)
            if s.compressed is None
            else s
            for s in specs
        ]

    keys = [job_key(spec, i) for i, spec in enumerate(specs)]
    results: "List[Optional[SimulationResult]]" = [None] * len(specs)

    journal: Optional[CheckpointJournal] = None
    if policy.checkpoint_dir:
        journal = CheckpointJournal(policy.checkpoint_dir)
        if journal.load():
            for i, key in enumerate(keys):
                restored = journal.lookup(key)
                if restored is None:
                    continue
                results[i] = restored
                _emit(bus, JobResumed(label=specs[i].label, index=i, key=key))
            n_resumed = sum(r is not None for r in results)
            if n_resumed:
                log.info(
                    "resumed %d/%d job(s) from checkpoint %s",
                    n_resumed,
                    len(specs),
                    journal.path,
                )

    try:
        pending = [i for i, r in enumerate(results) if r is None]
        if pending:
            n_workers = min(policy.resolved_jobs(), len(pending))
            if (
                n_workers > 1
                and (os.cpu_count() or 1) <= 1
                and os.environ.get("REPRO_FORCE_POOL") != "1"
            ):
                log.info(
                    "single-core machine: running %d job(s) in-process",
                    len(pending),
                )
                n_workers = 1
            pooled = False
            if n_workers > 1:
                try:
                    pickle.dumps([specs[i] for i in pending])
                except Exception as exc:
                    log.warning(
                        "job specs not picklable (%s); running in-process", exc
                    )
                    _emit(
                        bus,
                        ExecutionDegraded(reason="unpicklable", cause=str(exc)),
                    )
                else:
                    _warm_trace_cache([specs[i] for i in pending], bus=bus)
                    pooled = _run_pooled(
                        specs, keys, pending, results, n_workers, policy,
                        faults, journal, bus, manager=pool,
                        ctx_wire=ctx_wire, collect=collect, telemetry=telemetry,
                    )
            if not pooled:
                _warm_trace_cache([specs[i] for i in pending], bus=bus)
                for i in pending:
                    if results[i] is None:
                        results[i] = _run_resilient(
                            specs[i], keys[i], i, policy, faults, journal, bus,
                            ctx_wire=ctx_wire, collect=collect,
                            telemetry=telemetry,
                        )
    finally:
        if journal is not None:
            journal.close()
        if exec_span is not None:
            exec_span.__exit__(None)
    return list(results)  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# In-process attempts with retry
# ----------------------------------------------------------------------
def _run_resilient(
    spec: "JobSpec",
    key: str,
    index: int,
    policy: ExecutionPolicy,
    faults: FaultSpec,
    journal: Optional[CheckpointJournal],
    bus: Optional[EventBus],
    failed_attempts: int = 0,
    ctx_wire: Optional[dict] = None,
    collect: bool = False,
    telemetry: Optional[TelemetrySink] = None,
) -> "SimulationResult":
    """Run one job in-process under the retry/timeout budget.

    ``failed_attempts`` pre-charges attempts already spent elsewhere
    (e.g. in a pool worker that crashed while running this job).
    """
    attempts = failed_attempts
    while True:
        start = time.monotonic()
        try:
            result, spans, snapshot = _attempt(
                (spec, key, faults, ctx_wire, collect)
            )
        except Exception as exc:
            attempts += 1
            if attempts > policy.retries:
                raise
            log.warning(
                "job %d (%s) attempt %d failed (%s); retrying",
                index,
                spec.label or spec.workload,
                attempts,
                exc,
            )
            _emit(
                bus,
                JobRetried(
                    label=spec.label, index=index, attempt=attempts, cause=str(exc)
                ),
            )
            time.sleep(policy.backoff_for(attempts))
            continue
        elapsed = time.monotonic() - start
        if policy.timeout_s is not None and elapsed > policy.timeout_s:
            # A running Python function cannot be preempted safely, so an
            # in-process overrun is only detected after the fact.
            _emit(
                bus,
                JobTimedOut(
                    label=spec.label, index=index, timeout_s=policy.timeout_s
                ),
            )
            attempts += 1
            if attempts > policy.retries:
                # This attempt *did* produce a result; a late answer beats
                # no answer once the retry budget is spent.
                log.warning(
                    "job %d (%s) exceeded timeout (%.1fs > %.1fs) with no "
                    "retries left; keeping the late result",
                    index,
                    spec.label or spec.workload,
                    elapsed,
                    policy.timeout_s,
                )
            else:
                log.warning(
                    "job %d (%s) exceeded timeout (%.1fs > %.1fs); retrying",
                    index,
                    spec.label or spec.workload,
                    elapsed,
                    policy.timeout_s,
                )
                _emit(
                    bus,
                    JobRetried(
                        label=spec.label,
                        index=index,
                        attempt=attempts,
                        cause="timeout",
                    ),
                )
                time.sleep(policy.backoff_for(attempts))
                continue
        if telemetry is not None:
            # Only the attempt that settles ships telemetry; retried
            # attempts' spans die with the retry, like pooled casualties.
            telemetry.absorb(spans, snapshot, label=spec.label or spec.workload)
        if journal is not None:
            journal.record(key, result)
        return result


# ----------------------------------------------------------------------
# Pooled execution
# ----------------------------------------------------------------------
def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting for its (possibly hung) workers."""
    try:
        for proc in list(getattr(pool, "_processes", {}).values()):
            proc.terminate()
    except Exception:  # pragma: no cover - interpreter-internal layout
        pass
    pool.shutdown(wait=False, cancel_futures=True)


def _run_pooled(
    specs: "List[JobSpec]",
    keys: List[str],
    pending: List[int],
    results: "List[Optional[SimulationResult]]",
    n_workers: int,
    policy: ExecutionPolicy,
    faults: FaultSpec,
    journal: Optional[CheckpointJournal],
    bus: Optional[EventBus],
    manager: Optional[PersistentPool] = None,
    ctx_wire: Optional[dict] = None,
    collect: bool = False,
    telemetry: Optional[TelemetrySink] = None,
) -> bool:
    """Fan ``pending`` out over a process pool, filling ``results``.

    Returns True when the batch completed under pool management (possibly
    with in-process replays of crashed jobs); False when the pool could
    not be started at all — the caller then degrades to in-process
    execution.  Job errors that exhaust the retry budget propagate.

    With ``manager`` set the pool is leased from a :class:`PersistentPool`
    instead of created (and never shut down here); kill paths invalidate
    the manager so the next lease rebuilds.
    """
    queue: "deque[int]" = deque(pending)
    attempts: Dict[int, int] = {i: 0 for i in pending}
    in_flight: "Dict[Future, Tuple[int, float]]" = {}

    def make_pool() -> Optional[ProcessPoolExecutor]:
        try:
            if manager is not None:
                return manager.lease()
            return ProcessPoolExecutor(max_workers=n_workers)
        except (OSError, PermissionError, ValueError) as exc:
            log.warning("process pool unavailable (%s); running in-process", exc)
            _emit(
                bus, ExecutionDegraded(reason="pool_unavailable", cause=str(exc))
            )
            return None

    def discard_pool(pool: ProcessPoolExecutor) -> None:
        if manager is not None:
            manager.invalidate()
        else:
            _kill_pool(pool)

    def settle(index: int, outcome: _AttemptOutcome) -> None:
        result, spans, snapshot = outcome
        results[index] = result
        if telemetry is not None:
            telemetry.absorb(
                spans, snapshot,
                label=specs[index].label or specs[index].workload,
            )
        if journal is not None:
            journal.record(keys[index], result)

    def charge_failure(index: int, cause: str, fatal: Exception) -> None:
        """Spend one attempt for ``index``; requeue it or raise ``fatal``."""
        attempts[index] += 1
        if attempts[index] > policy.retries:
            raise fatal
        log.warning(
            "job %d (%s) attempt %d failed (%s); retrying",
            index,
            specs[index].label or specs[index].workload,
            attempts[index],
            cause,
        )
        _emit(
            bus,
            JobRetried(
                label=specs[index].label,
                index=index,
                attempt=attempts[index],
                cause=cause,
            ),
        )
        time.sleep(policy.backoff_for(attempts[index]))
        queue.append(index)

    pool = make_pool()
    if pool is None:
        return False
    try:
        while queue or in_flight:
            if pool is None:
                pool = make_pool()
                if pool is None:
                    # Mid-batch restart failed: finish everything
                    # in-process under the same retry budget.
                    queue.extend(index for index, _t0 in in_flight.values())
                    in_flight.clear()
                    while queue:
                        index = queue.popleft()
                        results[index] = _run_resilient(
                            specs[index],
                            keys[index],
                            index,
                            policy,
                            faults,
                            journal,
                            bus,
                            failed_attempts=attempts[index],
                            ctx_wire=ctx_wire,
                            collect=collect,
                            telemetry=telemetry,
                        )
                    return True
            # Keep at most n_workers jobs in flight so submission time
            # approximates start time — that is what per-job deadlines
            # are measured against.
            while queue and len(in_flight) < n_workers:
                index = queue.popleft()
                future = pool.submit(
                    _attempt, (specs[index], keys[index], faults, ctx_wire, collect)
                )
                in_flight[future] = (index, time.monotonic())
            if not in_flight:
                continue

            tick = _MAX_TICK_S
            if policy.timeout_s is not None:
                now = time.monotonic()
                nearest = min(
                    t0 + policy.timeout_s - now for _i, t0 in in_flight.values()
                )
                tick = max(0.01, min(nearest, _MAX_TICK_S))
            finished, _running = wait(
                in_flight.keys(), timeout=tick, return_when=FIRST_COMPLETED
            )

            broken: Optional[BrokenProcessPool] = None
            casualties: List[int] = []
            for future in finished:
                index, _t0 = in_flight.pop(future)
                try:
                    settle(index, future.result())
                except BrokenProcessPool as exc:
                    broken = exc
                    casualties.append(index)
                except Exception as exc:
                    charge_failure(index, str(exc), fatal=exc)

            if broken is not None:
                # A worker died and the executor poisoned every in-flight
                # future.  Harvest any that genuinely completed, then
                # replay the casualties in-process (the crashed job is
                # among them; each replay spends the crash's attempt) and
                # rebuild the pool for the remaining queue.
                for future, (index, _t0) in list(in_flight.items()):
                    try:
                        settle(index, future.result(timeout=0))
                    except Exception:
                        casualties.append(index)
                in_flight.clear()
                log.warning(
                    "process pool broke (%s); replaying %d in-flight job(s) "
                    "in-process",
                    broken,
                    len(casualties),
                )
                _emit(
                    bus,
                    WorkerCrashed(
                        cause=str(broken), jobs_in_flight=len(casualties)
                    ),
                )
                discard_pool(pool)
                pool = None
                for index in casualties:
                    attempts[index] += 1
                    if attempts[index] > policy.retries:
                        raise broken
                    _emit(
                        bus,
                        JobRetried(
                            label=specs[index].label,
                            index=index,
                            attempt=attempts[index],
                            cause="worker crash",
                        ),
                    )
                    results[index] = _run_resilient(
                        specs[index],
                        keys[index],
                        index,
                        policy,
                        faults,
                        journal,
                        bus,
                        failed_attempts=attempts[index],
                        ctx_wire=ctx_wire,
                        collect=collect,
                        telemetry=telemetry,
                    )
                continue

            if policy.timeout_s is not None and in_flight:
                now = time.monotonic()
                overdue = [
                    (future, index)
                    for future, (index, t0) in in_flight.items()
                    if now - t0 > policy.timeout_s and not future.done()
                ]
                if overdue:
                    # A ProcessPoolExecutor cannot cancel a running task,
                    # so the whole pool goes: settle what finished in the
                    # meantime, charge the overdue jobs one attempt,
                    # requeue the innocent bystanders for free.
                    for future, (index, _t0) in list(in_flight.items()):
                        if future.done():
                            del in_flight[future]
                            try:
                                settle(index, future.result())
                            except Exception as exc:
                                charge_failure(index, str(exc), fatal=exc)
                    for future, index in overdue:
                        if future not in in_flight:
                            continue
                        del in_flight[future]
                        log.warning(
                            "job %d (%s) exceeded timeout %.1fs; killing its "
                            "pool",
                            index,
                            specs[index].label or specs[index].workload,
                            policy.timeout_s,
                        )
                        _emit(
                            bus,
                            JobTimedOut(
                                label=specs[index].label,
                                index=index,
                                timeout_s=policy.timeout_s,
                            ),
                        )
                        charge_failure(
                            index,
                            "timeout",
                            fatal=TimeoutError(
                                f"job {index} ({specs[index].label}) exceeded "
                                f"{policy.timeout_s}s after "
                                f"{attempts[index] + 1} attempt(s)"
                            ),
                        )
                    queue.extend(index for index, _t0 in in_flight.values())
                    in_flight.clear()
                    discard_pool(pool)
                    pool = None
    finally:
        if pool is not None and manager is None:
            pool.shutdown(wait=False, cancel_futures=True)
    return True
