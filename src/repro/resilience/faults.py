"""Deterministic fault injection for the execution harness.

Fault tolerance that is only exercised by real outages is fault tolerance
that has never been tested.  :class:`FaultSpec` describes a small,
reproducible set of injectable failures — worker crashes, job hangs and
cache-entry corruption — that the resilient executor and the on-disk
caches consult at well-defined points.  Tests and the CI chaos drill turn
them on; production runs leave them off (the spec is empty and every
check is a couple of string comparisons).

Determinism
-----------
Each fault fires for the first ``count`` *attempts* of each matching
site, then never again.  Attempt claims are recorded as marker files
under ``state_dir`` (created with ``O_CREAT | O_EXCL``, so concurrent
workers race safely), which makes the schedule deterministic **across
processes**: a job whose worker crashed claims attempt 0 before dying,
so its in-process replay claims attempt 1 and — with ``count=1`` —
succeeds.  With no ``state_dir`` the claims live in a per-process dict,
which is enough for in-process execution and unit tests.

Environment knobs
-----------------
``REPRO_FAULT_CRASH=<match>:<count>``
    Kill the worker process (``os._exit``) at the start of the first
    ``count`` attempts of every job whose key contains ``match``
    (``*`` matches every job).  In-process execution raises
    :class:`WorkerCrashError` instead of exiting.
``REPRO_FAULT_HANG=<match>:<count>:<seconds>``
    Sleep ``seconds`` at the start of matching attempts — long enough to
    trip a per-job timeout.
``REPRO_FAULT_CORRUPT=<kind>:<count>``
    Corrupt the first ``count`` freshly written cache entries whose kind
    (``trace``, ``plane`` or ``*``) matches, by truncating the file —
    the next read must detect, quarantine and regenerate.
``REPRO_FAULT_STATE=<dir>``
    Marker directory for cross-process attempt claims (required for
    deterministic pool-mode injection).
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import re
import threading
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Optional, Tuple

__all__ = ["FaultSpec", "WorkerCrashError"]

log = logging.getLogger(__name__)


class WorkerCrashError(RuntimeError):
    """An injected worker crash, surfaced as an exception in-process."""


#: Per-process fallback claim store (used when state_dir is empty).
_LOCAL_CLAIMS: dict = {}
_LOCAL_LOCK = threading.Lock()


def _sanitize(key: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", key)


def _parse(spec: str, kind: str, n_fields: int) -> Optional[Tuple[str, ...]]:
    """Split ``spec`` on ``:`` into exactly ``n_fields`` fields, or None."""
    if not spec:
        return None
    parts = spec.split(":")
    if len(parts) != n_fields:
        log.warning("ignoring malformed %s fault spec %r", kind, spec)
        return None
    return tuple(parts)


@dataclass(frozen=True)
class FaultSpec:
    """Injectable faults: ``<match>:<count>``-style strings, all optional."""

    crash: str = ""
    hang: str = ""
    corrupt: str = ""
    state_dir: str = ""

    # ------------------------------------------------------------------
    @classmethod
    def from_env(cls) -> "FaultSpec":
        return cls(
            crash=os.environ.get("REPRO_FAULT_CRASH", ""),
            hang=os.environ.get("REPRO_FAULT_HANG", ""),
            corrupt=os.environ.get("REPRO_FAULT_CORRUPT", ""),
            state_dir=os.environ.get("REPRO_FAULT_STATE", ""),
        )

    def replace(self, **overrides: object) -> "FaultSpec":
        return replace(self, **overrides)  # type: ignore[arg-type]

    @property
    def active(self) -> bool:
        return bool(self.crash or self.hang or self.corrupt)

    # ------------------------------------------------------------------
    # Claim bookkeeping
    # ------------------------------------------------------------------
    def _claim(self, kind: str, key: str, count: int) -> bool:
        """Atomically claim one of ``count`` attempts for ``(kind, key)``.

        Returns True while fewer than ``count`` attempts have been
        claimed — i.e. the fault should fire for this attempt.
        """
        if count <= 0:
            return False
        if self.state_dir:
            root = Path(self.state_dir)
            try:
                root.mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                log.warning("fault state dir %s unusable (%s)", root, exc)
                return False
            stem = f"{kind}-{_sanitize(key)}"
            for attempt in range(count):
                marker = root / f"{stem}-{attempt}"
                try:
                    fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                except FileExistsError:
                    continue
                os.close(fd)
                return True
            return False
        with _LOCAL_LOCK:
            claimed = _LOCAL_CLAIMS.get((kind, key), 0)
            if claimed >= count:
                return False
            _LOCAL_CLAIMS[(kind, key)] = claimed + 1
            return True

    @staticmethod
    def _matches(match: str, key: str) -> bool:
        return match == "*" or match in key

    # ------------------------------------------------------------------
    # Job faults (consulted by the executor at attempt start)
    # ------------------------------------------------------------------
    def maybe_crash(self, job_key: str) -> None:
        """Crash this attempt if the crash fault matches and has budget.

        Inside a pool worker the process dies outright (the parent sees
        ``BrokenProcessPool``); in-process a :class:`WorkerCrashError`
        is raised (an ordinary, retryable job failure).
        """
        parsed = _parse(self.crash, "crash", 2)
        if parsed is None or not self._matches(parsed[0], job_key):
            return
        try:
            count = int(parsed[1])
        except ValueError:
            log.warning("ignoring non-integer crash fault count %r", parsed[1])
            return
        if not self._claim("crash", job_key, count):
            return
        if multiprocessing.parent_process() is not None:
            log.warning("fault injection: crashing worker on job %s", job_key)
            os._exit(17)
        raise WorkerCrashError(f"injected crash on job {job_key}")

    def maybe_hang(self, job_key: str) -> float:
        """Seconds this attempt should sleep (0.0 when the fault is idle)."""
        parsed = _parse(self.hang, "hang", 3)
        if parsed is None or not self._matches(parsed[0], job_key):
            return 0.0
        try:
            count, seconds = int(parsed[1]), float(parsed[2])
        except ValueError:
            log.warning("ignoring malformed hang fault %r", self.hang)
            return 0.0
        if seconds <= 0 or not self._claim("hang", job_key, count):
            return 0.0
        log.warning("fault injection: hanging job %s for %.1fs", job_key, seconds)
        return seconds

    # ------------------------------------------------------------------
    # Cache faults (consulted by the caches right after a store)
    # ------------------------------------------------------------------
    def maybe_corrupt(self, path: "os.PathLike | str", kind: str) -> bool:
        """Truncate a freshly written cache entry if the fault matches.

        ``kind`` is ``"trace"`` or ``"plane"``.  Returns True when the
        file was corrupted.
        """
        parsed = _parse(self.corrupt, "corrupt", 2)
        if parsed is None or not (parsed[0] == "*" or parsed[0] == kind):
            return False
        try:
            count = int(parsed[1])
        except ValueError:
            log.warning("ignoring non-integer corrupt fault count %r", parsed[1])
            return False
        if not self._claim("corrupt", f"{kind}-{Path(path).name}", count):
            return False
        try:
            size = os.path.getsize(path)
            with open(path, "r+b") as fh:
                fh.truncate(max(1, size // 2))
            log.warning("fault injection: corrupted %s cache entry %s", kind, path)
            return True
        except OSError as exc:
            log.warning("fault injection could not corrupt %s (%s)", path, exc)
            return False
