"""The unified execution policy.

Before this module existed, execution behaviour was threaded through the
codebase one keyword at a time: ``jobs=`` on every experiment ``run()``,
``compressed=`` on :class:`~repro.parallel.jobs.JobSpec`, env knobs read
ad hoc.  Adding per-job timeouts, retries and checkpointing the same way
would have meant five more kwargs on a dozen signatures.

:class:`ExecutionPolicy` collapses all of it into one frozen, picklable
value object that rides from the CLI through the sweep runners down to
the executor.  Every field has a conservative default, so
``ExecutionPolicy()`` behaves exactly like the bare ``run_jobs`` of old
(minus the silent failure modes), and callers that never cared keep a
one-argument surface: ``run(policy=policy)``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from .faults import FaultSpec

__all__ = ["ExecutionPolicy"]


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a batch of simulation jobs should be executed.

    Parameters
    ----------
    jobs:
        Worker-process count: ``None`` defers to ``$REPRO_JOBS`` (default
        1), ``0`` means one per core, ``1`` runs in-process, ``n > 1``
        fans out over a process pool.
    compressed:
        Force compressed miss-stream execution on (True) / off (False),
        or ``None`` to let each job decide (``$REPRO_COMPRESSED``,
        default on).
    timeout_s:
        Per-job wall-clock budget.  In pool mode a job that exceeds it is
        killed with its pool and retried; in-process it is detected after
        the fact (a running Python function cannot be preempted safely).
        ``None`` disables the timeout.
    retries:
        How many times a *failed* attempt may be retried — a job gets at
        most ``retries + 1`` attempts before its error propagates.
    backoff_s:
        Sleep before retry ``k`` (1-based) is ``backoff_s * 2**(k-1)``.
    checkpoint_dir:
        Run directory for the JSONL checkpoint journal.  When set, every
        completed job is journalled and a re-run of the same batch loads
        completed jobs from disk instead of re-simulating them.
        ``None`` disables checkpointing.
    fault_spec:
        Deterministic fault injection (tests / chaos drills); ``None``
        reads the ``REPRO_FAULT_*`` environment.
    """

    jobs: Optional[int] = None
    compressed: Optional[bool] = None
    timeout_s: Optional[float] = None
    retries: int = 1
    backoff_s: float = 0.25
    checkpoint_dir: Optional[str] = None
    fault_spec: Optional[FaultSpec] = None

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")

    # ------------------------------------------------------------------
    @classmethod
    def from_env(cls) -> "ExecutionPolicy":
        """A policy built entirely from ``REPRO_*`` environment knobs."""
        return cls(fault_spec=FaultSpec.from_env())

    def replace(self, **overrides: object) -> "ExecutionPolicy":
        return dataclasses.replace(self, **overrides)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    def resolved_jobs(self) -> int:
        """The effective worker count (env defaults applied, >= 1)."""
        from ..parallel.jobs import resolve_jobs

        return resolve_jobs(self.jobs)

    def faults(self) -> FaultSpec:
        """The effective fault spec (explicit, else from the environment)."""
        if self.fault_spec is not None:
            return self.fault_spec
        return FaultSpec.from_env()

    def backoff_for(self, retry: int) -> float:
        """Exponential backoff before 1-based retry number ``retry``."""
        if retry <= 0 or self.backoff_s <= 0:
            return 0.0
        return self.backoff_s * (2.0 ** (retry - 1))

    def describe(self) -> str:
        """One-line human summary (logs and run manifests)."""
        parts = [f"jobs={self.resolved_jobs()}"]
        if self.compressed is not None:
            parts.append(f"compressed={'on' if self.compressed else 'off'}")
        if self.timeout_s is not None:
            parts.append(f"timeout={self.timeout_s:g}s")
        parts.append(f"retries={self.retries}")
        if self.checkpoint_dir:
            parts.append(f"checkpoint={self.checkpoint_dir}")
        if self.faults().active:
            parts.append("faults=on")
        return " ".join(parts)
