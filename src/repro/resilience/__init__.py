"""Fault-tolerant execution: policy, retries, checkpoints, integrity.

The paper's evaluation is a long parade of sweeps — hundreds of
simulations per figure.  This package makes those batches survive the
failures long batch jobs actually hit (dying workers, hung jobs, corrupt
cache files, a SIGKILL at hour three) behind one value object:

>>> from repro.resilience import ExecutionPolicy
>>> policy = ExecutionPolicy(jobs=4, timeout_s=600, retries=2,
...                          checkpoint_dir="runs/fig4")

Modules
-------
``policy``
    :class:`ExecutionPolicy` — the one frozen dataclass every runner and
    experiment accepts instead of loose ``jobs=``/``compressed=`` kwargs.
``executor``
    :func:`execute` — the retry/timeout/checkpoint-aware engine behind
    :func:`repro.parallel.jobs.run_jobs` and both sweep runners.
``checkpoint``
    :class:`CheckpointJournal` — durable JSONL journal keyed by
    :func:`job_key`; interrupted sweeps resume bit-identically.
``faults``
    :class:`FaultSpec` — deterministic injection of worker crashes, job
    hangs and cache corruption (``REPRO_FAULT_*``), used by the tests
    and the CI chaos drill.
``integrity``
    Checksum sidecars and quarantine for the on-disk ``.npz`` caches.
"""

from .checkpoint import CheckpointJournal, job_key
from .executor import PersistentPool, execute
from .faults import FaultSpec, WorkerCrashError
from .integrity import (
    checksum_path,
    quarantine_entry,
    verify_checksum,
    write_checksum,
)
from .policy import ExecutionPolicy

__all__ = [
    "CheckpointJournal",
    "ExecutionPolicy",
    "FaultSpec",
    "PersistentPool",
    "WorkerCrashError",
    "checksum_path",
    "execute",
    "job_key",
    "quarantine_entry",
    "verify_checksum",
    "write_checksum",
]
