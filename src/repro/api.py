"""The stable public facade of the reproduction.

``repro.api`` is the one import that downstream code (notebooks, the
benches, external tooling) should depend on.  Everything exported here
carries a stability promise: names stay put across refactors of the
underlying packages, and behaviour changes only with a deprecation
cycle.  Internals — anything *not* in ``__all__`` below — may move or
change between versions without notice.

The surface, by theme
---------------------
Simulation
    :class:`EpochSimulator`, :class:`ProcessorConfig`,
    :class:`CacheConfig`, :class:`SimulationResult`,
    :class:`SimulationStats`
Workloads
    :func:`make_workload`, :data:`WORKLOADS`,
    :data:`COMMERCIAL_WORKLOADS`, :class:`Trace`
Prefetchers
    :func:`build_prefetcher`, :data:`PREFETCHERS`, :class:`Prefetcher`,
    :func:`make_ebcp`
Execution
    :class:`ExecutionPolicy` (timeouts, retries, checkpoints, fault
    injection), :class:`JobSpec`, :func:`run_jobs`,
    :class:`SweepRunner`, :class:`ParallelSweepRunner`,
    :class:`SweepPoint`
Sweep specs (the declarative surface)
    :class:`SweepSpec` with :func:`load_spec` / :func:`loads_spec` /
    :func:`dump_spec`, executed by :func:`run_spec` (local) or
    :func:`submit_spec` (streamed through a service); :func:`expand`
    lowers a spec to its job grid, :class:`SweepResult` carries the
    results, :class:`SpecError` / :class:`SpecVersionError` are the
    typed validation failures, :data:`SPEC_VERSION` is the schema
    version this build reads and writes
Experiments
    :func:`run_experiment` regenerates one paper table/figure from its
    committed ``specs/*.toml`` file; :data:`EXPERIMENTS` (experiment
    id -> module) remains for enumeration and for the deprecated
    imperative ``module.run()`` entry points, which now warn and
    delegate to :func:`run_experiment`.  :class:`FigureResult` and
    :class:`TableResult` are the rendered shapes experiments return.
Observability
    :class:`EventBus`, :class:`MetricsRegistry`, and the tracing
    vocabulary :class:`TraceContext` / :class:`SpanRecorder` /
    :class:`TelemetrySink` with :func:`render_prometheus` exposition
Service
    :class:`ServiceClient` / :class:`AsyncServiceClient` (talk to a
    running ``repro-ebcp serve``) with :meth:`~ServiceClient.sweep` /
    :meth:`~ServiceClient.iter_sweep` streaming (:class:`SweepFrame`
    per job), :class:`ServedResult`, :class:`ServiceConfig`,
    :class:`SimulationService`, :func:`serve`,
    :class:`BackgroundService` (in-process harness for tests and
    notebooks), :class:`ResultCache`, :data:`PROTOCOL_VERSION`, the
    sharded tier :class:`ShardedService` with :class:`HashRing` /
    :func:`routing_key` consistent-hash routing, and the typed client
    errors :class:`ServiceError` / :class:`ServiceBusyError`

Deprecation plan
----------------
``EXPERIMENTS[name].run()`` warns ``DeprecationWarning`` since the spec
redesign and will be removed in the release after next; call
:func:`run_experiment` (same results, same signature past the name) or
``repro sweep run specs/<name>.toml`` instead.  ``SweepRunner`` /
``ParallelSweepRunner`` remain supported as the imperative layer under
:func:`run_spec` but new sweeps should be written as spec files.

>>> from repro import api
>>> spec = api.load_spec("specs/table1.toml")
>>> result = api.run_spec(spec, policy=api.ExecutionPolicy(jobs=2))
... # doctest: +SKIP
"""

from __future__ import annotations

from .analysis.sweep import SweepPoint, SweepRunner
from .core import make_ebcp
from .engine import (
    CacheConfig,
    EpochSimulator,
    ProcessorConfig,
    SimulationResult,
    SimulationStats,
)
from .experiments import EXPERIMENTS
from .experiments.common import FigureResult, TableResult
from .experiments.from_spec import run_experiment
from .obs import (
    EventBus,
    MetricsRegistry,
    SpanRecorder,
    TelemetrySink,
    TraceContext,
    render_prometheus,
)
from .parallel import JobSpec, ParallelSweepRunner, run_jobs
from .prefetchers import PREFETCHERS, Prefetcher, build_prefetcher
from .resilience import ExecutionPolicy
from .service import (
    PROTOCOL_VERSION,
    AsyncServiceClient,
    BackgroundService,
    HashRing,
    ResultCache,
    ServedResult,
    ServiceBusyError,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ShardedService,
    SimulationService,
    routing_key,
    serve,
)
from .service.client import SweepFrame
from .spec import (
    SPEC_VERSION,
    SpecError,
    SpecVersionError,
    SweepResult,
    SweepSpec,
    dump_spec,
    dumps_spec,
    expand,
    load_spec,
    loads_spec,
    run_spec,
    submit_spec,
)
from .workloads import COMMERCIAL_WORKLOADS, WORKLOADS, Trace, make_workload

__all__ = [
    "AsyncServiceClient",
    "BackgroundService",
    "CacheConfig",
    "COMMERCIAL_WORKLOADS",
    "EXPERIMENTS",
    "EpochSimulator",
    "EventBus",
    "ExecutionPolicy",
    "FigureResult",
    "HashRing",
    "JobSpec",
    "MetricsRegistry",
    "PREFETCHERS",
    "PROTOCOL_VERSION",
    "ParallelSweepRunner",
    "Prefetcher",
    "ProcessorConfig",
    "ResultCache",
    "SPEC_VERSION",
    "ServedResult",
    "ServiceBusyError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ShardedService",
    "SimulationResult",
    "SimulationStats",
    "SimulationService",
    "SpanRecorder",
    "SpecError",
    "SpecVersionError",
    "SweepFrame",
    "SweepPoint",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "TableResult",
    "TelemetrySink",
    "Trace",
    "TraceContext",
    "WORKLOADS",
    "build_prefetcher",
    "dump_spec",
    "dumps_spec",
    "expand",
    "load_spec",
    "loads_spec",
    "make_ebcp",
    "make_workload",
    "render_prometheus",
    "routing_key",
    "run_experiment",
    "run_jobs",
    "run_spec",
    "serve",
    "submit_spec",
]
