"""The stable public facade of the reproduction.

``repro.api`` is the one import that downstream code (notebooks, the
benches, external tooling) should depend on.  Everything exported here
carries a stability promise: names stay put across refactors of the
underlying packages, and behaviour changes only with a deprecation
cycle.  Internals — anything *not* in ``__all__`` below — may move or
change between versions without notice.

The surface, by theme
---------------------
Simulation
    :class:`EpochSimulator`, :class:`ProcessorConfig`,
    :class:`CacheConfig`, :class:`SimulationResult`,
    :class:`SimulationStats`
Workloads
    :func:`make_workload`, :data:`WORKLOADS`,
    :data:`COMMERCIAL_WORKLOADS`, :class:`Trace`
Prefetchers
    :func:`build_prefetcher`, :data:`PREFETCHERS`, :class:`Prefetcher`,
    :func:`make_ebcp`
Execution
    :class:`ExecutionPolicy` (timeouts, retries, checkpoints, fault
    injection), :class:`JobSpec`, :func:`run_jobs`,
    :class:`SweepRunner`, :class:`ParallelSweepRunner`
Experiments
    :data:`EXPERIMENTS` — experiment id -> module; each module's
    ``run(records=..., seed=..., policy=...)`` regenerates one paper
    table/figure
Observability
    :class:`EventBus`, :class:`MetricsRegistry`, and the tracing
    vocabulary :class:`TraceContext` / :class:`SpanRecorder` /
    :class:`TelemetrySink` with :func:`render_prometheus` exposition
Service
    :class:`ServiceClient` / :class:`AsyncServiceClient` (talk to a
    running ``repro-ebcp serve``), :class:`ServedResult`,
    :class:`ServiceConfig`, :class:`SimulationService`, the sharded
    tier :class:`ShardedService` with :class:`HashRing` /
    :func:`routing_key` consistent-hash routing, and the typed client
    errors :class:`ServiceError` / :class:`ServiceBusyError`

>>> from repro import api
>>> policy = api.ExecutionPolicy(jobs=2, retries=2, timeout_s=600)
>>> table = api.EXPERIMENTS["table1"].run(records=40_000, policy=policy)
... # doctest: +SKIP
"""

from __future__ import annotations

from .analysis.sweep import SweepRunner
from .core import make_ebcp
from .engine import (
    CacheConfig,
    EpochSimulator,
    ProcessorConfig,
    SimulationResult,
    SimulationStats,
)
from .experiments import EXPERIMENTS
from .obs import (
    EventBus,
    MetricsRegistry,
    SpanRecorder,
    TelemetrySink,
    TraceContext,
    render_prometheus,
)
from .parallel import JobSpec, ParallelSweepRunner, run_jobs
from .prefetchers import PREFETCHERS, Prefetcher, build_prefetcher
from .resilience import ExecutionPolicy
from .service import (
    AsyncServiceClient,
    HashRing,
    ServedResult,
    ServiceBusyError,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ShardedService,
    SimulationService,
    routing_key,
)
from .workloads import COMMERCIAL_WORKLOADS, WORKLOADS, Trace, make_workload

__all__ = [
    "AsyncServiceClient",
    "CacheConfig",
    "COMMERCIAL_WORKLOADS",
    "EXPERIMENTS",
    "EpochSimulator",
    "EventBus",
    "ExecutionPolicy",
    "HashRing",
    "JobSpec",
    "MetricsRegistry",
    "PREFETCHERS",
    "ParallelSweepRunner",
    "Prefetcher",
    "ProcessorConfig",
    "ServedResult",
    "ServiceBusyError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ShardedService",
    "SimulationResult",
    "SimulationStats",
    "SimulationService",
    "SpanRecorder",
    "SweepRunner",
    "TelemetrySink",
    "Trace",
    "TraceContext",
    "WORKLOADS",
    "build_prefetcher",
    "make_ebcp",
    "make_workload",
    "render_prometheus",
    "routing_key",
    "run_jobs",
]
