"""Figure 8: sensitivity to available memory bandwidth.

The paper re-runs the prefetch-degree sweep at three bandwidth points —
9.6/4.8 GB/s (default), 6.4/3.2 GB/s and 3.2/1.6 GB/s read/write — and
finds that the optimal degree depends on bandwidth:

* at 9.6 GB/s performance keeps improving through degree 32;
* at 6.4 GB/s the database and SPECjbb2005 peak around degree 16;
* at 3.2 GB/s performance declines beyond degree ~8 (and for the
  database declines with degree throughout).

Prefetches past the bus budget are dropped and sustained saturation adds
queueing delay to the effective miss penalty — both modelled in
:mod:`repro.memory.bandwidth`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from .common import (
    DEFAULT_RECORDS,
    DEFAULT_SEED,
    FigureResult,
    bandwidth_config,
    make_sweep_ebcp,
    new_runner,
    warn_spec_deprecation,
)

if TYPE_CHECKING:
    from ..resilience.policy import ExecutionPolicy

__all__ = ["BANDWIDTH_POINTS", "DEGREES", "Figure8Result", "assemble", "run", "run_legacy"]

#: (read GB/s, write GB/s) points from Section 5.2.4.
BANDWIDTH_POINTS: tuple[tuple[float, float], ...] = ((9.6, 4.8), (6.4, 3.2), (3.2, 1.6))
DEGREES: tuple[int, ...] = (2, 4, 8, 16, 32)


@dataclass
class Figure8Result:
    """One degree-sweep panel per bandwidth point."""

    panels: Mapping[str, FigureResult]  # keyed by "9.6", "6.4", "3.2"

    def render(self) -> str:
        return "\n\n".join(panel.render() for panel in self.panels.values())

    def improvement(self, read_gbps: float, workload: str, degree: int) -> float:
        return self.panels[f"{read_gbps:g}"].value(workload, degree)

    def to_dict(self) -> dict:
        return {
            "kind": "figure_panels",
            "id": "Figure 8",
            "panels": {key: panel.to_dict() for key, panel in self.panels.items()},
        }


def assemble(grids: "Mapping[str, Mapping]") -> Figure8Result:
    """Build the Figure 8 panels from per-bandwidth sweep grids."""
    panels: dict[str, FigureResult] = {}
    for key, grid in grids.items():
        series = {w: [p.improvement for p in points] for w, points in grid.items()}
        panels[key] = FigureResult(
            figure_id=f"Figure 8 ({key} GB/s read)",
            title="Effect of available memory bandwidth on EBCP performance",
            x_label="degree",
            x_values=DEGREES,
            series=series,
            points=grid,
        )
    return Figure8Result(panels=panels)


def run_legacy(
    records: int = DEFAULT_RECORDS,
    seed: int = DEFAULT_SEED,
    policy: "ExecutionPolicy | None" = None,
) -> Figure8Result:
    """The historical imperative path; kept for equivalence testing."""
    runner = new_runner(records, seed)
    grids: dict[str, dict] = {}
    for read_gbps, write_gbps in BANDWIDTH_POINTS:
        config = bandwidth_config(read_gbps, write_gbps)
        grids[f"{read_gbps:g}"] = runner.sweep(
            labels=[str(d) for d in DEGREES],
            prefetcher_factory=lambda label: make_sweep_ebcp(degree=int(label)),
            config=config,
            policy=policy,
        )
    return assemble(grids)


def run(
    records: int = DEFAULT_RECORDS,
    seed: int = DEFAULT_SEED,
    policy: "ExecutionPolicy | None" = None,
) -> Figure8Result:
    """Deprecated: the experiment is driven by specs/figure8.toml now."""
    warn_spec_deprecation("figure8", "figure8.toml")
    from .from_spec import run_experiment

    return run_experiment("figure8", records=records, seed=seed, policy=policy)
