"""Figure 9: EBCP versus other prefetchers.

The paper's headline comparison.  All prefetchers use a uniform degree of
six (except SMS, which may issue up to 32 prefetches on a pattern match —
all lines of a spatial region) and a 64-entry prefetch buffer; the
memory-table prefetchers (EBCP, EBCP-minus, Solihin) use same-sized
main-memory tables.  Published shape the tests assert:

* EBCP beats every other scheme on every workload;
* EBCP beats EBCP-minus everywhere (skipping the un-prefetchable next
  epoch matters);
* Solihin 6,1 beats Solihin 3,2 everywhere (depth beats width);
* GHB large beats GHB small; TCP large beats TCP small (capacity);
* the sub-megabyte on-chip schemes (GHB small, TCP small, stream) are
  largely ineffective on these workloads, with SMS the exception;
* SMS does relatively well on database/SPECjbb2005 but poorly on
  TPC-W/SPECjAppServer2004 (no instruction prefetching).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.prefetcher import EBCPConfig, EpochBasedCorrelationPrefetcher
from ..prefetchers.base import Prefetcher
from ..prefetchers.ghb import make_ghb_large, make_ghb_small
from ..prefetchers.sms import SpatialMemoryStreaming
from ..prefetchers.solihin import make_solihin_3_2, make_solihin_6_1
from ..prefetchers.stream import StreamPrefetcher
from ..prefetchers.tcp import make_tcp_large, make_tcp_small
from .common import (
    DEFAULT_RECORDS,
    DEFAULT_SEED,
    FigureResult,
    default_config,
    new_runner,
    warn_spec_deprecation,
)

if TYPE_CHECKING:
    from ..resilience.policy import ExecutionPolicy

__all__ = ["SCHEMES", "assemble", "build_comparison_prefetcher", "run", "run_legacy"]

#: Figure 9's x-axis, in the paper's order.
SCHEMES: tuple[str, ...] = (
    "ghb_small",
    "ghb_large",
    "tcp_small",
    "tcp_large",
    "stream",
    "sms",
    "solihin_3_2",
    "solihin_6_1",
    "ebcp_minus",
    "ebcp",
)

_UNIFORM_DEGREE = 6


def build_comparison_prefetcher(name: str) -> Prefetcher:
    """Build one Figure 9 scheme with the paper's comparison settings."""
    if name == "ghb_small":
        return make_ghb_small(degree=_UNIFORM_DEGREE)
    if name == "ghb_large":
        return make_ghb_large(degree=_UNIFORM_DEGREE)
    if name == "tcp_small":
        return make_tcp_small(degree=_UNIFORM_DEGREE)
    if name == "tcp_large":
        return make_tcp_large(degree=_UNIFORM_DEGREE)
    if name == "stream":
        return StreamPrefetcher(degree=_UNIFORM_DEGREE)
    if name == "sms":
        return SpatialMemoryStreaming()  # up to 32 prefetches per match
    if name == "solihin_3_2":
        return make_solihin_3_2(degree=_UNIFORM_DEGREE)
    if name == "solihin_6_1":
        return make_solihin_6_1(degree=_UNIFORM_DEGREE)
    if name == "ebcp_minus":
        return EpochBasedCorrelationPrefetcher(
            EBCPConfig(prefetch_degree=_UNIFORM_DEGREE, addrs_per_entry=6, skip_epochs=1)
        )
    if name == "ebcp":
        return EpochBasedCorrelationPrefetcher(
            EBCPConfig(prefetch_degree=_UNIFORM_DEGREE, addrs_per_entry=6)
        )
    raise KeyError(f"unknown Figure 9 scheme '{name}'")


def assemble(grid) -> FigureResult:
    """Build the Figure 9 result from a scheme-comparison grid."""
    series = {w: [p.improvement for p in points] for w, points in grid.items()}
    return FigureResult(
        figure_id="Figure 9",
        title="Performance comparison of EBCP with other prefetchers "
        f"(uniform degree {_UNIFORM_DEGREE})",
        x_label="scheme",
        x_values=SCHEMES,
        series=series,
        points=grid,
    )


def run_legacy(
    records: int = DEFAULT_RECORDS,
    seed: int = DEFAULT_SEED,
    policy: "ExecutionPolicy | None" = None,
) -> FigureResult:
    """The historical imperative path; kept for equivalence testing."""
    runner = new_runner(records, seed)
    grid = runner.sweep(
        labels=list(SCHEMES),
        prefetcher_factory=build_comparison_prefetcher,
        config=default_config(),
        policy=policy,
    )
    return assemble(grid)


def run(
    records: int = DEFAULT_RECORDS,
    seed: int = DEFAULT_SEED,
    policy: "ExecutionPolicy | None" = None,
) -> FigureResult:
    """Deprecated: the experiment is driven by specs/figure9.toml now."""
    warn_spec_deprecation("figure9", "figure9.toml")
    from .from_spec import run_experiment

    return run_experiment("figure9", records=records, seed=seed, policy=policy)
