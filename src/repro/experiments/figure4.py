"""Figure 4: effect of prefetch degree on overall performance.

The paper starts from an idealized predictor (8 M-entry table, 32
addresses per entry, 1024-entry prefetch buffer) and sweeps the maximum
number of prefetches issued per correlation-table match from 1 to 32,
reporting the overall performance improvement over the no-prefetching
baseline.  Performance keeps improving with degree at the default
9.6 GB/s read bandwidth.

This module runs the same sweep (table scaled with the rest of the
configuration, DESIGN.md Section 2) and exposes the full sweep points so
Figure 5 can present its secondary metrics without re-simulating.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .common import (
    DEFAULT_RECORDS,
    DEFAULT_SEED,
    FigureResult,
    idealized_config,
    make_sweep_ebcp,
    memoized,
    new_runner,
    warn_spec_deprecation,
)

if TYPE_CHECKING:
    from ..resilience.policy import ExecutionPolicy

__all__ = ["DEGREES", "assemble", "run", "run_legacy", "sweep_points"]

DEGREES: tuple[int, ...] = (1, 2, 4, 8, 16, 32)


def sweep_points(
    records: int = DEFAULT_RECORDS,
    seed: int = DEFAULT_SEED,
    policy: "ExecutionPolicy | None" = None,
):
    """The degree sweep grid, memoised for sharing with Figure 5.

    ``policy`` only affects *how* the grid executes (fan-out, retries,
    checkpointing — results are bit-identical), so it is deliberately
    not part of the memo key.
    """

    def compute():
        runner = new_runner(records, seed)
        config = idealized_config()
        return runner.sweep(
            labels=[str(d) for d in DEGREES],
            prefetcher_factory=lambda label: make_sweep_ebcp(degree=int(label)),
            config=config,
            policy=policy,
        )

    return memoized(("degree_sweep", records, seed), compute)


def assemble(grid) -> FigureResult:
    """Build the Figure 4 result from a degree-sweep grid."""
    series = {
        workload: [point.improvement for point in points]
        for workload, points in grid.items()
    }
    return FigureResult(
        figure_id="Figure 4",
        title="Effect of limiting number of prefetches on overall performance improvement",
        x_label="degree",
        x_values=DEGREES,
        series=series,
        points=grid,
    )


def run_legacy(
    records: int = DEFAULT_RECORDS,
    seed: int = DEFAULT_SEED,
    policy: "ExecutionPolicy | None" = None,
) -> FigureResult:
    """The historical imperative path; kept for equivalence testing."""
    return assemble(sweep_points(records, seed, policy=policy))


def run(
    records: int = DEFAULT_RECORDS,
    seed: int = DEFAULT_SEED,
    policy: "ExecutionPolicy | None" = None,
) -> FigureResult:
    """Deprecated: the experiment is driven by specs/figure4.toml now."""
    warn_spec_deprecation("figure4", "figure4.toml")
    from .from_spec import run_experiment

    return run_experiment("figure4", records=records, seed=seed, policy=policy)
