"""Spec-driven experiment adapters: ``specs/*.toml`` → paper artifacts.

The experiment layer is re-founded on declarative sweep specs: each
paper artifact is a committed spec file under ``specs/`` plus a thin
result-assembly adapter here.  The adapters load the spec, apply any
records/seed overrides, execute it through :func:`repro.spec.run_spec`
(memoised by spec fingerprint, so Figure 4 and Figure 5 — two views of
one sweep — share a single execution), and assemble the same result
objects the legacy imperative modules produced, using the *same*
assembly helpers those modules now expose.

The legacy ``run()`` entry points delegate here behind a
``DeprecationWarning``; their imperative bodies survive as
``run_legacy()`` for the golden equivalence tests.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Sequence

from ..analysis.calibration import TABLE1_TARGETS, CalibrationReport
from ..analysis.sweep import SweepPoint
from ..spec import SweepResult, SweepSpec, load_spec, run_spec
from .common import memoized

if TYPE_CHECKING:
    from ..resilience.policy import ExecutionPolicy

__all__ = [
    "SPEC_FILES",
    "spec_dir",
    "spec_path",
    "load_experiment_spec",
    "sweep_for",
    "run_experiment",
]

#: Experiment id -> committed spec file.  Figure 5 deliberately maps to
#: Figure 4's spec: its panels are secondary metrics of the same sweep.
SPEC_FILES = {
    "table1": "table1.toml",
    "figure4": "figure4.toml",
    "figure5": "figure4.toml",
    "figure6": "figure6.toml",
    "figure7": "figure7.toml",
    "figure8": "figure8.toml",
    "figure9": "figure9.toml",
    "extension_cmp": "extension_cmp.toml",
}


def spec_dir() -> Path:
    """The committed ``specs/`` directory (``$REPRO_SPEC_DIR`` overrides)."""
    env = os.environ.get("REPRO_SPEC_DIR")
    if env:
        return Path(env)
    # src/repro/experiments/from_spec.py -> repo root / specs
    root = Path(__file__).resolve().parents[3] / "specs"
    if root.is_dir():
        return root
    return Path.cwd() / "specs"


def spec_path(name: str) -> Path:
    try:
        return spec_dir() / SPEC_FILES[name]
    except KeyError:
        raise KeyError(
            f"no spec-backed experiment '{name}'; known: {', '.join(SPEC_FILES)}"
        ) from None


def load_experiment_spec(
    name: str,
    records: Optional[int] = None,
    seed: Optional[int] = None,
) -> SweepSpec:
    """Load an experiment's committed spec with grid overrides applied.

    ``extension_cmp`` re-derives its per-thread record counts from a
    ``records`` override (total work held constant across thread
    counts), mirroring the legacy module's ``max(20000, records // n)``.
    """
    spec = load_spec(spec_path(name))
    changes: dict = {}
    if records is not None:
        changes["records"] = records
    if seed is not None:
        changes["seeds"] = [seed]
    if records is not None and name == "extension_cmp":
        changes["threads"] = [
            {"n_threads": tp.n_threads, "records": max(20_000, records // tp.n_threads)}
            for tp in spec.grid.threads
        ]
    if changes:
        spec = spec.with_grid(**changes)
    return spec


def sweep_for(
    spec: SweepSpec, policy: "Optional[ExecutionPolicy]" = None
) -> SweepResult:
    """Execute ``spec`` once per content fingerprint.

    ``policy`` only affects *how* the sweep executes (fan-out, retries,
    checkpointing — results are bit-identical), so, like the legacy
    sweep memo, it is deliberately not part of the key.
    """
    return memoized(
        ("spec_sweep", spec.fingerprint()), lambda: run_spec(spec, policy=policy)
    )


# ----------------------------------------------------------------------
# Per-experiment assembly.  Each uses the assembly helper its legacy
# module exposes, so both paths format one way.
# ----------------------------------------------------------------------


def _table1(spec: SweepSpec, result: SweepResult):
    from . import table1

    reports = [
        CalibrationReport(
            workload=meta.workload, measured=res, targets=TABLE1_TARGETS[meta.workload]
        )
        for meta, res in result.baselines()
    ]
    return table1.tabulate(reports)


def _figure4(spec: SweepSpec, result: SweepResult):
    from . import figure4

    return figure4.assemble(result.grid())


def _figure5(spec: SweepSpec, result: SweepResult):
    from . import figure5

    return figure5.assemble(result.grid())


def _figure6(spec: SweepSpec, result: SweepResult):
    from . import figure6

    return figure6.assemble(result.grid())


def _figure7(spec: SweepSpec, result: SweepResult):
    from . import figure7

    # Config-axis sweep: one point per config variant, labelled by it.
    grid: dict = {w: [] for w in spec.workloads}
    for meta, res in result.candidates():
        grid[meta.workload].append(
            SweepPoint(
                workload=meta.workload,
                label=meta.config_label,
                result=res,
                baseline=result.baseline_result(meta),
            )
        )
    return figure7.assemble(grid)


def _figure8(spec: SweepSpec, result: SweepResult):
    from . import figure8

    grids = {cfg.label: result.grid(config_label=cfg.label) for cfg in spec.configs}
    return figure8.assemble(grids)


def _figure9(spec: SweepSpec, result: SweepResult):
    from . import figure9

    return figure9.assemble(result.grid())


def _extension_cmp(spec: SweepSpec, result: SweepResult):
    from . import extension_cmp

    thread_counts = [tp.n_threads for tp in spec.grid.threads]
    series_by_workload: dict = {
        w: {pf.effective_label: [] for pf in spec.prefetchers} for w in spec.workloads
    }
    for meta, res in result.candidates():
        baseline = result.baseline_result(meta)
        series_by_workload[meta.workload][meta.label].append(
            res.improvement_over(baseline)
        )
    return extension_cmp.assemble(series_by_workload, thread_counts)


_ASSEMBLERS = {
    "table1": _table1,
    "figure4": _figure4,
    "figure5": _figure5,
    "figure6": _figure6,
    "figure7": _figure7,
    "figure8": _figure8,
    "figure9": _figure9,
    "extension_cmp": _extension_cmp,
}


def run_experiment(
    name: str,
    records: Optional[int] = None,
    seed: Optional[int] = None,
    policy: "Optional[ExecutionPolicy]" = None,
    workloads: Optional[Sequence[str]] = None,
    thread_counts: Optional[Sequence[int]] = None,
):
    """Run one paper artifact from its committed spec.

    Returns the same result object as the experiment module's historical
    ``run()`` (``TableResult``, ``FigureResult``, panel containers), and
    the values are bit-identical — the spec expands to the same job grid
    the imperative code used to build.
    """
    spec = load_experiment_spec(name, records=records, seed=seed)
    if workloads is not None:
        spec = spec.replace(workloads=list(workloads))
    if thread_counts is not None:
        total = records if records is not None else spec.grid.records
        spec = spec.with_grid(
            threads=[
                {"n_threads": n, "records": max(20_000, total // n)}
                for n in thread_counts
            ]
        )
    result = sweep_for(spec, policy=policy)
    return _ASSEMBLERS[name](spec, result)
