"""Figure 6: effect of correlation-table size.

The paper sweeps the number of main-memory correlation-table entries and
finds that one million entries (64 MB of main memory) suffices to avoid
significant performance erosion.  At our 8x-scaled footprints the
equivalent knee sits around 128 K entries; the sweep spans 1 K to 512 K
to expose both the erosion below the knee and the plateau above it.

Degree is fixed at eight (the tuned choice of Section 5.2.1) and the
prefetch buffer at its tuned 64 entries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.prefetcher import EBCPConfig, EpochBasedCorrelationPrefetcher
from .common import (
    DEFAULT_RECORDS,
    DEFAULT_SEED,
    FigureResult,
    default_config,
    new_runner,
    warn_spec_deprecation,
)

if TYPE_CHECKING:
    from ..resilience.policy import ExecutionPolicy

__all__ = ["TABLE_ENTRIES", "assemble", "run", "run_legacy"]

TABLE_ENTRIES: tuple[int, ...] = (
    1024,
    4 * 1024,
    16 * 1024,
    64 * 1024,
    128 * 1024,
    512 * 1024,
)


def assemble(grid) -> FigureResult:
    """Build the Figure 6 result from a table-entries sweep grid."""
    series = {w: [p.improvement for p in points] for w, points in grid.items()}
    return FigureResult(
        figure_id="Figure 6",
        title="Effect of limiting number of predictor table entries on overall "
        "performance improvement",
        x_label="entries",
        x_values=TABLE_ENTRIES,
        series=series,
        points=grid,
    )


def run_legacy(
    records: int = DEFAULT_RECORDS,
    seed: int = DEFAULT_SEED,
    policy: "ExecutionPolicy | None" = None,
) -> FigureResult:
    """The historical imperative path; kept for equivalence testing."""
    runner = new_runner(records, seed)
    config = default_config()

    def factory(label: str) -> EpochBasedCorrelationPrefetcher:
        return EpochBasedCorrelationPrefetcher(
            EBCPConfig(prefetch_degree=8, table_entries=int(label))
        )

    grid = runner.sweep(
        labels=[str(n) for n in TABLE_ENTRIES],
        prefetcher_factory=factory,
        config=config,
        policy=policy,
    )
    return assemble(grid)


def run(
    records: int = DEFAULT_RECORDS,
    seed: int = DEFAULT_SEED,
    policy: "ExecutionPolicy | None" = None,
) -> FigureResult:
    """Deprecated: the experiment is driven by specs/figure6.toml now."""
    warn_spec_deprecation("figure6", "figure6.toml")
    from .from_spec import run_experiment

    return run_experiment("figure6", records=records, seed=seed, policy=policy)
