"""Shared infrastructure for the per-figure experiment modules.

Every module in :mod:`repro.experiments` regenerates one table or figure
of the paper's evaluation (Section 5).  They share:

* the default run length (``DEFAULT_RECORDS`` trace records, ~30 % warm-up
  inside the simulator — the scaled equivalent of the paper's 150 M + 100 M
  instruction protocol),
* the evaluation processor configurations (Section 4.4 defaults, the
  idealized design-space starting point of Section 5.2, and the
  bandwidth-sensitivity variants of Section 5.2.4),
* a process-level memo so that e.g. Figures 4 and 5 — two views of the
  same sweep — simulate it once.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..analysis.reporting import format_series, format_table
from ..analysis.sweep import SweepPoint, SweepRunner
from ..core.prefetcher import EBCPConfig, EpochBasedCorrelationPrefetcher
from ..engine.config import ProcessorConfig
from ..workloads.registry import COMMERCIAL_WORKLOADS

__all__ = [
    "DEFAULT_RECORDS",
    "DEFAULT_SEED",
    "FigureResult",
    "TableResult",
    "default_config",
    "idealized_config",
    "bandwidth_config",
    "make_sweep_ebcp",
    "memoized",
    "warn_spec_deprecation",
]

#: Default trace length for experiment runs.  The paper warms for 150 M
#: instructions and measures 100 M; at our scale one trace record is a
#: handful of instructions, so 280 K records spans ~10-15 M instructions —
#: several full passes over every workload's transaction pool.
DEFAULT_RECORDS = 280_000
DEFAULT_SEED = 7


def default_config(**overrides: Any) -> ProcessorConfig:
    """The Section 4.4 default configuration (scaled, see DESIGN.md)."""
    return ProcessorConfig.scaled().replace(**overrides) if overrides else ProcessorConfig.scaled()


def idealized_config(**overrides: Any) -> ProcessorConfig:
    """Section 5.2's idealized starting point: a 1024-entry prefetch buffer."""
    base = ProcessorConfig.scaled().replace(prefetch_buffer_entries=1024)
    return base.replace(**overrides) if overrides else base


def bandwidth_config(read_gbps: float, write_gbps: float, **overrides: Any) -> ProcessorConfig:
    """Section 5.2.4's bandwidth variants (prefetch buffer stays idealized)."""
    base = ProcessorConfig.scaled().replace(
        prefetch_buffer_entries=1024, read_bw_gbps=read_gbps, write_bw_gbps=write_gbps
    )
    return base.replace(**overrides) if overrides else base


def make_sweep_ebcp(
    degree: int,
    table_entries: int = 1024 * 1024,
    addrs_per_entry: int = 32,
) -> EpochBasedCorrelationPrefetcher:
    """An EBCP for the design-space sweeps.

    Defaults to the idealized predictor of Section 5.2: a table scaled
    from the paper's eight million entries, 32 prefetch addresses per
    entry, with only the issue degree limited.
    """
    return EpochBasedCorrelationPrefetcher(
        EBCPConfig(
            prefetch_degree=degree,
            table_entries=table_entries,
            addrs_per_entry=addrs_per_entry,
            entry_bytes=64 if addrs_per_entry <= 8 else 256,
        )
    )


# ----------------------------------------------------------------------
# Result containers
# ----------------------------------------------------------------------
@dataclass
class FigureResult:
    """A figure: one series per workload over a swept x-axis."""

    figure_id: str
    title: str
    x_label: str
    x_values: Sequence[object]
    #: workload -> metric values, one per x value.
    series: Mapping[str, Sequence[float]]
    #: workload -> SweepPoints (full results, for deeper inspection).
    points: Mapping[str, Sequence[SweepPoint]] = field(default_factory=dict)
    value_format: str = "+.1%"

    def render(self) -> str:
        return format_series(
            self.x_label,
            self.x_values,
            self.series,
            title=f"{self.figure_id}: {self.title}",
            value_format=self.value_format,
        )

    def value(self, workload: str, x: object) -> float:
        return self.series[workload][list(self.x_values).index(x)]

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe payload for machine-readable benchmark output."""
        return {
            "kind": "figure",
            "id": self.figure_id,
            "title": self.title,
            "x_label": self.x_label,
            "x_values": list(self.x_values),
            "series": {workload: list(values) for workload, values in self.series.items()},
            "value_format": self.value_format,
        }


@dataclass
class TableResult:
    """A table: named columns over per-workload rows."""

    table_id: str
    title: str
    headers: Sequence[str]
    rows: Sequence[Sequence[object]]

    def render(self) -> str:
        return format_table(self.headers, self.rows, title=f"{self.table_id}: {self.title}")

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe payload for machine-readable benchmark output."""
        return {
            "kind": "table",
            "id": self.table_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
        }


# ----------------------------------------------------------------------
# Cross-module memoisation (Figure 4 and Figure 5 share one sweep)
# ----------------------------------------------------------------------
_MEMO: dict[tuple, Any] = {}


def memoized(key: tuple, compute: Callable[[], Any]) -> Any:
    """Process-level memo for expensive sweeps shared across figures."""
    if key not in _MEMO:
        _MEMO[key] = compute()
    return _MEMO[key]


def new_runner(records: int, seed: int) -> SweepRunner:
    return SweepRunner(records=records, seed=seed, workloads=COMMERCIAL_WORKLOADS)


def warn_spec_deprecation(name: str, spec_file: str) -> None:
    """Warn that an imperative ``run()`` entry point is spec-backed now.

    The imperative entry points remain for one release cycle; the
    committed spec under ``specs/`` is the source of truth (see
    EXPERIMENTS.md for the migration table).
    """
    warnings.warn(
        f"repro.experiments.{name}.run() is deprecated; the experiment is "
        f"driven by specs/{spec_file} now. Use "
        f"repro.experiments.from_spec.run_experiment({name!r}, ...) or "
        f"`repro sweep run specs/{spec_file}`. The imperative entry point "
        f"will be removed in the release after next.",
        DeprecationWarning,
        stacklevel=3,
    )
