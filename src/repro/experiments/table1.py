"""Table 1: baseline statistics without prefetching.

Reproduces the paper's Table 1 — overall CPI, epochs per 1000
instructions and L2 instruction/load miss rates for the four commercial
workloads on the default processor with no prefetcher — and reports the
paper's published values alongside for comparison.
"""

from __future__ import annotations

from ..analysis.calibration import TABLE1_TARGETS, check_baseline
from .common import DEFAULT_RECORDS, DEFAULT_SEED, TableResult, default_config

__all__ = ["run"]


def run(records: int = DEFAULT_RECORDS, seed: int = DEFAULT_SEED) -> TableResult:
    """Simulate all four baselines and tabulate measured vs paper values."""
    config = default_config()
    headers = [
        "workload",
        "CPI",
        "CPI(paper)",
        "epochs/1k",
        "epochs/1k(paper)",
        "I-miss/1k",
        "I-miss/1k(paper)",
        "L-miss/1k",
        "L-miss/1k(paper)",
    ]
    rows = []
    for workload, targets in TABLE1_TARGETS.items():
        report = check_baseline(workload, records=records, seed=seed, config=config)
        m = report.measured
        rows.append(
            [
                workload,
                f"{m.cpi:.2f}",
                f"{targets.cpi_overall:.2f}",
                f"{m.epochs_per_kilo_inst:.2f}",
                f"{targets.epochs_per_kilo_inst:.2f}",
                f"{m.l2_inst_miss_rate:.2f}",
                f"{targets.l2_inst_miss_rate:.2f}",
                f"{m.l2_load_miss_rate:.2f}",
                f"{targets.l2_load_miss_rate:.2f}",
            ]
        )
    return TableResult(
        table_id="Table 1",
        title="Baseline processor statistics without correlation prefetching",
        headers=headers,
        rows=rows,
    )
