"""Table 1: baseline statistics without prefetching.

Reproduces the paper's Table 1 — overall CPI, epochs per 1000
instructions and L2 instruction/load miss rates for the four commercial
workloads on the default processor with no prefetcher — and reports the
paper's published values alongside for comparison.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..analysis.calibration import TABLE1_TARGETS, CalibrationReport, check_baseline
from .common import (
    DEFAULT_RECORDS,
    DEFAULT_SEED,
    TableResult,
    default_config,
    warn_spec_deprecation,
)

if TYPE_CHECKING:
    from ..resilience.policy import ExecutionPolicy

__all__ = ["run", "run_legacy", "tabulate"]


def _reports(
    records: int, seed: int, config, policy: "ExecutionPolicy | None"
) -> "list[CalibrationReport]":
    """One CalibrationReport per Table 1 workload, optionally in parallel."""
    from ..parallel import JobSpec, resolve_jobs, run_jobs

    workloads = list(TABLE1_TARGETS)
    if policy is None and resolve_jobs(None) <= 1:
        return [
            check_baseline(w, records=records, seed=seed, config=config) for w in workloads
        ]
    specs = [
        JobSpec(workload=w, records=records, seed=seed, config=config, label=w)
        for w in workloads
    ]
    results = run_jobs(specs, policy=policy)
    return [
        CalibrationReport(workload=w, measured=result, targets=TABLE1_TARGETS[w])
        for w, result in zip(workloads, results)
    ]


def tabulate(reports: "list[CalibrationReport]") -> TableResult:
    """Format calibration reports as the paper's Table 1 layout."""
    headers = [
        "workload",
        "CPI",
        "CPI(paper)",
        "epochs/1k",
        "epochs/1k(paper)",
        "I-miss/1k",
        "I-miss/1k(paper)",
        "L-miss/1k",
        "L-miss/1k(paper)",
    ]
    rows = []
    for report in reports:
        targets = report.targets
        m = report.measured
        rows.append(
            [
                report.workload,
                f"{m.cpi:.2f}",
                f"{targets.cpi_overall:.2f}",
                f"{m.epochs_per_kilo_inst:.2f}",
                f"{targets.epochs_per_kilo_inst:.2f}",
                f"{m.l2_inst_miss_rate:.2f}",
                f"{targets.l2_inst_miss_rate:.2f}",
                f"{m.l2_load_miss_rate:.2f}",
                f"{targets.l2_load_miss_rate:.2f}",
            ]
        )
    return TableResult(
        table_id="Table 1",
        title="Baseline processor statistics without correlation prefetching",
        headers=headers,
        rows=rows,
    )


def run_legacy(
    records: int = DEFAULT_RECORDS,
    seed: int = DEFAULT_SEED,
    policy: "ExecutionPolicy | None" = None,
) -> TableResult:
    """The historical imperative path; kept for equivalence testing."""
    config = default_config()
    return tabulate(_reports(records, seed, config, policy))


def run(
    records: int = DEFAULT_RECORDS,
    seed: int = DEFAULT_SEED,
    policy: "ExecutionPolicy | None" = None,
) -> TableResult:
    """Deprecated: the experiment is driven by specs/table1.toml now."""
    warn_spec_deprecation("table1", "table1.toml")
    from .from_spec import run_experiment

    return run_experiment("table1", records=records, seed=seed, policy=policy)
