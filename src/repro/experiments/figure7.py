"""Figure 7: effect of prefetch-buffer size.

The paper sweeps the number of prefetch-buffer entries (4-way
set-associative) and finds 64 entries — 512 B of on-chip storage —
adequate.  Together with degree 8 and the million-entry main-memory
table, this completes the tuned configuration whose improvements the
paper headlines (+23 % database, +13 % TPC-W, +31 % SPECjbb2005,
+26 % SPECjAppServer2004).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.prefetcher import EBCPConfig, EpochBasedCorrelationPrefetcher
from .common import (
    DEFAULT_RECORDS,
    DEFAULT_SEED,
    FigureResult,
    default_config,
    new_runner,
    warn_spec_deprecation,
)

if TYPE_CHECKING:
    from ..resilience.policy import ExecutionPolicy

__all__ = ["BUFFER_ENTRIES", "assemble", "run", "run_legacy"]

BUFFER_ENTRIES: tuple[int, ...] = (16, 32, 64, 128, 256, 1024)


def assemble(grid) -> FigureResult:
    """Build the Figure 7 result from a buffer-entries sweep grid."""
    series = {w: [p.improvement for p in points] for w, points in grid.items()}
    return FigureResult(
        figure_id="Figure 7",
        title="Effect of limiting number of prefetch buffer entries on overall "
        "performance improvement",
        x_label="pb_entries",
        x_values=BUFFER_ENTRIES,
        series=series,
        points=grid,
    )


def run_legacy(
    records: int = DEFAULT_RECORDS,
    seed: int = DEFAULT_SEED,
    policy: "ExecutionPolicy | None" = None,
) -> FigureResult:
    """The historical imperative path; kept for equivalence testing."""
    runner = new_runner(records, seed)

    def factory(label: str) -> EpochBasedCorrelationPrefetcher:
        return EpochBasedCorrelationPrefetcher(EBCPConfig(prefetch_degree=8))

    grid = runner.sweep(
        labels=[str(n) for n in BUFFER_ENTRIES],
        prefetcher_factory=factory,
        config_factory=lambda label: default_config(prefetch_buffer_entries=int(label)),
        policy=policy,
    )
    return assemble(grid)


def run(
    records: int = DEFAULT_RECORDS,
    seed: int = DEFAULT_SEED,
    policy: "ExecutionPolicy | None" = None,
) -> FigureResult:
    """Deprecated: the experiment is driven by specs/figure7.toml now."""
    warn_spec_deprecation("figure7", "figure7.toml")
    from .from_spec import run_experiment

    return run_experiment("figure7", records=records, seed=seed, policy=policy)
