"""Figure 5: secondary metrics of the prefetch-degree sweep.

The same sweep as Figure 4, viewed through the paper's secondary metrics:
reduction in epochs per instruction, remaining L2 instruction/load miss
rates, prefetch coverage and prefetch accuracy.  The paper's headline
observations, which the tests assert on this module's output:

* EPI reduction tracks coverage (the prefetcher removes whole epochs
  with the misses it eliminates);
* coverage rises with degree while accuracy falls;
* load misses dominate for the database and SPECjbb2005, while
  instruction misses are a significant fraction for TPC-W and
  SPECjAppServer2004.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

from ..memory.request import AccessKind
from .common import DEFAULT_RECORDS, DEFAULT_SEED, FigureResult, warn_spec_deprecation
from .figure4 import DEGREES, sweep_points

if TYPE_CHECKING:
    from ..resilience.policy import ExecutionPolicy

__all__ = ["Figure5Result", "assemble", "run", "run_legacy"]


@dataclass
class Figure5Result:
    """Four linked panels over the shared degree sweep."""

    epi_reduction: FigureResult
    inst_miss_rate: FigureResult
    load_miss_rate: FigureResult
    coverage: FigureResult
    accuracy: FigureResult

    def panels(self) -> Sequence[FigureResult]:
        return (
            self.epi_reduction,
            self.inst_miss_rate,
            self.load_miss_rate,
            self.coverage,
            self.accuracy,
        )

    def render(self) -> str:
        return "\n\n".join(panel.render() for panel in self.panels())

    def to_dict(self) -> dict:
        return {
            "kind": "figure_panels",
            "id": "Figure 5",
            "panels": {panel.figure_id: panel.to_dict() for panel in self.panels()},
        }


def _panel(
    grid: Mapping[str, Sequence],
    figure_id: str,
    title: str,
    metric,
    value_format: str = "+.1%",
) -> FigureResult:
    series = {w: [metric(p) for p in points] for w, points in grid.items()}
    return FigureResult(
        figure_id=figure_id,
        title=title,
        x_label="degree",
        x_values=DEGREES,
        series=series,
        points=grid,
        value_format=value_format,
    )


def assemble(grid) -> Figure5Result:
    """Build the five Figure 5 panels from a degree-sweep grid."""
    return Figure5Result(
        epi_reduction=_panel(
            grid, "Figure 5a", "Reduction in epochs per instruction", lambda p: p.epi_reduction
        ),
        inst_miss_rate=_panel(
            grid,
            "Figure 5b",
            "Remaining L2 instruction misses per 1000 instructions",
            lambda p: p.result.stats.per_kilo_inst(
                p.result.stats.offchip_misses[AccessKind.IFETCH]
            ),
            value_format=".2f",
        ),
        load_miss_rate=_panel(
            grid,
            "Figure 5c",
            "Remaining L2 load misses per 1000 instructions",
            lambda p: p.result.stats.per_kilo_inst(
                p.result.stats.offchip_misses[AccessKind.LOAD]
            ),
            value_format=".2f",
        ),
        coverage=_panel(
            grid, "Figure 5d", "Prefetch coverage", lambda p: p.result.coverage, ".1%"
        ),
        accuracy=_panel(
            grid, "Figure 5e", "Prefetch accuracy", lambda p: p.result.accuracy, ".1%"
        ),
    )


def run_legacy(
    records: int = DEFAULT_RECORDS,
    seed: int = DEFAULT_SEED,
    policy: "ExecutionPolicy | None" = None,
) -> Figure5Result:
    """The historical imperative path; kept for equivalence testing."""
    return assemble(sweep_points(records, seed, policy=policy))


def run(
    records: int = DEFAULT_RECORDS,
    seed: int = DEFAULT_SEED,
    policy: "ExecutionPolicy | None" = None,
) -> Figure5Result:
    """Deprecated: the experiment is driven by specs/figure4.toml now."""
    warn_spec_deprecation("figure5", "figure4.toml")
    from .from_spec import run_experiment

    return run_experiment("figure5", records=records, seed=seed, policy=policy)
