"""Extension E1: EBCP on a chip multiprocessor (paper Section 6).

Not a figure from the paper — its named future work, built to quantify
the Section 3.3.1 placement argument: on a CMP, the request stream
reaching memory is an interleaving of the threads' streams, which "do
not exhibit sufficient correlation to enable effective prefetching",
while EBCP's in-front-of-the-crossbar control can track each thread's
stream separately.

For each workload and thread count, four schemes run on the interleaved
trace:

* ``ebcp_cmp``         — per-thread EMABs + shared main-memory table;
* ``ebcp_interleaved`` — identical logic, thread-blind (one EMAB over
                         the union stream);
* ``solihin_6_1``      — the memory-side baseline (inherently
                         thread-blind);
* ``ghb_large``        — on-chip PC/DC: PC indexing gives it *implicit*
                         per-thread separation (thread PCs are disjoint),
                         an interesting middle point.

Expected shape: per-thread tracking retains most of the single-thread
gain as threads are added; the thread-blind variants decay toward zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

from ..core.cmp import CMPEBCPConfig, InterleavedStreamEBCP, PerThreadEpochPrefetcher
from ..core.prefetcher import EBCPConfig
from ..engine.config import ProcessorConfig
from ..engine.simulator import EpochSimulator
from ..prefetchers.base import Prefetcher
from ..prefetchers.ghb import make_ghb_large
from ..prefetchers.solihin import make_solihin_6_1
from ..workloads.multithread import make_cmp_workload
from .common import DEFAULT_SEED, FigureResult, warn_spec_deprecation

if TYPE_CHECKING:
    from ..resilience.policy import ExecutionPolicy

__all__ = [
    "SCHEMES",
    "THREAD_COUNTS",
    "ExtensionCMPResult",
    "assemble",
    "run",
    "run_legacy",
]

SCHEMES: tuple[str, ...] = ("ebcp_cmp", "ebcp_interleaved", "solihin_6_1", "ghb_large")
THREAD_COUNTS: tuple[int, ...] = (1, 2, 4)


def _build(scheme: str) -> Prefetcher:
    if scheme == "ebcp_cmp":
        return PerThreadEpochPrefetcher(CMPEBCPConfig(EBCPConfig(prefetch_degree=8)))
    if scheme == "ebcp_interleaved":
        return InterleavedStreamEBCP(CMPEBCPConfig(EBCPConfig(prefetch_degree=8)))
    if scheme == "solihin_6_1":
        return make_solihin_6_1(degree=8)
    if scheme == "ghb_large":
        return make_ghb_large(degree=8)
    raise KeyError(scheme)


@dataclass
class ExtensionCMPResult:
    """One improvement-vs-thread-count panel per workload."""

    panels: Mapping[str, FigureResult]  # keyed by workload

    def render(self) -> str:
        return "\n\n".join(panel.render() for panel in self.panels.values())

    def improvement(self, workload: str, scheme: str, n_threads: int) -> float:
        panel = self.panels[workload]
        return panel.series[scheme][list(panel.x_values).index(n_threads)]

    def to_dict(self) -> dict:
        return {
            "kind": "figure_panels",
            "id": "Extension E1",
            "panels": {key: panel.to_dict() for key, panel in self.panels.items()},
        }


def run_legacy(
    records: int = 140_000,
    seed: int = DEFAULT_SEED,
    workloads: Sequence[str] = ("database", "specjbb2005"),
    thread_counts: Sequence[int] = THREAD_COUNTS,
    policy: "ExecutionPolicy | None" = None,
) -> ExtensionCMPResult:
    """Run the CMP interleaving experiment (historical imperative path).

    ``records`` is the *total* interleaved trace length per point, so the
    comparison across thread counts holds work constant.
    """
    from ..parallel import JobSpec, resolve_jobs, run_jobs

    config = ProcessorConfig.scaled()

    if policy is not None or resolve_jobs(None) > 1:
        # Fan every (workload, threads, scheme-or-baseline) point out as a
        # job; workers rebuild the interleaved trace from its parameters.
        points = [(w, n) for w in workloads for n in thread_counts]
        specs = []
        for w, n in points:
            per_thread = max(20_000, records // n)
            for scheme in (None, *SCHEMES):
                specs.append(
                    JobSpec(
                        workload=w,
                        records=per_thread,
                        seed=seed,
                        config=config,
                        prefetcher=None if scheme is None else _build(scheme),
                        label=scheme or "baseline",
                        n_threads=n,
                    )
                )
        results = run_jobs(specs, policy=policy)
        panels = {}
        stride = 1 + len(SCHEMES)
        for w in workloads:
            series = {scheme: [] for scheme in SCHEMES}
            for n in thread_counts:
                base = stride * points.index((w, n))
                baseline = results[base]
                for offset, scheme in enumerate(SCHEMES, start=1):
                    series[scheme].append(
                        results[base + offset].improvement_over(baseline)
                    )
            panels[w] = _panel(w, series, thread_counts)
        return ExtensionCMPResult(panels=panels)

    panels: dict[str, FigureResult] = {}
    for workload in workloads:
        series: dict[str, list[float]] = {scheme: [] for scheme in SCHEMES}
        for n_threads in thread_counts:
            trace = make_cmp_workload(
                workload,
                n_threads=n_threads,
                records_per_thread=max(20_000, records // n_threads),
                seed=seed,
            )
            timing = {"cpi_perf": trace.meta.cpi_perf, "overlap": trace.meta.overlap}
            baseline = EpochSimulator(config, None, **timing).run(trace)
            for scheme in SCHEMES:
                result = EpochSimulator(config, _build(scheme), **timing).run(trace)
                series[scheme].append(result.improvement_over(baseline))
        panels[workload] = _panel(workload, series, thread_counts)
    return ExtensionCMPResult(panels=panels)


def _panel(
    workload: str, series: "dict[str, list[float]]", thread_counts: Sequence[int]
) -> FigureResult:
    return FigureResult(
        figure_id=f"Extension E1 ({workload})",
        title="CMP interleaving: per-thread vs thread-blind prefetching",
        x_label="threads",
        x_values=tuple(thread_counts),
        series=series,
    )


def assemble(
    series_by_workload: "Mapping[str, dict[str, list[float]]]",
    thread_counts: Sequence[int],
) -> ExtensionCMPResult:
    """Build the E1 panels from per-workload improvement series."""
    return ExtensionCMPResult(
        panels={
            workload: _panel(workload, series, thread_counts)
            for workload, series in series_by_workload.items()
        }
    )


def run(
    records: int = 140_000,
    seed: int = DEFAULT_SEED,
    workloads: Sequence[str] = ("database", "specjbb2005"),
    thread_counts: Sequence[int] = THREAD_COUNTS,
    policy: "ExecutionPolicy | None" = None,
) -> ExtensionCMPResult:
    """Deprecated: the experiment is driven by specs/extension_cmp.toml now."""
    warn_spec_deprecation("extension_cmp", "extension_cmp.toml")
    from .from_spec import run_experiment

    return run_experiment(
        "extension_cmp",
        records=records,
        seed=seed,
        policy=policy,
        workloads=workloads,
        thread_counts=thread_counts,
    )
