"""One module per table/figure of the paper's evaluation (Section 5).

Each module exposes ``run(records=..., seed=...)`` returning a rich
result object with a ``render()`` method that prints the same rows or
series the paper reports.  The benches under ``benchmarks/`` are thin
wrappers over these.
"""

from . import extension_cmp, figure4, figure5, figure6, figure7, figure8, figure9, table1
from .common import DEFAULT_RECORDS, DEFAULT_SEED, FigureResult, TableResult

__all__ = [
    "DEFAULT_RECORDS",
    "DEFAULT_SEED",
    "FigureResult",
    "TableResult",
    "extension_cmp",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "table1",
]

#: Registry used by the CLI: experiment id -> module.
EXPERIMENTS = {
    "table1": table1,
    "extension_cmp": extension_cmp,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
}
