"""Synthetic models of the paper's four commercial workloads.

The paper evaluates on proprietary SPARC full-system traces of a
large-scale database (OLTP), TPC-W, SPECjbb2005 and SPECjAppServer2004.
We cannot have those traces, so each workload is modelled as a pool of
recurring :class:`~repro.workloads.templates.TransactionTemplate` types
whose statistical knobs are calibrated against everything the paper
publishes about the workloads (Table 1 plus the prose characterisation):

* L2 instruction and load miss rates per kilo-instruction,
* epochs per kilo-instruction (i.e. the miss *clustering* and the
  serial/parallel dependence mix),
* per-workload CPI with a perfect L2 (``cpi_perf``, derived by inverting
  the epoch CPI equation against Table 1's overall CPI),
* qualitative traits: the database is load-miss dominated with pointer
  chases into index structures and spatially-clustered row accesses;
  TPC-W and SPECjAppServer2004 have large instruction footprints;
  SPECjbb2005 is data dominated with a tiny instruction footprint; TPC-W
  data accesses are the least predictable (the paper's EBCP gains the
  least there).

All footprints are expressed at the scaled configuration (256 KB L2);
pass ``scale=8`` together with ``ProcessorConfig.paper()`` for full-size
runs.  Traces are deterministic in ``(name, seed, scale, records)``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from .patterns import Region, RegionAllocator, spatial_page_lines
from .templates import EPOCH_SPLIT_GAP, Op, TransactionTemplate
from .trace import Trace, TraceBuilder, TraceMeta

__all__ = ["WorkloadProfile", "PROFILES", "build_commercial_trace"]


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical knobs describing one commercial workload."""

    name: str
    description: str
    # Epoch-model timing parameters (derived from Table 1).
    cpi_perf: float
    overlap: float
    # Transaction structure.
    n_templates: int
    insts_per_txn: int
    code_lines: float  # mean off-chip instruction-miss lines per txn
    chase_chains: float  # dependent-load chains per txn
    chase_depth: float  # hops per chain
    bursts: float  # overlapping load groups per txn
    burst_size: float  # loads per group
    burst_tail_prob: float  # probability a group is a large cluster
    burst_tail_size: int  # loads in a large cluster
    cold_misses: float  # unpredictable misses per txn
    scans: float  # short sequential scans per txn
    scan_len: int
    hot_accesses: int  # L2-resident loads per txn
    stores: int
    # Predictability knobs.
    variant_prob: float  # alternate-path probability per op
    follow_prob: float  # P(next txn type follows the canonical order)
    spatial_burst_prob: float  # bursts clustered within a 2 KB page
    # Footprints (lines at scale=1, i.e. against a 256 KB L2).
    code_footprint_lines: int
    data_footprint_lines: int
    hot_lines: int = 1024
    cold_lines: int = 1 << 20


def _derive_cpi_perf(cpi_overall: float, epi_per_kinst: float, penalty: int = 500,
                     overlap: float = 0.10) -> float:
    """Invert the epoch CPI equation against Table 1 (documentation aid)."""
    return (cpi_overall - epi_per_kinst / 1000.0 * penalty) / (1.0 - overlap)


# Profiles calibrated against Table 1:
#   database: CPI 3.27, EPI 4.07/kinst, I-miss 1.00, L-miss 6.23
#   tpcw:     CPI 2.00, EPI 1.59/kinst, I-miss 0.71, L-miss 1.27
#   specjbb:  CPI 2.06, EPI 2.65/kinst, I-miss 0.12, L-miss 4.30
#   jappserver: CPI 2.78, EPI 3.25/kinst, I-miss 1.57, L-miss 2.64
PROFILES: dict[str, WorkloadProfile] = {
    "database": WorkloadProfile(
        name="database",
        description="Large-scale OLTP: pointer chases into indices, "
        "spatially clustered row reads, load-miss dominated.",
        cpi_perf=_derive_cpi_perf(3.27, 4.07),
        overlap=0.10,
        n_templates=700,
        insts_per_txn=3000,
        code_lines=4.5,
        chase_chains=1.2,
        chase_depth=4.0,
        bursts=2.2,
        burst_size=3.0,
        burst_tail_prob=0.20,
        burst_tail_size=14,
        cold_misses=2.4,
        scans=0.3,
        scan_len=4,
        hot_accesses=40,
        stores=3,
        variant_prob=0.34,
        follow_prob=0.75,
        spatial_burst_prob=0.45,
        code_footprint_lines=4096,
        data_footprint_lines=12288,
    ),
    "tpcw": WorkloadProfile(
        name="tpcw",
        description="Transactional web serving: instruction-miss heavy, "
        "least-predictable data accesses.",
        cpi_perf=_derive_cpi_perf(2.00, 1.59),
        overlap=0.10,
        n_templates=850,
        insts_per_txn=12000,
        code_lines=11.0,
        chase_chains=2.2,
        chase_depth=2.0,
        bursts=1.8,
        burst_size=2.0,
        burst_tail_prob=0.12,
        burst_tail_size=10,
        cold_misses=3.4,
        scans=0.5,
        scan_len=4,
        hot_accesses=40,
        stores=6,
        variant_prob=0.48,
        follow_prob=0.60,
        spatial_burst_prob=0.25,
        code_footprint_lines=8192,
        data_footprint_lines=8192,
    ),
    "specjbb2005": WorkloadProfile(
        name="specjbb2005",
        description="Server-side Java business logic: tiny instruction "
        "footprint, object-graph chases and array scans.",
        cpi_perf=_derive_cpi_perf(2.06, 2.65),
        overlap=0.10,
        n_templates=620,
        insts_per_txn=6000,
        code_lines=1.6,
        chase_chains=2.7,
        chase_depth=3.0,
        bursts=2.4,
        burst_size=3.2,
        burst_tail_prob=0.22,
        burst_tail_size=14,
        cold_misses=1.8,
        scans=0.8,
        scan_len=5,
        hot_accesses=40,
        stores=8,
        variant_prob=0.22,
        follow_prob=0.88,
        spatial_burst_prob=0.45,
        code_footprint_lines=2048,
        data_footprint_lines=14336,
    ),
    "jappserver2004": WorkloadProfile(
        name="jappserver2004",
        description="J2EE application serving: large code footprint and "
        "a balanced instruction/data miss mix.",
        cpi_perf=_derive_cpi_perf(2.78, 3.25),
        overlap=0.10,
        n_templates=750,
        insts_per_txn=6000,
        code_lines=12.0,
        chase_chains=1.7,
        chase_depth=2.5,
        bursts=1.9,
        burst_size=2.6,
        burst_tail_prob=0.16,
        burst_tail_size=12,
        cold_misses=2.6,
        scans=0.4,
        scan_len=4,
        hot_accesses=40,
        stores=5,
        variant_prob=0.42,
        follow_prob=0.70,
        spatial_burst_prob=0.30,
        code_footprint_lines=8192,
        data_footprint_lines=9216,
    ),
}


# ----------------------------------------------------------------------
# Template construction
# ----------------------------------------------------------------------
def _poisson_at_least(rng: np.random.Generator, mean: float, minimum: int = 0) -> int:
    return max(minimum, int(rng.poisson(mean)))


def _build_template(
    profile: WorkloadProfile,
    template_id: int,
    rng: np.random.Generator,
    code: Region,
    data: Region,
    hot: Region,
) -> TransactionTemplate:
    ops: list[Op] = []
    pc_base = 0x0800_0000 + template_id * 0x2000

    def next_pc() -> int:
        return pc_base + len(ops) * 16

    # --- transaction entry: instruction-miss walk ---------------------
    n_code = _poisson_at_least(rng, profile.code_lines)
    if n_code:
        start = int(rng.integers(0, max(1, code.lines - n_code)))
        ops.append(
            Op(
                kind="code",
                pc=next_pc(),
                addrs=tuple(code.sequential_lines(start, n_code)),
                lead_gap=EPOCH_SPLIT_GAP,
                step_gap=40,
            )
        )

    # --- data groups ---------------------------------------------------
    groups: list[Op] = []
    for _ in range(_poisson_at_least(rng, profile.chase_chains)):
        depth = _poisson_at_least(rng, profile.chase_depth, minimum=2)
        addrs = tuple(data.sample_lines(rng, depth))
        variants: list[tuple[int, ...]] = []
        if rng.random() < 0.5:
            # Alternate paths share the entry address (the chain head) so
            # the epoch's trigger — the correlation key — stays stable;
            # only the continuation differs (prefetch-width demand).
            variants.append(addrs[:1] + tuple(data.sample_lines(rng, depth - 1)))
        groups.append(
            Op(kind="chase", pc=next_pc(), addrs=addrs, variants=tuple(variants))
        )
    for _ in range(_poisson_at_least(rng, profile.bursts)):
        is_tail = rng.random() < profile.burst_tail_prob
        if is_tail:
            size = max(2, int(rng.normal(profile.burst_tail_size, 2)))
        else:
            size = _poisson_at_least(rng, profile.burst_size, minimum=1)
        # Large clusters model whole-page work (e.g. a DB page's rows and
        # headers) and are predominantly spatial.  The page is visited
        # several times over the transaction — the later visits are what
        # a spatial-pattern prefetcher (SMS) can cover timely.
        spatial_prob = min(0.95, profile.spatial_burst_prob + (0.45 if is_tail else 0.0))
        if rng.random() < spatial_prob:
            addrs = tuple(spatial_page_lines(data, rng, size))
            if is_tail and size >= 6:
                n_visits = 3 if size >= 10 else 2
                chunk = -(-len(addrs) // n_visits)
                for v in range(n_visits):
                    visit = addrs[v * chunk : (v + 1) * chunk]
                    if visit:
                        groups.append(Op(kind="burst", pc=next_pc(), addrs=visit))
                continue
        else:
            addrs = tuple(data.sample_lines(rng, size))
        variants = []
        if rng.random() < 0.5 and len(addrs) > 1:
            variants.append(addrs[:1] + tuple(data.sample_lines(rng, len(addrs) - 1)))
        groups.append(
            Op(kind="burst", pc=next_pc(), addrs=addrs, variants=tuple(variants))
        )
    for _ in range(_poisson_at_least(rng, profile.scans)):
        start = int(rng.integers(0, max(1, data.lines - profile.scan_len)))
        groups.append(
            Op(
                kind="scan",
                pc=next_pc(),
                addrs=tuple(data.sequential_lines(start, profile.scan_len)),
                step_gap=35,
            )
        )
    n_cold = _poisson_at_least(rng, profile.cold_misses)
    if n_cold:
        groups.append(Op(kind="cold", pc=next_pc(), n=n_cold, lead_gap=EPOCH_SPLIT_GAP))
    rng.shuffle(groups)  # type: ignore[arg-type]

    # Interleave hot (L2-resident) work between the miss groups.
    hot_per_slot = max(1, profile.hot_accesses // max(1, len(groups)))
    for group in groups:
        ops.append(group)
        ops.append(
            Op(
                kind="hot",
                pc=next_pc(),
                addrs=tuple(hot.sample_lines(rng, hot_per_slot, distinct=False)),
                step_gap=10,
            )
        )

    if profile.stores:
        ops.append(
            Op(
                kind="store",
                pc=next_pc(),
                addrs=tuple(data.sample_lines(rng, profile.stores, distinct=False)),
                step_gap=25,
            )
        )

    template = TransactionTemplate(template_id=template_id, ops=ops,
                                   name=f"{profile.name}-t{template_id}")
    # Distribute the transaction's spare computation across the gaps that
    # separate miss groups (rather than lumping it at the end): real
    # transactions interleave computation with their memory operations.
    spare = profile.insts_per_txn - template.instruction_cost()
    # Cold ops pay their lead gap once per access, so widening them would
    # inflate the instruction budget n-fold; leave them at the base gap.
    group_ops = [op for op in ops if op.kind in ("code", "chase", "burst", "scan")]
    if spare > 0 and group_ops:
        per_group = min(2500, spare // len(group_ops))
        for op in group_ops:
            op.lead_gap += per_group
    template.tail_pad = max(0, profile.insts_per_txn - template.instruction_cost())
    return template


# ----------------------------------------------------------------------
# Trace emission
# ----------------------------------------------------------------------
def build_commercial_trace(
    name: str,
    records: int = 280_000,
    seed: int = 7,
    scale: float = 1.0,
) -> Trace:
    """Generate a deterministic trace for one of the four workloads.

    ``scale`` multiplies all footprints (templates, code/data regions);
    use 1.0 against :meth:`ProcessorConfig.scaled` and 8.0 against the
    full-size paper configuration.
    """
    if name not in PROFILES:
        raise KeyError(f"unknown workload '{name}'; choose from {sorted(PROFILES)}")
    profile = PROFILES[name]
    # Per-workload stream decorrelation must be stable across processes:
    # builtin str hashing is randomised per interpreter (PYTHONHASHSEED),
    # which made "deterministic" traces differ from run to run.
    name_salt = zlib.crc32(name.encode("utf-8")) % 65536
    rng = np.random.default_rng(seed * 1_000_003 + name_salt)

    alloc = RegionAllocator(base=0x4000_0000)
    code = alloc.allocate("code", max(64, int(profile.code_footprint_lines * scale)))
    # The data region is deliberately SPARSE: templates sample their
    # fixed lines from an address range ~2000x larger than the resident
    # footprint, like objects scattered across a real heap.  The distinct
    # lines actually drawn (and hence the L2 pressure) are set by the
    # per-template draws, while cache *tags* stay diverse — the property
    # tag-correlating prefetchers depend on.
    data = alloc.allocate("data", max(256, int(profile.data_footprint_lines * scale)) * 2048)
    hot = alloc.allocate("hot", profile.hot_lines)
    cold = alloc.allocate("cold", profile.cold_lines)

    n_templates = max(8, int(profile.n_templates * scale))
    templates = [
        _build_template(profile, t, rng, code, data, hot) for t in range(n_templates)
    ]

    meta = TraceMeta(
        name=profile.name,
        seed=seed,
        description=profile.description,
        cpi_perf=profile.cpi_perf,
        overlap=profile.overlap,
        scale=scale,
        extra={"n_templates": n_templates, "insts_per_txn": profile.insts_per_txn},
    )
    builder = TraceBuilder(meta)

    current = int(rng.integers(0, n_templates))
    while len(builder) < records:
        templates[current].emit(builder, rng, profile.variant_prob, cold)
        if rng.random() < profile.follow_prob:
            current = (current + 1) % n_templates
        else:
            current = int(rng.integers(0, n_templates))

    trace = builder.build()
    if len(trace) > records:
        trace = trace.slice(0, records)
    return trace
