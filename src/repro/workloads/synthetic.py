"""Synthetic microbenchmarks.

Small, fully-controlled traces used by the test suite, the examples and
the ablation benches.  Each generator isolates one access behaviour so a
prefetcher's response to it can be verified in isolation:

* :func:`repeating_miss_loop` — a fixed miss sequence replayed forever;
  the best case for any correlation prefetcher.
* :func:`pointer_chase` — one long dependent chain over a large ring;
  every miss is its own epoch (serial MLP = 1).
* :func:`streaming` — unit-stride walks; the stream prefetcher's home
  turf and a correlation prefetcher's capacity burner.
* :func:`random_uniform` — uniformly random lines from a huge region;
  unpredictable by construction (accuracy floor / noise robustness).
* :func:`paper_example_trace` — the exact miss sequence A..I from the
  paper's Section 3.1/3.2 worked example, with the epoch grouping
  (A,B | C,D,E | F,G | H,I) encoded via gaps, replayed a configurable
  number of iterations.
"""

from __future__ import annotations

import numpy as np

from ..memory.request import AccessKind
from .templates import EPOCH_SPLIT_GAP, OVERLAP_GAP
from .trace import Trace, TraceBuilder, TraceMeta

__all__ = [
    "repeating_miss_loop",
    "pointer_chase",
    "streaming",
    "random_uniform",
    "paper_example_trace",
    "PAPER_EXAMPLE_EPOCHS",
]


def repeating_miss_loop(
    unique_lines: int = 12_288,
    records: int = 120_000,
    misses_per_epoch: int = 2,
    seed: int = 1,
    pad: int = EPOCH_SPLIT_GAP,
) -> Trace:
    """A fixed sequence of ``unique_lines`` loads replayed cyclically.

    Lines are grouped into epochs of ``misses_per_epoch`` overlapping
    loads.  With ``unique_lines`` well above the L2 capacity every access
    misses, and the sequence recurs exactly — a correlation prefetcher
    should approach full coverage once trained.
    """
    rng = np.random.default_rng(seed)
    base = 0x8000_0000
    order = rng.permutation(unique_lines)
    builder = TraceBuilder(TraceMeta(name="repeating_miss_loop", seed=seed))
    pc = 0x1000
    i = 0
    while len(builder) < records:
        line = int(order[i % unique_lines])
        gap = pad if (i % misses_per_epoch) == 0 else OVERLAP_GAP
        builder.load(pc, base + line * 64, gap=gap)
        i += 1
    return builder.build()


def pointer_chase(
    unique_lines: int = 16_384,
    records: int = 100_000,
    seed: int = 2,
) -> Trace:
    """One long dependent chain over a shuffled ring of lines."""
    rng = np.random.default_rng(seed)
    base = 0xA000_0000
    ring = rng.permutation(unique_lines)
    builder = TraceBuilder(TraceMeta(name="pointer_chase", seed=seed))
    pc = 0x2000
    i = 0
    while len(builder) < records:
        line = int(ring[i % unique_lines])
        builder.load(pc, base + line * 64, gap=60, serial=True)
        i += 1
    return builder.build()


def streaming(
    streams: int = 4,
    lines_per_stream: int = 8192,
    records: int = 100_000,
    seed: int = 3,
) -> Trace:
    """Interleaved unit-stride walks over large arrays."""
    base = 0xC000_0000
    stride_bytes = 64
    builder = TraceBuilder(TraceMeta(name="streaming", seed=seed))
    # Record i touches stream i % streams at that stream's (i // streams)-th
    # position (mod the stream length) — a closed form of the interleaved
    # round-robin walk, bulk-appended instead of looped per record.
    i = np.arange(records, dtype=np.int64)
    s = i % streams
    position = (i // streams) % lines_per_stream
    addr = base + s * (lines_per_stream * stride_bytes * 4) + position * stride_bytes
    builder.extend_loads(0x3000 + s * 16, addr, gap=50)
    return builder.build()


def random_uniform(
    region_lines: int = 1 << 20,
    records: int = 60_000,
    seed: int = 4,
) -> Trace:
    """Uniformly random isolated loads — unpredictable by construction."""
    rng = np.random.default_rng(seed)
    base = 0xE000_0000
    lines = rng.integers(0, region_lines, size=records)
    builder = TraceBuilder(TraceMeta(name="random_uniform", seed=seed))
    builder.extend_loads(0x4000, base + lines * 64, gap=EPOCH_SPLIT_GAP)
    return builder.build()


#: The paper's Section 3.1 example: miss epochs (A,B)(C,D,E)(F,G)(H,I).
PAPER_EXAMPLE_EPOCHS: tuple[tuple[str, ...], ...] = (
    ("A", "B"),
    ("C", "D", "E"),
    ("F", "G"),
    ("H", "I"),
)


def paper_example_trace(
    iterations: int = 3,
    eviction_lines: int = 8192,
    background_lines: int = 0,
    background_every: int = 2,
    seed: int = 5,
) -> Trace:
    """The worked example of paper Sections 3.1-3.3 as a trace.

    Each iteration replays misses A..I grouped into the paper's four
    epochs, followed by an eviction phase (a long walk over disjoint
    lines) so A..I are out of the L2 again when the sequence recurs —
    "this sequence is assumed to recur after a sufficiently long period
    of time so that all their associated cache lines have been evicted".

    The eviction walk uses isolated single-miss epochs with
    never-recurring addresses, which keeps the EMAB and all correlation
    state free of cross-iteration contamination.

    ``background_lines`` > 0 interleaves the eviction phase with accesses
    to a *recurring* pool of that many lines (fixed shuffled order).  A
    correlation prefetcher learns and prefetches this background stream,
    which keeps the small prefetch buffer churning between iterations —
    as any real workload would.  Without it, untimely prefetches from one
    iteration sit undisturbed in the buffer for the ~10^5 cycles until
    the next iteration and artificially serve it, a situation the paper's
    isolated example implicitly excludes.
    """
    base = 0x5000_0000
    letter_addr = {
        letter: base + i * 64
        for i, letter in enumerate(letter for ep in PAPER_EXAMPLE_EPOCHS for letter in ep)
    }
    evict_base = 0x6000_0000
    bg_base = 0x7000_0000
    builder = TraceBuilder(
        TraceMeta(name="paper_example", seed=seed, extra={"letters": letter_addr})
    )
    pc = 0x5000
    evict_cursor = 0
    bg_cursor = 0
    rng = np.random.default_rng(seed)
    bg_order = rng.permutation(background_lines) if background_lines else None
    for _ in range(iterations):
        for epoch in PAPER_EXAMPLE_EPOCHS:
            gap = EPOCH_SPLIT_GAP
            for letter in epoch:
                builder.load(pc, letter_addr[letter], gap=gap)
                gap = OVERLAP_GAP
        for k in range(eviction_lines):
            builder.load(pc + 16, evict_base + evict_cursor * 64, gap=EPOCH_SPLIT_GAP)
            evict_cursor += 1
            if bg_order is not None and k % background_every == background_every - 1:
                line = int(bg_order[bg_cursor % background_lines])
                builder.load(pc + 32, bg_base + line * 64, gap=EPOCH_SPLIT_GAP)
                bg_cursor += 1
    return builder.build()
