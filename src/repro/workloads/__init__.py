"""Synthetic workload generation: traces, templates, commercial models."""

from .commercial import PROFILES, WorkloadProfile, build_commercial_trace
from .multithread import interleave_traces, make_cmp_workload
from .patterns import Region, RegionAllocator, spatial_page_lines
from .registry import COMMERCIAL_WORKLOADS, WORKLOADS, make_workload
from .synthetic import (
    PAPER_EXAMPLE_EPOCHS,
    paper_example_trace,
    pointer_chase,
    random_uniform,
    repeating_miss_loop,
    streaming,
)
from .templates import Op, TransactionTemplate
from .trace import Trace, TraceBuilder, TraceMeta

__all__ = [
    "COMMERCIAL_WORKLOADS",
    "Op",
    "PAPER_EXAMPLE_EPOCHS",
    "PROFILES",
    "Region",
    "RegionAllocator",
    "Trace",
    "TraceBuilder",
    "TraceMeta",
    "TransactionTemplate",
    "WORKLOADS",
    "WorkloadProfile",
    "build_commercial_trace",
    "interleave_traces",
    "make_cmp_workload",
    "make_workload",
    "paper_example_trace",
    "pointer_chase",
    "random_uniform",
    "repeating_miss_loop",
    "spatial_page_lines",
    "streaming",
]
