"""Address-space regions and access-pattern building blocks.

The synthetic workloads carve a flat physical address space into named
regions (code, index, heap, hot, cold, ...) and compose access patterns
over them.  Regions deal in *lines* (64 B by default); helpers return
byte addresses ready for trace records.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Region", "RegionAllocator", "spatial_page_lines"]

LINE_SIZE = 64
PAGE_SIZE = 2048  # the spatial-locality unit used by SMS (2 KB regions)


@dataclass(frozen=True)
class Region:
    """A contiguous range of the synthetic physical address space."""

    name: str
    base: int
    lines: int
    line_size: int = LINE_SIZE

    def __post_init__(self) -> None:
        if self.lines <= 0:
            raise ValueError(f"region '{self.name}' needs at least one line")
        if self.base % self.line_size:
            raise ValueError(f"region '{self.name}' base must be line-aligned")

    @property
    def size_bytes(self) -> int:
        return self.lines * self.line_size

    @property
    def end(self) -> int:
        return self.base + self.size_bytes

    def line_addr(self, index: int) -> int:
        """Byte address of the region's ``index``-th line."""
        if not 0 <= index < self.lines:
            raise IndexError(f"line {index} outside region '{self.name}' ({self.lines} lines)")
        return self.base + index * self.line_size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    # ------------------------------------------------------------------
    def sample_lines(self, rng: np.random.Generator, n: int, distinct: bool = True) -> list[int]:
        """Sample ``n`` line byte-addresses uniformly from the region."""
        if distinct and n <= self.lines:
            idx = rng.choice(self.lines, size=n, replace=False)
        else:
            idx = rng.integers(0, self.lines, size=n)
        return [self.base + int(i) * self.line_size for i in idx]

    def sequential_lines(self, start_index: int, n: int) -> list[int]:
        """``n`` consecutive line addresses starting at ``start_index``."""
        last = start_index + n - 1
        if last >= self.lines:
            raise IndexError(f"scan of {n} lines from {start_index} exceeds '{self.name}'")
        return [self.base + (start_index + i) * self.line_size for i in range(n)]


def spatial_page_lines(
    region: Region, rng: np.random.Generator, n: int, page_bytes: int = PAGE_SIZE
) -> list[int]:
    """Sample ``n`` distinct lines clustered inside one aligned page.

    Models the spatial locality of e.g. multiple fields/rows inside a
    database page — the pattern Spatial Memory Streaming exploits.
    """
    lines_per_page = page_bytes // region.line_size
    n = min(n, lines_per_page)
    n_pages = max(1, region.lines // lines_per_page)
    page = int(rng.integers(0, n_pages))
    offsets = rng.choice(lines_per_page, size=n, replace=False)
    base_line = page * lines_per_page
    # Deliberately unsorted: rows/fields within a page are not touched in
    # address order, so a stride prefetcher gains nothing here while a
    # spatial-pattern prefetcher (SMS) captures the full set.
    return [region.base + (base_line + int(o)) * region.line_size for o in offsets]


class RegionAllocator:
    """Lays regions out back to back with guard gaps."""

    def __init__(self, base: int = 0x1000_0000, guard_bytes: int = 1 << 20) -> None:
        self._next = base
        self._guard = guard_bytes
        self.regions: dict[str, Region] = {}

    def allocate(self, name: str, lines: int, line_size: int = LINE_SIZE) -> Region:
        if name in self.regions:
            raise ValueError(f"region '{name}' already allocated")
        region = Region(name=name, base=self._next, lines=lines, line_size=line_size)
        self.regions[name] = region
        self._next = region.end + self._guard
        # Keep the next base line-aligned.
        self._next -= self._next % line_size
        return region

    def __getitem__(self, name: str) -> Region:
        return self.regions[name]
