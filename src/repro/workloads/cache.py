"""On-disk ``.npz`` trace cache.

Commercial traces are deterministic functions of ``(workload, records,
seed, scale)`` but cost real time to generate — regenerating them is the
dominant startup cost of every simulator run, and with the parallel sweep
runner (:mod:`repro.parallel`) each worker process would otherwise pay it
again.  This module persists generated traces to disk via the existing
:meth:`Trace.save`/:meth:`Trace.load` ``.npz`` round-trip, which is
lossless: a cache hit yields bit-identical columns and metadata, so cached
and regenerated runs produce identical results.

Layout and control
------------------
* Location: ``$REPRO_TRACE_CACHE`` if set to a path, else
  ``~/.cache/repro-ebcp/traces``.
* Disable: ``REPRO_TRACE_CACHE=0`` (or ``off``/``none``/empty).
* Invalidation: keys encode every generation parameter, so stale entries
  cannot be returned; delete the directory to reclaim space.
* Robustness: writes go through a temp file + atomic rename (concurrent
  workers may race to fill the same key) and gain a ``.sha256`` sidecar;
  readers verify the checksum before decoding, and a corrupted or
  unreadable entry is quarantined (``quarantine/`` beside the cache, via
  :mod:`repro.resilience.integrity`) and regenerated instead of failing
  the run.
"""

from __future__ import annotations

import logging
import os
import tempfile
from pathlib import Path
from typing import Callable, Optional

from .trace import Trace

__all__ = ["TraceCache", "trace_cache", "cache_key", "plane_cache_root"]

log = logging.getLogger(__name__)

_DISABLED_VALUES = {"", "0", "off", "none", "false"}


def cache_key(name: str, records: int, seed: int, scale: float) -> str:
    """Filename stem encoding every trace-generation parameter."""
    return f"{name}-r{records}-s{seed}-x{scale:g}"


class TraceCache:
    """A directory of ``.npz`` traces keyed by generation parameters."""

    def __init__(self, root: Path | str | None) -> None:
        #: ``None`` disables the cache entirely (every get regenerates).
        self.root = Path(root) if root is not None else None
        self.hits = 0
        self.misses = 0

    @property
    def enabled(self) -> bool:
        return self.root is not None

    def path_for(self, name: str, records: int, seed: int, scale: float) -> Optional[Path]:
        if self.root is None:
            return None
        return self.root / f"{cache_key(name, records, seed, scale)}.npz"

    # ------------------------------------------------------------------
    def get_or_build(
        self,
        name: str,
        records: int,
        seed: int,
        scale: float,
        build: Callable[[], Trace],
    ) -> Trace:
        """Load the trace from disk, or build and persist it.

        Any filesystem or decode failure degrades to ``build()`` — the
        cache is a pure accelerator and never affects results.
        """
        from ..resilience.integrity import quarantine_entry, verify_checksum

        path = self.path_for(name, records, seed, scale)
        if path is None:
            return build()
        if path.exists():
            reason = verify_checksum(path)
            if reason is not None:
                quarantine_entry(path, "trace", reason)
            else:
                try:
                    trace = Trace.load(path)
                    self.hits += 1
                    return trace
                except Exception as exc:  # corrupt/truncated/incompatible file
                    quarantine_entry(path, "trace", f"unreadable entry ({exc})")
        self.misses += 1
        trace = build()
        self._store(path, trace)
        return trace

    def _store(self, path: Path, trace: Trace) -> None:
        """Atomically persist a trace; failures only cost the speedup."""
        from ..resilience.faults import FaultSpec
        from ..resilience.integrity import write_checksum

        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(path.parent), prefix=path.stem, suffix=".tmp.npz"
            )
            os.close(fd)
            try:
                trace.save(tmp_name)
                os.replace(tmp_name, path)
            finally:
                if os.path.exists(tmp_name):
                    os.unlink(tmp_name)
            write_checksum(path)
            FaultSpec.from_env().maybe_corrupt(path, "trace")
        except OSError as exc:
            log.warning("could not write trace cache entry %s (%s)", path, exc)


def _default_root() -> Optional[Path]:
    value = os.environ.get("REPRO_TRACE_CACHE")
    if value is not None:
        if value.strip().lower() in _DISABLED_VALUES:
            return None
        return Path(value).expanduser()
    return Path.home() / ".cache" / "repro-ebcp" / "traces"


def plane_cache_root() -> Optional[Path]:
    """Directory for cached L1 filter planes, beside the trace cache.

    Follows ``$REPRO_TRACE_CACHE`` exactly like the trace cache itself: a
    custom path gains a ``filter-planes/`` subdirectory, the default is
    ``~/.cache/repro-ebcp/filter-planes``, and the disabled values disable
    plane persistence too (in-memory planes still work).
    """
    value = os.environ.get("REPRO_TRACE_CACHE")
    if value is not None:
        if value.strip().lower() in _DISABLED_VALUES:
            return None
        return Path(value).expanduser() / "filter-planes"
    return Path.home() / ".cache" / "repro-ebcp" / "filter-planes"


def trace_cache() -> TraceCache:
    """The process-wide cache, honouring ``REPRO_TRACE_CACHE`` at call time.

    Re-resolving the environment on every call keeps tests (and CLI users)
    able to re-point or disable the cache mid-process; the ``TraceCache``
    object itself is cheap.
    """
    return TraceCache(_default_root())
