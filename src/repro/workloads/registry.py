"""Workload registry and trace caching.

``make_workload`` is the one entry point the examples, tests and benches
use.  Commercial traces are deterministic in their arguments and moderately
expensive to generate, so they are memoised per process (parameter sweeps
re-use one trace across dozens of simulator runs) and persisted to the
on-disk ``.npz`` cache (:mod:`repro.workloads.cache`) so other processes —
notably :mod:`repro.parallel` sweep workers — load instead of regenerating.
"""

from __future__ import annotations

import inspect
from functools import lru_cache

from .cache import trace_cache
from .commercial import PROFILES, build_commercial_trace
from .synthetic import (
    paper_example_trace,
    pointer_chase,
    random_uniform,
    repeating_miss_loop,
    streaming,
)
from .trace import Trace

__all__ = ["WORKLOADS", "COMMERCIAL_WORKLOADS", "make_workload"]

#: The paper's benchmark suite, in its reporting order.
COMMERCIAL_WORKLOADS: tuple[str, ...] = (
    "database",
    "tpcw",
    "specjbb2005",
    "jappserver2004",
)

_SYNTHETIC = {
    "repeating_miss_loop": repeating_miss_loop,
    "pointer_chase": pointer_chase,
    "streaming": streaming,
    "random_uniform": random_uniform,
    "paper_example": paper_example_trace,
}

#: All available workload names.
WORKLOADS: tuple[str, ...] = COMMERCIAL_WORKLOADS + tuple(sorted(_SYNTHETIC))


@lru_cache(maxsize=32)
def _cached_commercial(name: str, records: int, seed: int, scale: float) -> Trace:
    # Two cache levels: the lru_cache memoises within the process, the
    # on-disk cache (repro.workloads.cache) persists across processes so
    # parallel sweep workers load instead of regenerating.
    return trace_cache().get_or_build(
        name,
        records,
        seed,
        scale,
        lambda: build_commercial_trace(name, records=records, seed=seed, scale=scale),
    )


def make_workload(
    name: str,
    records: int = 280_000,
    seed: int = 7,
    scale: float = 1.0,
    **kwargs: object,
) -> Trace:
    """Build (or fetch from cache) a workload trace by name.

    Commercial workloads accept ``records``, ``seed`` and ``scale``;
    synthetic microbenchmarks accept their own keyword arguments (see
    :mod:`repro.workloads.synthetic`) and ignore ``records``/``scale``
    unless they define them.
    """
    if name in PROFILES:
        if kwargs:
            raise TypeError(f"unexpected arguments for commercial workload: {sorted(kwargs)}")
        return _cached_commercial(name, records, seed, scale)
    if name in _SYNTHETIC:
        factory = _SYNTHETIC[name]
        accepted = inspect.signature(factory).parameters
        call_kwargs = dict(kwargs)
        if "records" in accepted and "records" not in call_kwargs:
            call_kwargs["records"] = records
        if "seed" in accepted and "seed" not in call_kwargs:
            call_kwargs["seed"] = seed
        return factory(**call_kwargs)  # type: ignore[operator]
    raise KeyError(f"unknown workload '{name}'; choose from {WORKLOADS}")
