"""Multi-threaded (CMP/CMT) trace composition.

The paper's Section 6 names a chip-multiprocessor EBCP as future work,
and its Section 3.3.1 argues that memory-side prefetching breaks down on
multicores because "the requests received by the memory controller is an
interleaving of requests from the different threads executing
concurrently on the processor.  Such interleaved request streams do not
exhibit sufficient correlation to enable effective prefetching."  EBCP is
immune because its control sits in front of the core-to-L2 crossbar and
"sees the entire L2 miss stream of every thread" — i.e. it can keep
per-thread state.

:func:`interleave_traces` builds the combined request stream of ``k``
hardware threads, each running its own workload instance in a disjoint
address-space slice, interleaved in instruction-count order the way a
shared L2 would observe them.  Records carry the issuing thread id, so a
prefetcher may either exploit it (the CMP EBCP of
:mod:`repro.core.cmp`) or ignore it (every memory-side scheme must).

Timing note: the shared engine times the union stream with one epoch
structure — a fine-grained multithreaded core (the CMT designs this
paper's group built) rather than k independent cores.  The extension
experiment's conclusions are *relative* (per-thread vs interleaved
visibility), which this model isolates cleanly.
"""

from __future__ import annotations

import heapq

import numpy as np

from .registry import make_workload
from .trace import Trace, TraceMeta

__all__ = ["interleave_traces", "make_cmp_workload"]

#: Per-thread address-space offset: threads run distinct instances, so
#: their footprints must not alias (distinct processes / heap arenas).
THREAD_ADDR_STRIDE = 1 << 44
THREAD_PC_STRIDE = 1 << 40


def interleave_traces(traces: list[Trace], name: str | None = None) -> Trace:
    """Merge per-thread traces into one instruction-ordered stream.

    Each input trace is treated as one hardware thread: its addresses and
    PCs are offset into a private slice of the address space, and records
    are merged by cumulative instruction count (threads retire at the
    same rate).  Gaps are recomputed so the merged trace spans the union
    timeline: the merged gap of a record is its distance to the
    previously *merged* record, making the total instruction count equal
    to the per-thread maximum rather than the sum — k threads genuinely
    run concurrently.
    """
    if not traces:
        raise ValueError("need at least one trace")
    heap: list[tuple[int, int, int]] = []  # (inst_time, tid, index)
    cumulative = []
    for tid, trace in enumerate(traces):
        times = np.cumsum(trace.gap)
        cumulative.append(times)
        if len(trace):
            heapq.heappush(heap, (int(times[0]), tid, 0))

    total = sum(len(t) for t in traces)
    gap = np.empty(total, dtype=np.int64)
    kind = np.empty(total, dtype=np.uint8)
    pc = np.empty(total, dtype=np.int64)
    addr = np.empty(total, dtype=np.int64)
    serial = np.empty(total, dtype=np.uint8)
    tid_arr = np.empty(total, dtype=np.uint16)

    last_time = 0
    out = 0
    while heap:
        time, tid, index = heapq.heappop(heap)
        trace = traces[tid]
        gap[out] = max(0, time - last_time)
        last_time = max(last_time, time)
        kind[out] = trace.kind[index]
        pc[out] = int(trace.pc[index]) + tid * THREAD_PC_STRIDE
        addr[out] = int(trace.addr[index]) + tid * THREAD_ADDR_STRIDE
        serial[out] = trace.serial[index]
        tid_arr[out] = tid
        out += 1
        if index + 1 < len(trace):
            heapq.heappush(heap, (int(cumulative[tid][index + 1]), tid, index + 1))

    first = traces[0].meta
    meta = TraceMeta(
        name=name or f"{first.name}_x{len(traces)}",
        seed=first.seed,
        description=f"{len(traces)}-thread interleaving of {first.name}",
        cpi_perf=first.cpi_perf,
        overlap=first.overlap,
        scale=first.scale,
        extra={"n_threads": len(traces), "base_workload": first.name},
    )
    return Trace(gap, kind, pc, addr, serial, meta, tid=tid_arr)


def make_cmp_workload(
    name: str,
    n_threads: int = 2,
    records_per_thread: int = 120_000,
    seed: int = 7,
) -> Trace:
    """Interleave ``n_threads`` independent instances of a workload.

    Each thread runs the same workload type with a different seed (a
    different transaction mix), in a disjoint address slice — the
    combined stream a shared L2 (and a memory controller) observes.
    """
    if n_threads < 1:
        raise ValueError("need at least one thread")
    traces = [
        make_workload(name, records=records_per_thread, seed=seed + 101 * t)
        for t in range(n_threads)
    ]
    return interleave_traces(traces, name=f"{name}_cmp{n_threads}")
