"""Transaction templates: the recurring unit of the synthetic workloads.

Commercial workloads are transaction-oriented: a bounded set of
transaction types executes over and over, each touching a characteristic
sequence of code and data.  Correlation prefetching works on these
workloads precisely because the *miss sequence of a transaction type
recurs*.  A :class:`TransactionTemplate` captures one transaction type as
an ordered list of :class:`Op` steps whose addresses are fixed when the
template is built; every execution replays the same sequence, optionally
substituting pre-built *variant* address sets for some ops (modelling
data-dependent control flow, which creates prefetch-width demand) and
drawing fresh addresses for *cold* ops (modelling untrainable misses).

Op kinds
--------
``code``   instruction-fetch walk over the op's line addresses (an
           off-chip instruction miss seals its epoch, so consecutive cold
           code lines serialise — as real instruction misses do).
``chase``  dependent-load chain (``serial=True`` records): every hop is
           its own epoch — pointer chasing.
``burst``  independent loads issued close together: they overlap into one
           epoch (index-to-rows fan-out, field accesses...).
``scan``   short sequential-line walk (the only stream-friendly pattern).
``hot``    loads to a small shared region that stays L2-resident: L2
           hits, invisible to the epoch structure.
``cold``   loads to fresh random lines in a huge region: always miss,
           never recur, unpredictable by any prefetcher.
``store``  stores (bandwidth only; never epochs, never EMAB-recorded).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..memory.request import AccessKind
from .patterns import Region
from .trace import TraceBuilder

__all__ = ["Op", "TransactionTemplate"]

#: Gap (instructions) placed before a record that must open a new epoch;
#: comfortably larger than the 128-entry ROB window.
EPOCH_SPLIT_GAP = 220
#: Gap between records that should overlap within one epoch.
OVERLAP_GAP = 12


@dataclass
class Op:
    """One step of a transaction template."""

    kind: str
    pc: int
    addrs: tuple[int, ...] = ()
    #: For ``cold``/``hot`` ops: number of accesses to emit.
    n: int = 0
    lead_gap: int = EPOCH_SPLIT_GAP
    step_gap: int = OVERLAP_GAP
    #: Pre-built alternative address sets (data-dependent paths).
    variants: tuple[tuple[int, ...], ...] = ()

    def instruction_cost(self) -> int:
        """Instructions this op consumes when emitted."""
        count = self.n if self.kind == "cold" else len(self.addrs)
        if count == 0:
            return 0
        if self.kind == "cold":
            # Cold misses are isolated: every access pays the lead gap.
            return count * self.lead_gap
        if self.kind == "hot":
            return count * self.step_gap
        if self.kind == "chase":
            # Serial records split epochs regardless of gap.
            return self.lead_gap + (count - 1) * max(self.step_gap, 30)
        return self.lead_gap + (count - 1) * self.step_gap


@dataclass
class TransactionTemplate:
    """A recurring transaction type."""

    template_id: int
    ops: list[Op]
    #: Pure-computation padding appended so the transaction spans its
    #: instruction budget.
    tail_pad: int = 0
    name: str = ""

    # ------------------------------------------------------------------
    def fixed_lines(self, line_shift: int = 6) -> set[int]:
        """All line numbers this template touches deterministically."""
        lines: set[int] = set()
        for op in self.ops:
            for addr in op.addrs:
                lines.add(addr >> line_shift)
            for variant in op.variants:
                for addr in variant:
                    lines.add(addr >> line_shift)
        return lines

    def instruction_cost(self) -> int:
        return sum(op.instruction_cost() for op in self.ops) + self.tail_pad

    # ------------------------------------------------------------------
    def emit(
        self,
        builder: TraceBuilder,
        rng: np.random.Generator,
        variant_prob: float,
        cold_region: Region | None = None,
    ) -> None:
        """Replay one execution of the transaction into ``builder``."""
        for op in self.ops:
            addrs: tuple[int, ...] | list[int] = op.addrs
            if op.variants and rng.random() < variant_prob:
                addrs = op.variants[int(rng.integers(0, len(op.variants)))]
            kind = op.kind
            if kind == "code":
                gap = op.lead_gap
                for addr in addrs:
                    builder.ifetch(addr, gap=gap)
                    gap = op.step_gap
            elif kind == "chase":
                gap = op.lead_gap
                for addr in addrs:
                    builder.load(op.pc, addr, gap=gap, serial=True)
                    gap = max(op.step_gap, 30)
            elif kind in ("burst", "scan", "hot"):
                gap = op.lead_gap if kind != "hot" else op.step_gap
                for addr in addrs:
                    builder.load(op.pc, addr, gap=gap)
                    gap = op.step_gap
            elif kind == "cold":
                if cold_region is None:
                    raise ValueError("cold op requires a cold region")
                for addr in cold_region.sample_lines(rng, op.n, distinct=False):
                    builder.load(op.pc, addr, gap=op.lead_gap)
            elif kind == "store":
                gap = op.step_gap
                for addr in addrs:
                    builder.store(op.pc, addr, gap=gap)
            else:
                raise ValueError(f"unknown op kind '{kind}'")
        if self.tail_pad:
            builder.pad(self.tail_pad)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TransactionTemplate(id={self.template_id}, ops={len(self.ops)}, "
            f"insts~{self.instruction_cost()})"
        )
