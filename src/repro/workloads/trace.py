"""Trace container and builder.

A trace is the unit of input to the epoch simulator: a packed sequence of
L1-level access records, each ``(gap, kind, pc, addr, serial, tid)`` where

* ``gap`` — retired instructions since the previous record,
* ``kind`` — :class:`~repro.memory.request.AccessKind` code
  (0 = instruction fetch, 1 = load, 2 = store),
* ``pc`` — program counter of the access,
* ``addr`` — byte address touched,
* ``serial`` — True when the access is data-dependent on the previous
  off-chip miss (it can never overlap with it; pointer chasing),
* ``tid`` — issuing hardware thread (0 unless the trace was composed by
  :mod:`repro.workloads.multithread`).

Records are held in parallel numpy arrays for compactness; traces are
deterministic functions of (workload, scale, seed) and can be saved to and
loaded from ``.npz`` files.

This is the reproduction's stand-in for the paper's proprietary SPARC
full-system traces; see DESIGN.md Section 2 for the substitution argument.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterator

import numpy as np

from ..memory.request import AccessKind

__all__ = ["TraceMeta", "Trace", "TraceBuilder"]


@dataclass
class TraceMeta:
    """Descriptive and timing metadata attached to a trace."""

    name: str = "trace"
    seed: int = 0
    description: str = ""
    #: Epoch-model timing parameters calibrated for this workload
    #: (CPI with a perfect L2, and the on-/off-chip overlap fraction).
    cpi_perf: float = 1.0
    overlap: float = 0.10
    #: Footprint scale factor relative to the scaled default config.
    scale: float = 1.0
    extra: dict = field(default_factory=dict)


class Trace:
    """Immutable packed access trace."""

    def __init__(
        self,
        gap: np.ndarray,
        kind: np.ndarray,
        pc: np.ndarray,
        addr: np.ndarray,
        serial: np.ndarray,
        meta: TraceMeta | None = None,
        tid: np.ndarray | None = None,
    ) -> None:
        n = len(gap)
        for arr, label in ((kind, "kind"), (pc, "pc"), (addr, "addr"), (serial, "serial")):
            if len(arr) != n:
                raise ValueError(f"array '{label}' has length {len(arr)}, expected {n}")
        self.gap = np.ascontiguousarray(gap, dtype=np.int64)
        self.kind = np.ascontiguousarray(kind, dtype=np.uint8)
        self.pc = np.ascontiguousarray(pc, dtype=np.int64)
        self.addr = np.ascontiguousarray(addr, dtype=np.int64)
        self.serial = np.ascontiguousarray(serial, dtype=np.uint8)
        if tid is None:
            tid = np.zeros(n, dtype=np.uint16)
        elif len(tid) != n:
            raise ValueError(f"array 'tid' has length {len(tid)}, expected {n}")
        self.tid = np.ascontiguousarray(tid, dtype=np.uint16)
        self.meta = meta or TraceMeta()
        # Lazily packed plain-list columns (see :meth:`columns`).
        self._columns: tuple[list, list, list, list, list, list] | None = None
        # Lazy derived state, all keyed to the immutable record arrays:
        # content fingerprint, instruction prefix sums, and the per-L1-
        # geometry filter planes (:mod:`repro.engine.filter_plane`).
        self._fingerprint: str | None = None
        self._inst_prefix: np.ndarray | None = None
        self._store_count_prefix: np.ndarray | None = None
        self._plane_cache: dict = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.gap)

    @property
    def instructions(self) -> int:
        """Total retired instructions spanned by the trace."""
        return int(self.gap.sum())

    def records(self) -> Iterator[tuple[int, AccessKind, int, int, bool]]:
        """Iterate records as Python tuples (slow path, for tests)."""
        for i in range(len(self)):
            yield (
                int(self.gap[i]),
                AccessKind(int(self.kind[i])),
                int(self.pc[i]),
                int(self.addr[i]),
                bool(self.serial[i]),
            )

    def columns(self) -> tuple[list, list, list, list, list, list]:
        """The six record columns as plain Python lists, packed once.

        The epoch simulator iterates records as Python ints; converting the
        numpy arrays costs more than a short simulation, and sweeps run the
        same trace dozens of times.  The trace is immutable, so the packed
        ``(gap, kind, pc, addr, serial, tid)`` lists are built on first use
        and reused by every subsequent run.
        """
        if self._columns is None:
            self._columns = (
                self.gap.tolist(),
                self.kind.tolist(),
                self.pc.tolist(),
                self.addr.tolist(),
                self.serial.tolist(),
                self.tid.tolist(),
            )
        return self._columns

    def fingerprint(self) -> str:
        """Content hash over all six record columns (hex, 32 chars).

        Stable across processes and save/load round-trips; keys the
        on-disk filter-plane cache the same way the generation parameters
        key the trace cache.
        """
        if self._fingerprint is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(len(self.gap).to_bytes(8, "little"))
            for arr in (self.gap, self.kind, self.pc, self.addr, self.serial, self.tid):
                digest.update(arr.tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def inst_prefix(self) -> np.ndarray:
        """Prefix sums of ``gap``: retired instructions *after* record ``i``
        is ``inst_prefix()[i + 1]`` (length ``n + 1``, ``[0]`` is 0).

        The compressed-execution path reconstructs the per-miss
        instruction clock from this instead of accumulating gaps record by
        record.
        """
        if self._inst_prefix is None:
            prefix = np.zeros(len(self.gap) + 1, dtype=np.int64)
            np.cumsum(self.gap, out=prefix[1:])
            self._inst_prefix = prefix
        return self._inst_prefix

    def store_count_prefix(self) -> np.ndarray:
        """Prefix sums of store records (``kind == STORE``), length ``n + 1``.

        Multiplying differences by the line size yields the store bytes of
        any record range in O(1) (exported on the filter plane as
        ``store_bytes_prefix``).
        """
        if self._store_count_prefix is None:
            prefix = np.zeros(len(self.kind) + 1, dtype=np.int64)
            np.cumsum(self.kind == int(AccessKind.STORE), out=prefix[1:])
            self._store_count_prefix = prefix
        return self._store_count_prefix

    @property
    def n_threads(self) -> int:
        return int(self.tid.max()) + 1 if len(self.tid) else 1

    def slice(self, start: int, stop: int) -> "Trace":
        return Trace(
            self.gap[start:stop],
            self.kind[start:stop],
            self.pc[start:stop],
            self.addr[start:stop],
            self.serial[start:stop],
            self.meta,
            tid=self.tid[start:stop],
        )

    def concat(self, other: "Trace") -> "Trace":
        return Trace(
            np.concatenate([self.gap, other.gap]),
            np.concatenate([self.kind, other.kind]),
            np.concatenate([self.pc, other.pc]),
            np.concatenate([self.addr, other.addr]),
            np.concatenate([self.serial, other.serial]),
            self.meta,
            tid=np.concatenate([self.tid, other.tid]),
        )

    # ------------------------------------------------------------------
    # Quick summaries (used by tests and the CLI)
    # ------------------------------------------------------------------
    def kind_counts(self) -> dict[AccessKind, int]:
        counts = np.bincount(self.kind, minlength=3)
        return {k: int(counts[int(k)]) for k in AccessKind}

    def unique_lines(self, line_shift: int = 6) -> int:
        return int(np.unique(self.addr >> line_shift).size)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        path = Path(path)
        np.savez_compressed(
            path,
            gap=self.gap,
            kind=self.kind,
            pc=self.pc,
            addr=self.addr,
            serial=self.serial,
            tid=self.tid,
            meta=np.frombuffer(json.dumps(asdict(self.meta)).encode(), dtype=np.uint8),
        )

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        with np.load(Path(path)) as data:
            meta_dict = json.loads(bytes(data["meta"].tobytes()).decode())
            meta = TraceMeta(**meta_dict)
            return cls(
                data["gap"],
                data["kind"],
                data["pc"],
                data["addr"],
                data["serial"],
                meta,
                tid=data["tid"] if "tid" in data else None,
            )


class TraceBuilder:
    """Incremental trace construction with plain Python lists."""

    def __init__(self, meta: TraceMeta | None = None) -> None:
        self.meta = meta or TraceMeta()
        self._gap: list[int] = []
        self._kind: list[int] = []
        self._pc: list[int] = []
        self._addr: list[int] = []
        self._serial: list[int] = []
        #: Instruction gap accumulated before the next record.
        self._pending_gap = 0

    def __len__(self) -> int:
        return len(self._gap)

    # ------------------------------------------------------------------
    def pad(self, instructions: int) -> None:
        """Add pure-computation instructions before the next record."""
        if instructions < 0:
            raise ValueError("padding must be non-negative")
        self._pending_gap += instructions

    def add(self, kind: AccessKind | int, pc: int, addr: int, gap: int = 0, serial: bool = False) -> None:
        """Append one record (``gap`` instructions after the previous)."""
        if gap < 0:
            raise ValueError("gap must be non-negative")
        self._gap.append(gap + self._pending_gap)
        self._pending_gap = 0
        self._kind.append(int(kind))
        self._pc.append(pc)
        self._addr.append(addr)
        self._serial.append(1 if serial else 0)

    def extend_loads(
        self,
        pc,
        addr,
        gap=0,
        serial=False,
    ) -> None:
        """Bulk-append load records from array-likes (vectorized generators).

        ``pc``, ``gap`` and ``serial`` may be scalars (broadcast over every
        record) or arrays of the same length as ``addr``.  Equivalent to
        calling :meth:`load` once per element, including the pending-gap
        handling of :meth:`pad`, but without the per-record Python loop.
        """
        addr = np.asarray(addr, dtype=np.int64)
        n = addr.size
        if n == 0:
            return
        gap = np.broadcast_to(np.asarray(gap, dtype=np.int64), (n,))
        if gap.min() < 0:
            raise ValueError("gap must be non-negative")
        gaps = gap.tolist()
        if self._pending_gap:
            gaps[0] += self._pending_gap
            self._pending_gap = 0
        self._gap.extend(gaps)
        self._kind.extend([int(AccessKind.LOAD)] * n)
        pc = np.broadcast_to(np.asarray(pc, dtype=np.int64), (n,))
        self._pc.extend(pc.tolist())
        self._addr.extend(addr.tolist())
        serial = np.broadcast_to(np.asarray(serial, dtype=np.uint8), (n,))
        self._serial.extend(serial.tolist())

    def ifetch(self, addr: int, gap: int = 0) -> None:
        self.add(AccessKind.IFETCH, addr, addr, gap)

    def load(self, pc: int, addr: int, gap: int = 0, serial: bool = False) -> None:
        self.add(AccessKind.LOAD, pc, addr, gap, serial)

    def store(self, pc: int, addr: int, gap: int = 0) -> None:
        self.add(AccessKind.STORE, pc, addr, gap)

    # ------------------------------------------------------------------
    def build(self) -> Trace:
        return Trace(
            np.asarray(self._gap, dtype=np.int64),
            np.asarray(self._kind, dtype=np.uint8),
            np.asarray(self._pc, dtype=np.int64),
            np.asarray(self._addr, dtype=np.int64),
            np.asarray(self._serial, dtype=np.uint8),
            self.meta,
        )
