"""Lowering planned jobs to the protocol-v4 wire and back.

A sweep crosses the wire twice: the client sends the whole spec in one
``sweep`` request, and the entry service (router or single server)
expands it and fans each planned job out as an *extended* ``simulate``
request — plain v1–v3 params plus optional ``config`` /
``prefetcher_overrides`` / ``n_threads`` / ``scale`` / ``label`` fields.
Shards therefore never see a ``sweep`` frame; they execute ordinary
(extended) simulate requests, which is what lets the existing
micro-batching, dedup and cache machinery serve sweep traffic unchanged.

This module is deliberately protocol-agnostic (it works on plain dicts
and duck-typed params), so :mod:`repro.service` can depend on it without
a cycle.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Optional, Tuple

from ..engine.config import ProcessorConfig
from ..parallel.jobs import JobSpec
from ..prefetchers.registry import build_prefetcher
from .errors import SpecError
from .expand import PlannedJob
from .schema import ConfigSpec

__all__ = [
    "config_from_wire",
    "simulate_params_for",
    "jobspec_from_simulate",
    "extended_cache_key",
    "is_extended",
]


def config_from_wire(payload: Optional[Mapping]) -> ProcessorConfig:
    """Build the processor config named by a wire ``config`` payload.

    ``None`` (the field omitted) is the default scaled config —
    identical to what plain ``simulate`` requests run against.  The
    payload shape is ``{"base": "scaled"|"paper", "overrides": {...}}``,
    validated through :class:`~repro.spec.schema.ConfigSpec` so wire and
    file specs reject the same inputs.
    """
    if payload is None:
        return ProcessorConfig.scaled()
    spec = ConfigSpec.from_dict(
        {"label": "wire", **dict(payload)}, path="params.config"
    )
    return spec.build()


def simulate_params_for(meta: PlannedJob) -> dict:
    """The extended ``simulate`` params dict for one planned job.

    Default-valued extension fields are omitted, so a default-config
    single-thread job is byte-identical to a v3 ``simulate`` payload —
    and routes/caches identically to one.
    """
    params: dict = {
        "workload": meta.workload,
        "prefetcher": meta.prefetcher,
        "records": meta.records,
        "seed": meta.seed,
    }
    if meta.warmup_records is not None:
        params["warmup_records"] = meta.warmup_records
    if meta.config_base != "scaled" or meta.config_overrides:
        config: dict = {"base": meta.config_base}
        if meta.config_overrides:
            config["overrides"] = {
                key: dict(value) if isinstance(value, tuple) else value
                for key, value in meta.config_overrides
            }
        params["config"] = config
    if meta.prefetcher_overrides:
        params["prefetcher_overrides"] = dict(meta.prefetcher_overrides)
    if meta.n_threads:
        params["n_threads"] = meta.n_threads
    if meta.scale != 1.0:
        params["scale"] = meta.scale
    if meta.label and meta.label != meta.prefetcher:
        params["label"] = meta.label
    return params


def is_extended(params: Any) -> bool:
    """Whether duck-typed simulate params use any v4 extension field."""
    return bool(
        getattr(params, "config", None) is not None
        or getattr(params, "prefetcher_overrides", None)
        or getattr(params, "n_threads", 0)
        or getattr(params, "scale", 1.0) != 1.0
    )


def jobspec_from_simulate(params: Any, config: Optional[ProcessorConfig] = None) -> JobSpec:
    """Build the :class:`JobSpec` an extended simulate request describes.

    ``params`` is duck-typed (``protocol.SimulateParams`` or anything
    with the same fields).  ``config`` short-circuits the wire-config
    build when the caller already resolved it (the batch path resolves
    it once per request for the cache key).
    """
    if config is None:
        config = config_from_wire(getattr(params, "config", None))
    prefetcher = None
    if params.prefetcher != "none":
        overrides = getattr(params, "prefetcher_overrides", None) or {}
        try:
            prefetcher = build_prefetcher(params.prefetcher, **dict(overrides))
        except (KeyError, TypeError) as exc:
            raise SpecError(
                "params.prefetcher_overrides",
                f"cannot build {params.prefetcher!r}: {exc}",
            )
    return JobSpec(
        workload=params.workload,
        records=params.records,
        seed=params.seed,
        config=config,
        prefetcher=prefetcher,
        label=getattr(params, "label", "") or params.prefetcher,
        scale=getattr(params, "scale", 1.0),
        n_threads=getattr(params, "n_threads", 0),
        warmup_records=params.warmup_records,
    )


def _canonical_overrides(overrides: Optional[Mapping]) -> str:
    if not overrides:
        return ""
    return json.dumps(dict(overrides), sort_keys=True, separators=(",", ":"))


def extended_cache_key(params: Any, config_fp: tuple) -> Tuple:
    """The content-addressed cache key of an extended simulate request.

    Built from *generation parameters* rather than a trace fingerprint,
    so admission never has to construct the trace: the extra identity
    axes (threads, scale, config, prefetcher overrides) are all explicit
    here.  Plain v1–v3 requests keep their historical
    :meth:`ResultCache.key` shape — existing caches and disk spills stay
    valid.
    """
    return (
        "jobv4",
        params.workload,
        params.records,
        params.seed,
        getattr(params, "n_threads", 0),
        getattr(params, "scale", 1.0),
        params.warmup_records,
        config_fp,
        params.prefetcher,
        _canonical_overrides(getattr(params, "prefetcher_overrides", None)),
    )
