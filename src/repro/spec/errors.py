"""Typed validation errors for the sweep-spec schema.

Every validation failure raises :class:`SpecError` carrying the *field
path* of the offending value (``"prefetchers[2].overrides.degree"``),
so callers — the CLI, the service's ``sweep`` handler, tests — can
report exactly which part of a spec is wrong without parsing prose.
"""

from __future__ import annotations

__all__ = ["SpecError", "SpecVersionError"]


class SpecError(ValueError):
    """A sweep spec failed validation.

    ``path`` locates the offending field using dotted/indexed notation
    rooted at the spec document (empty string for document-level
    problems, e.g. an unknown top-level key).
    """

    def __init__(self, path: str, message: str) -> None:
        self.path = path
        self.message = message
        where = path if path else "<spec>"
        super().__init__(f"{where}: {message}")

    def to_dict(self) -> dict:
        return {"path": self.path, "message": self.message}


class SpecVersionError(SpecError):
    """The spec declares a schema version this build cannot execute."""

    def __init__(self, path: str, message: str, found: object = None) -> None:
        super().__init__(path, message)
        self.found = found
