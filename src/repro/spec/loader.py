"""Loading and dumping sweep specs (TOML and JSON).

TOML is the committed-file format (``specs/*.toml``); JSON is the wire
format (the ``sweep`` request carries ``SweepSpec.to_dict()``).  Both
lower to the same :meth:`SweepSpec.from_dict` validation, so a spec
that loads locally is exactly a spec the service will accept.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .errors import SpecError
from .schema import SweepSpec

try:  # Python >= 3.11
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - 3.9/3.10 fallback
    try:
        import tomli as tomllib  # type: ignore[no-redef]
    except ModuleNotFoundError:
        tomllib = None  # type: ignore[assignment]

__all__ = ["load_spec", "loads_spec", "dump_spec", "dumps_spec"]


def loads_spec(text: str, fmt: str = "toml") -> SweepSpec:
    """Parse a spec from a string (``fmt``: ``"toml"`` or ``"json"``)."""
    if fmt == "toml":
        if tomllib is None:  # pragma: no cover - baked-in on the CI floor
            raise SpecError(
                "", "no TOML parser available (need Python >= 3.11 or tomli)"
            )
        try:
            payload = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise SpecError("", f"invalid TOML: {exc}")
    elif fmt == "json":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError("", f"invalid JSON: {exc}")
    else:
        raise SpecError("", f"unknown spec format {fmt!r} (expected toml or json)")
    return SweepSpec.from_dict(payload)


def load_spec(path: Union[str, Path]) -> SweepSpec:
    """Load and validate a spec file (format chosen by suffix)."""
    path = Path(path)
    fmt = "json" if path.suffix.lower() == ".json" else "toml"
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise SpecError("", f"cannot read {path}: {exc}")
    return loads_spec(text, fmt)


def dump_spec(spec: SweepSpec) -> dict:
    """The canonical payload form (what the wire and fingerprint use)."""
    return spec.to_dict()


def dumps_spec(spec: SweepSpec, indent: int = 2) -> str:
    """The canonical JSON text of a spec."""
    return json.dumps(spec.to_dict(), sort_keys=True, indent=indent)
