"""Submitting a sweep spec to a running service.

``submit_spec`` is the remote twin of :func:`repro.spec.run_spec`: it
streams the service's per-job result frames (protocol v4 ``sweep``)
into the same :class:`~repro.spec.runner.SweepResult` container a local
run produces — plus which jobs were cache hits and which shard answered
each.  Because both sides expand the same spec deterministically, frame
``index`` values line up with the local plan, and results are
field-for-field identical to a local run.
"""

from __future__ import annotations

from typing import Optional

from ..resilience.policy import ExecutionPolicy
from .expand import expand
from .runner import SweepResult
from .schema import SweepSpec

__all__ = ["submit_spec"]


def submit_spec(
    spec: SweepSpec,
    host: str = "127.0.0.1",
    port: int = 7421,
    *,
    use_cache: bool = True,
    timeout_s: float = 600.0,
    retries: int = 1,
    backoff_s: float = 0.25,
    policy: Optional[ExecutionPolicy] = None,
    client: Optional[object] = None,
) -> SweepResult:
    """Run ``spec`` on a service and return its :class:`SweepResult`.

    ``policy`` (when given) supplies client-side timeout/retry/backoff
    defaults, same as ``ServiceClient.from_policy``; explicit keyword
    values win.  ``client`` injects an existing :class:`ServiceClient`
    (the caller keeps ownership of its connection).
    """
    from ..service.client import ServiceClient  # lazy: spec stays service-free

    plan = expand(spec)
    results: list = [None] * len(plan.jobs)
    cached = [False] * len(plan.jobs)
    shards: list = [None] * len(plan.jobs)
    elapsed: Optional[float] = None

    def consume(active: "ServiceClient") -> None:
        nonlocal elapsed
        for frame in active.iter_sweep(spec, use_cache=use_cache):
            if frame.done:
                elapsed = frame.elapsed_ms
                break
            results[frame.index] = frame.result
            cached[frame.index] = frame.cached
            shards[frame.index] = frame.shard

    if client is not None:
        consume(client)  # type: ignore[arg-type]
    else:
        if policy is not None:
            kwargs = dict(
                timeout_s=policy.timeout_s or timeout_s,
                retries=policy.retries,
                backoff_s=policy.backoff_s,
            )
        else:
            kwargs = dict(timeout_s=timeout_s, retries=retries, backoff_s=backoff_s)
        with ServiceClient(host, port, **kwargs) as owned:
            consume(owned)

    missing = [i for i, result in enumerate(results) if result is None]
    if missing:
        raise RuntimeError(
            f"sweep stream ended with {len(missing)} unanswered job(s): "
            f"indices {missing[:8]}{'...' if len(missing) > 8 else ''}"
        )
    return SweepResult(
        spec=spec,
        plan=plan,
        results=tuple(results),
        cached=tuple(cached),
        shards=tuple(shards),
        elapsed_ms=elapsed,
    )
