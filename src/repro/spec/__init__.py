"""Declarative sweep specs: one schema drives every execution path.

The sweep spec (:class:`SweepSpec`) is the single declarative
description of a simulation sweep — workloads × records/seed grid ×
processor-config variants × prefetchers, plus an execution-policy block
and output hints.  One spec runs three ways with bit-identical results:

* :func:`run_spec` — locally, through ``resilience.execute``;
* :func:`submit_spec` — against a running service (protocol v4
  ``sweep``), with per-job results streamed back as they settle;
* the committed ``specs/*.toml`` files — the paper experiments
  (``table1``, ``figure4``–``figure9``, ``extension_cmp``) are loaded
  from these by :mod:`repro.experiments.from_spec`.

Schema versioning and the wire format are documented in DESIGN.md.
"""

from .errors import SpecError, SpecVersionError
from .expand import PlannedJob, SweepPlan, expand
from .loader import dump_spec, dumps_spec, load_spec, loads_spec
from .runner import SweepResult, run_spec
from .schema import (
    SPEC_VERSION,
    ConfigSpec,
    ExecutionSpec,
    GridSpec,
    OutputSpec,
    PrefetcherSpec,
    SweepSpec,
    ThreadPoint,
)
from .submit import submit_spec

__all__ = [
    "SPEC_VERSION",
    "ConfigSpec",
    "ExecutionSpec",
    "GridSpec",
    "OutputSpec",
    "PlannedJob",
    "PrefetcherSpec",
    "SpecError",
    "SpecVersionError",
    "SweepPlan",
    "SweepResult",
    "SweepSpec",
    "ThreadPoint",
    "dump_spec",
    "dumps_spec",
    "expand",
    "load_spec",
    "loads_spec",
    "run_spec",
    "submit_spec",
]
