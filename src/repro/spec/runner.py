"""Local execution of sweep specs (and the shared result container).

``run_spec`` is the local path of the tentpole: expand → warm → execute
through :func:`repro.resilience.executor.execute` (via
:func:`repro.parallel.run_jobs`), returning a :class:`SweepResult`.
``submit_spec`` (:mod:`repro.spec.submit`) produces the *same* container
from a service's streamed frames, so downstream assembly code never
cares which path ran the sweep.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..analysis.sweep import SweepPoint
from ..engine.stats import SimulationResult
from ..parallel.jobs import run_jobs
from ..resilience.policy import ExecutionPolicy
from .expand import PlannedJob, SweepPlan, expand
from .schema import SweepSpec

__all__ = ["SweepResult", "run_spec"]


@contextlib.contextmanager
def _kernel_env(enabled: Optional[bool]) -> Iterator[None]:
    """Pin ``REPRO_KERNEL`` for the duration of a spec run.

    The kernel switch is process-global (read per job via
    ``kernel_enabled()``), so a spec that pins it must restore the
    caller's environment afterwards.  ``None`` leaves the environment
    alone.  Results are bit-identical either way — this is the same
    guarantee as ``--no-kernel``.
    """
    if enabled is None:
        yield
        return
    old = os.environ.get("REPRO_KERNEL")
    os.environ["REPRO_KERNEL"] = "on" if enabled else "off"
    try:
        yield
    finally:
        if old is None:
            os.environ.pop("REPRO_KERNEL", None)
        else:
            os.environ["REPRO_KERNEL"] = old


@dataclass
class SweepResult:
    """The outcome of one sweep: plan plus per-job results in plan order.

    ``cached`` and ``shards`` are populated by the submitted path only
    (which jobs were answered from a service cache, and by which shard);
    local runs leave them ``None``.
    """

    spec: SweepSpec
    plan: SweepPlan
    results: Tuple[SimulationResult, ...]
    cached: Optional[Tuple[bool, ...]] = None
    shards: Optional[Tuple[Optional[dict], ...]] = None
    elapsed_ms: Optional[float] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if len(self.results) != len(self.plan.jobs):
            raise ValueError(
                f"{len(self.results)} results for {len(self.plan.jobs)} planned jobs"
            )

    def __len__(self) -> int:
        return len(self.results)

    # -- generic access -------------------------------------------------

    def iter_points(self) -> Iterator[Tuple[PlannedJob, SimulationResult]]:
        """Every job — baselines included — with its metadata, in plan order."""
        return iter(zip(self.plan.meta, self.results))

    def baseline_result(self, meta: PlannedJob) -> Optional[SimulationResult]:
        if meta.baseline_index is None:
            return None
        return self.results[meta.baseline_index]

    def candidates(self) -> Iterator[Tuple[PlannedJob, SimulationResult]]:
        for meta, result in self.iter_points():
            if meta.kind == "candidate":
                yield meta, result

    def baselines(self) -> Iterator[Tuple[PlannedJob, SimulationResult]]:
        for meta, result in self.iter_points():
            if meta.kind == "baseline":
                yield meta, result

    # -- the legacy sweep-grid shape ------------------------------------

    def grid(
        self,
        config_label: Optional[str] = None,
        n_threads: Optional[int] = None,
    ) -> Dict[str, List[SweepPoint]]:
        """``{workload: [SweepPoint, ...]}`` — the shape the figure
        assembly helpers consume.

        Selects one config variant (default: the only one) and one
        thread point (default: the only one); a grid over several seeds
        is rejected because the legacy shape cannot carry it.
        """
        if len(self.spec.grid.seeds) != 1:
            raise ValueError("grid() needs a single-seed spec")
        if config_label is None:
            if len(self.spec.configs) != 1:
                raise ValueError(
                    "spec has several config variants; pass config_label"
                )
            config_label = self.spec.configs[0].label
        if n_threads is None:
            if len(self.spec.grid.threads) != 1:
                raise ValueError(
                    "spec has several thread points; pass n_threads"
                )
            n_threads = self.spec.grid.threads[0].n_threads
        out: Dict[str, List[SweepPoint]] = {w: [] for w in self.spec.workloads}
        for meta, result in self.candidates():
            if meta.config_label != config_label or meta.n_threads != n_threads:
                continue
            out[meta.workload].append(
                SweepPoint(
                    workload=meta.workload,
                    label=meta.label,
                    result=result,
                    baseline=self.baseline_result(meta),
                )
            )
        return out

    def summary(self) -> dict:
        """A light JSON-safe digest (the CLI's default output)."""
        points = []
        for meta, result in self.iter_points():
            row = {
                "index": meta.index,
                "kind": meta.kind,
                "workload": meta.workload,
                "seed": meta.seed,
                "n_threads": meta.n_threads,
                "config": meta.config_label,
                "label": meta.label,
                "cpi": result.cpi,
            }
            baseline = self.baseline_result(meta)
            if baseline is not None and meta.kind == "candidate":
                row["improvement"] = (baseline.cpi - result.cpi) / baseline.cpi
            if self.cached is not None:
                row["cached"] = self.cached[meta.index]
            if self.shards is not None and self.shards[meta.index] is not None:
                row["shard"] = self.shards[meta.index]
            points.append(row)
        return {
            "name": self.spec.name,
            "fingerprint": self.spec.fingerprint(),
            "jobs": len(self),
            "baselines": self.plan.n_baselines,
            "points": points,
        }


def run_spec(
    spec: SweepSpec,
    policy: Optional[ExecutionPolicy] = None,
    bus: Optional[object] = None,
    jobs: Optional[int] = None,
) -> SweepResult:
    """Execute ``spec`` locally and return its :class:`SweepResult`.

    ``policy`` overrides the spec's ``[execution]`` block wholesale when
    given (the CLI builds it by merging explicit flags over the block);
    otherwise the block's values apply.  Execution goes through
    :func:`repro.parallel.run_jobs` — pool management, retries,
    checkpointing and the cross-call trace-warm registry all behave
    exactly as for the imperative runners, which is what keeps spec runs
    bit-identical to them.
    """
    plan = expand(spec)
    if policy is None:
        policy = spec.execution.to_policy()
    with _kernel_env(spec.execution.kernel):
        results = run_jobs(plan.jobs, jobs=jobs, policy=policy, bus=bus)
    return SweepResult(spec=spec, plan=plan, results=tuple(results))
