"""Lowering a :class:`SweepSpec` into the executable ``JobSpec`` grid.

The expander is the single point where declarative sweeps meet the
execution machinery: every path — ``run_spec`` locally, the service's
``sweep`` handler, the router's per-shard fan-out — expands the *same*
spec into the *same* plan, which is what makes local and submitted
sweeps bit-identical.

Baseline dedup
--------------
A baseline (no-prefetching) run depends only on the grid cell —
``(workload, seed, records, n_threads, scale, config fingerprint)`` —
never on the candidate list, so one baseline job serves every candidate
in its cell.  Cells are keyed by the built config's *fingerprint*, so
two config variants that resolve to the same processor share one
baseline (the declarative generalisation of
:class:`~repro.parallel.ParallelSweepRunner`'s per-runner memo).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..parallel.jobs import JobSpec
from .schema import ConfigSpec, SweepSpec

__all__ = ["PlannedJob", "SweepPlan", "expand"]


@dataclass(frozen=True)
class PlannedJob:
    """Metadata for one expanded job (parallel to ``SweepPlan.jobs``).

    Carries everything needed to rebuild the job remotely: the wire
    ``sweep`` fan-out constructs extended ``simulate`` params from this
    record alone, and result streams are keyed by ``index``.
    """

    index: int
    kind: str  # "baseline" | "candidate"
    workload: str
    seed: int
    records: int
    n_threads: int
    scale: float
    warmup_records: Optional[int]
    config_label: str
    config_base: str
    config_overrides: Tuple[Tuple[str, Any], ...]
    prefetcher: str  # registry name; "none" for baselines
    prefetcher_overrides: Tuple[Tuple[str, Any], ...]
    label: str
    #: Index of this candidate's baseline job, or ``None`` (baselines
    #: themselves, and sweeps with ``output.baseline = false``).
    baseline_index: Optional[int] = None


@dataclass(frozen=True)
class SweepPlan:
    """An expanded spec: jobs ready to execute plus per-job metadata."""

    spec: SweepSpec
    jobs: Tuple[JobSpec, ...]
    meta: Tuple[PlannedJob, ...]

    def __len__(self) -> int:
        return len(self.jobs)

    @property
    def n_baselines(self) -> int:
        return sum(1 for m in self.meta if m.kind == "baseline")


def _cell_key(
    workload: str, seed: int, records: int, n_threads: int, scale: float,
    config_fp: tuple,
) -> tuple:
    return (workload, seed, records, n_threads, scale, config_fp)


def expand(spec: SweepSpec) -> SweepPlan:
    """Lower ``spec`` into its job grid (baselines first, then candidates).

    Expansion order is deterministic: configs × workloads × thread
    points × seeds, with the spec's prefetcher order preserved inside
    each cell — so a plan is a pure function of its spec.
    """
    jobs: List[JobSpec] = []
    meta: List[PlannedJob] = []
    baseline_at: Dict[tuple, int] = {}

    built_configs: Dict[str, Any] = {}
    config_fps: Dict[str, tuple] = {}
    for cfg in spec.configs:
        built_configs[cfg.label] = cfg.build()
        config_fps[cfg.label] = built_configs[cfg.label].fingerprint()

    def cells():
        for cfg in spec.configs:
            for workload in spec.workloads:
                for tp in spec.grid.threads:
                    records = tp.records if tp.records is not None else spec.grid.records
                    for seed in spec.grid.seeds:
                        yield cfg, workload, tp.n_threads, records, seed

    def planned(
        kind: str,
        cfg: ConfigSpec,
        workload: str,
        n_threads: int,
        records: int,
        seed: int,
        prefetcher: str,
        prefetcher_overrides: Tuple[Tuple[str, Any], ...],
        label: str,
        baseline_index: Optional[int],
    ) -> PlannedJob:
        return PlannedJob(
            index=len(jobs),
            kind=kind,
            workload=workload,
            seed=seed,
            records=records,
            n_threads=n_threads,
            scale=spec.grid.scale,
            warmup_records=spec.grid.warmup_records,
            config_label=cfg.label,
            config_base=cfg.base,
            config_overrides=cfg.overrides,
            prefetcher=prefetcher,
            prefetcher_overrides=prefetcher_overrides,
            label=label,
            baseline_index=baseline_index,
        )

    if spec.output.baseline:
        for cfg, workload, n_threads, records, seed in cells():
            key = _cell_key(
                workload, seed, records, n_threads, spec.grid.scale,
                config_fps[cfg.label],
            )
            if key in baseline_at:
                continue
            baseline_at[key] = len(jobs)
            meta.append(
                planned(
                    "baseline", cfg, workload, n_threads, records, seed,
                    "none", (), "baseline", None,
                )
            )
            jobs.append(
                JobSpec(
                    workload=workload,
                    records=records,
                    seed=seed,
                    config=built_configs[cfg.label],
                    prefetcher=None,
                    label="baseline",
                    scale=spec.grid.scale,
                    n_threads=n_threads,
                    warmup_records=spec.grid.warmup_records,
                    compressed=spec.execution.compressed,
                )
            )

    for cfg, workload, n_threads, records, seed in cells():
        key = _cell_key(
            workload, seed, records, n_threads, spec.grid.scale,
            config_fps[cfg.label],
        )
        for pf in spec.prefetchers:
            meta.append(
                planned(
                    "candidate", cfg, workload, n_threads, records, seed,
                    pf.name, pf.overrides, pf.effective_label,
                    baseline_at.get(key),
                )
            )
            jobs.append(
                JobSpec(
                    workload=workload,
                    records=records,
                    seed=seed,
                    config=built_configs[cfg.label],
                    prefetcher=pf.build(),
                    label=pf.effective_label,
                    scale=spec.grid.scale,
                    n_threads=n_threads,
                    warmup_records=spec.grid.warmup_records,
                    compressed=spec.execution.compressed,
                )
            )

    return SweepPlan(spec=spec, jobs=tuple(jobs), meta=tuple(meta))
