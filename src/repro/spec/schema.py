"""The frozen, versioned sweep-spec schema.

A :class:`SweepSpec` is pure data: workloads × a records/seed grid ×
processor-config variants × a prefetcher list, plus an execution-policy
block and output hints.  It is the *one* description of a sweep that
every execution path consumes — ``run_spec`` locally, ``submit_spec``
against a running service, and the committed ``specs/*.toml`` files the
paper experiments are instances of.

Design rules
------------
* **Frozen.** Every node is a frozen dataclass; mappings are stored as
  sorted item tuples so specs are hashable and their canonical JSON is
  deterministic — :meth:`SweepSpec.fingerprint` is a content address.
* **Versioned.** ``version`` names the schema, not the spec.  This
  build executes :data:`SPEC_VERSION`; anything else is rejected with a
  :class:`~repro.spec.errors.SpecVersionError` rather than guessed at.
* **Strict.** Unknown keys, wrong types, unknown workload/prefetcher
  names and unknown ``ProcessorConfig`` fields all fail loading with a
  :class:`~repro.spec.errors.SpecError` carrying the field path.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Tuple

from ..engine.config import CacheConfig, ProcessorConfig
from ..prefetchers.base import Prefetcher
from ..prefetchers.registry import PREFETCHERS, build_prefetcher
from ..resilience.policy import ExecutionPolicy
from ..workloads.registry import WORKLOADS
from .errors import SpecError, SpecVersionError

__all__ = [
    "SPEC_VERSION",
    "CONFIG_BASES",
    "PrefetcherSpec",
    "ConfigSpec",
    "ThreadPoint",
    "GridSpec",
    "ExecutionSpec",
    "OutputSpec",
    "SweepSpec",
]

#: The schema version this build reads and writes.
SPEC_VERSION = 1

#: Valid ``ConfigSpec.base`` values and the constructor each names.
CONFIG_BASES = ("scaled", "paper")

_CACHE_LEVELS = ("l1i", "l1d", "l2")
_CONFIG_FIELDS = {f.name for f in dataclasses.fields(ProcessorConfig)}
_CACHE_FIELDS = {f.name for f in dataclasses.fields(CacheConfig)}
_X_AXES = ("prefetcher", "config", "threads")


# ----------------------------------------------------------------------
# Validation helpers.  All take the field path so errors point at the
# exact offending value.
# ----------------------------------------------------------------------


def _require_mapping(value: Any, path: str) -> Mapping:
    if not isinstance(value, Mapping):
        raise SpecError(path, f"expected a table/object, got {type(value).__name__}")
    return value


def _require_str(value: Any, path: str, *, allow_empty: bool = False) -> str:
    if not isinstance(value, str):
        raise SpecError(path, f"expected a string, got {type(value).__name__}")
    if not value and not allow_empty:
        raise SpecError(path, "must not be empty")
    return value


def _require_int(
    value: Any, path: str, *, minimum: Optional[int] = None
) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(path, f"expected an integer, got {type(value).__name__}")
    if minimum is not None and value < minimum:
        raise SpecError(path, f"must be >= {minimum}, got {value}")
    return value


def _require_number(
    value: Any, path: str, *, minimum: Optional[float] = None
) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SpecError(path, f"expected a number, got {type(value).__name__}")
    out = float(value)
    if minimum is not None and out < minimum:
        raise SpecError(path, f"must be >= {minimum}, got {value}")
    return out


def _require_bool(value: Any, path: str) -> bool:
    if not isinstance(value, bool):
        raise SpecError(path, f"expected a boolean, got {type(value).__name__}")
    return value


def _require_list(value: Any, path: str, *, allow_empty: bool = False) -> list:
    if isinstance(value, (str, bytes)) or not isinstance(value, (list, tuple)):
        raise SpecError(path, f"expected a list, got {type(value).__name__}")
    if not value and not allow_empty:
        raise SpecError(path, "must not be empty")
    return list(value)


def _reject_unknown(payload: Mapping, known: Tuple[str, ...], path: str) -> None:
    for key in payload:
        if key not in known:
            where = f"{path}.{key}" if path else str(key)
            raise SpecError(where, f"unknown key {key!r}")


def _scalar(value: Any, path: str) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise SpecError(path, f"expected a scalar, got {type(value).__name__}")


def _items(overrides: Mapping, path: str) -> Tuple[Tuple[str, Any], ...]:
    """A mapping as a sorted, hashable item tuple (one nesting level)."""
    out = []
    for key in sorted(overrides):
        value = overrides[key]
        where = f"{path}.{key}"
        if isinstance(value, Mapping):
            value = tuple(
                (str(k), _scalar(v, f"{where}.{k}")) for k, v in sorted(value.items())
            )
        else:
            value = _scalar(value, where)
        out.append((str(key), value))
    return tuple(out)


def _items_to_dict(items: Tuple[Tuple[str, Any], ...]) -> dict:
    return {
        key: dict(value) if isinstance(value, tuple) else value
        for key, value in items
    }


# ----------------------------------------------------------------------
# Schema nodes
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PrefetcherSpec:
    """One candidate prefetcher: a registry name plus constructor overrides."""

    name: str
    label: str = ""
    overrides: Tuple[Tuple[str, Any], ...] = ()

    @property
    def effective_label(self) -> str:
        return self.label or self.name

    def build(self) -> Optional[Prefetcher]:
        """A fresh instance (its initial state is part of job identity)."""
        if self.name == "none":
            return None
        return build_prefetcher(self.name, **_items_to_dict(self.overrides))

    def to_dict(self) -> dict:
        out: dict = {"name": self.name}
        if self.label:
            out["label"] = self.label
        if self.overrides:
            out["overrides"] = _items_to_dict(self.overrides)
        return out

    @classmethod
    def from_dict(cls, payload: Any, path: str = "prefetchers") -> "PrefetcherSpec":
        payload = _require_mapping(payload, path)
        _reject_unknown(payload, ("name", "label", "overrides"), path)
        name = _require_str(payload.get("name"), f"{path}.name")
        if name != "none" and name not in PREFETCHERS:
            raise SpecError(
                f"{path}.name",
                f"unknown prefetcher {name!r} (known: {', '.join(PREFETCHERS)})",
            )
        label = _require_str(
            payload.get("label", ""), f"{path}.label", allow_empty=True
        )
        overrides = _items(
            _require_mapping(payload.get("overrides", {}), f"{path}.overrides"),
            f"{path}.overrides",
        )
        for key, value in overrides:
            if isinstance(value, tuple):
                raise SpecError(
                    f"{path}.overrides.{key}", "must be a scalar, got a table"
                )
        if name == "none" and overrides:
            raise SpecError(f"{path}.overrides", "'none' takes no overrides")
        return cls(name=name, label=label, overrides=overrides)


@dataclass(frozen=True)
class ConfigSpec:
    """One processor-config variant: a named base plus field overrides.

    Cache levels (``l1i``/``l1d``/``l2``) may be overridden as nested
    tables whose keys are :class:`~repro.engine.config.CacheConfig`
    fields; every other key must name a ``ProcessorConfig`` field.
    """

    label: str = "default"
    base: str = "scaled"
    overrides: Tuple[Tuple[str, Any], ...] = ()

    def build(self) -> ProcessorConfig:
        base = (
            ProcessorConfig.paper() if self.base == "paper" else ProcessorConfig.scaled()
        )
        if not self.overrides:
            return base
        changes: dict = {}
        for key, value in self.overrides:
            if key in _CACHE_LEVELS:
                changes[key] = dataclasses.replace(
                    getattr(base, key), **dict(value)
                )
            else:
                current = getattr(base, key)
                if isinstance(current, float) and isinstance(value, int):
                    value = float(value)
                changes[key] = value
        return base.replace(**changes)

    def fingerprint(self) -> tuple:
        return self.build().fingerprint()

    def to_dict(self) -> dict:
        out: dict = {"label": self.label, "base": self.base}
        if self.overrides:
            out["overrides"] = _items_to_dict(self.overrides)
        return out

    @classmethod
    def from_dict(cls, payload: Any, path: str = "configs") -> "ConfigSpec":
        payload = _require_mapping(payload, path)
        _reject_unknown(payload, ("label", "base", "overrides"), path)
        label = _require_str(payload.get("label", "default"), f"{path}.label")
        base = _require_str(payload.get("base", "scaled"), f"{path}.base")
        if base not in CONFIG_BASES:
            raise SpecError(
                f"{path}.base",
                f"unknown base {base!r} (expected one of {CONFIG_BASES})",
            )
        overrides = _items(
            _require_mapping(payload.get("overrides", {}), f"{path}.overrides"),
            f"{path}.overrides",
        )
        for key, value in overrides:
            where = f"{path}.overrides.{key}"
            if key in _CACHE_LEVELS:
                if not isinstance(value, tuple):
                    raise SpecError(where, "cache-level override must be a table")
                for cache_key, _ in value:
                    if cache_key not in _CACHE_FIELDS:
                        raise SpecError(
                            f"{where}.{cache_key}",
                            f"unknown CacheConfig field {cache_key!r}",
                        )
            elif key not in _CONFIG_FIELDS:
                raise SpecError(
                    where, f"unknown ProcessorConfig field {key!r}"
                )
            elif isinstance(value, tuple):
                raise SpecError(where, "must be a scalar, got a table")
        spec = cls(label=label, base=base, overrides=overrides)
        try:
            spec.build()
        except (TypeError, ValueError) as exc:
            raise SpecError(f"{path}.overrides", f"rejected by ProcessorConfig: {exc}")
        return spec


@dataclass(frozen=True)
class ThreadPoint:
    """One CMP point: thread count plus optional per-thread records.

    ``n_threads = 0`` is the single-threaded trace; ``records = None``
    inherits the grid's record count (counted *per thread* when
    ``n_threads > 0``, matching :class:`~repro.parallel.JobSpec`).
    """

    n_threads: int = 0
    records: Optional[int] = None

    def to_dict(self) -> dict:
        out: dict = {"n_threads": self.n_threads}
        if self.records is not None:
            out["records"] = self.records
        return out

    @classmethod
    def from_dict(cls, payload: Any, path: str = "grid.threads") -> "ThreadPoint":
        payload = _require_mapping(payload, path)
        _reject_unknown(payload, ("n_threads", "records"), path)
        n_threads = _require_int(
            payload.get("n_threads", 0), f"{path}.n_threads", minimum=0
        )
        records = payload.get("records")
        if records is not None:
            records = _require_int(records, f"{path}.records", minimum=1)
        return cls(n_threads=n_threads, records=records)


@dataclass(frozen=True)
class GridSpec:
    """The workload-independent job grid: records × seeds × thread points."""

    records: int = 280_000
    seeds: Tuple[int, ...] = (7,)
    warmup_records: Optional[int] = None
    scale: float = 1.0
    threads: Tuple[ThreadPoint, ...] = (ThreadPoint(),)

    def to_dict(self) -> dict:
        out: dict = {"records": self.records, "seeds": list(self.seeds)}
        if self.warmup_records is not None:
            out["warmup_records"] = self.warmup_records
        if self.scale != 1.0:
            out["scale"] = self.scale
        if self.threads != (ThreadPoint(),):
            out["threads"] = [tp.to_dict() for tp in self.threads]
        return out

    @classmethod
    def from_dict(cls, payload: Any, path: str = "grid") -> "GridSpec":
        payload = _require_mapping(payload, path)
        _reject_unknown(
            payload, ("records", "seeds", "warmup_records", "scale", "threads"), path
        )
        records = _require_int(
            payload.get("records", 280_000), f"{path}.records", minimum=1
        )
        seeds = tuple(
            _require_int(seed, f"{path}.seeds[{i}]", minimum=0)
            for i, seed in enumerate(_require_list(payload.get("seeds", [7]), f"{path}.seeds"))
        )
        if len(set(seeds)) != len(seeds):
            raise SpecError(f"{path}.seeds", "seeds must be distinct")
        warmup = payload.get("warmup_records")
        if warmup is not None:
            warmup = _require_int(warmup, f"{path}.warmup_records", minimum=0)
        scale = _require_number(payload.get("scale", 1.0), f"{path}.scale")
        if scale <= 0:
            raise SpecError(f"{path}.scale", f"must be > 0, got {scale}")
        raw_threads = payload.get("threads", [{"n_threads": 0}])
        threads = tuple(
            ThreadPoint.from_dict(tp, f"{path}.threads[{i}]")
            for i, tp in enumerate(_require_list(raw_threads, f"{path}.threads"))
        )
        if len(set(threads)) != len(threads):
            raise SpecError(f"{path}.threads", "thread points must be distinct")
        return cls(
            records=records,
            seeds=seeds,
            warmup_records=warmup,
            scale=scale,
            threads=threads,
        )


@dataclass(frozen=True)
class ExecutionSpec:
    """The spec's execution-policy block (lowered to ``ExecutionPolicy``).

    Everything here is *how* to run, never *what*: with the single
    exception of ``compressed``/``kernel`` — both pinned bit-identical
    by the goldens — no field may change results.  CLI flags override
    these values; the spec provides the defaults.
    """

    jobs: Optional[int] = None
    compressed: Optional[bool] = None
    kernel: Optional[bool] = None
    timeout_s: Optional[float] = None
    retries: int = 1
    backoff_s: float = 0.25
    checkpoint_dir: Optional[str] = None

    def to_policy(self, **overrides: Any) -> ExecutionPolicy:
        values = {
            "jobs": self.jobs,
            "compressed": self.compressed,
            "timeout_s": self.timeout_s,
            "retries": self.retries,
            "backoff_s": self.backoff_s,
            "checkpoint_dir": self.checkpoint_dir,
        }
        values.update({k: v for k, v in overrides.items() if v is not None})
        return ExecutionPolicy(**values)

    def to_dict(self) -> dict:
        out: dict = {}
        for name in (
            "jobs",
            "compressed",
            "kernel",
            "timeout_s",
            "checkpoint_dir",
        ):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        if self.retries != 1:
            out["retries"] = self.retries
        if self.backoff_s != 0.25:
            out["backoff_s"] = self.backoff_s
        return out

    @classmethod
    def from_dict(cls, payload: Any, path: str = "execution") -> "ExecutionSpec":
        payload = _require_mapping(payload, path)
        _reject_unknown(
            payload,
            (
                "jobs",
                "compressed",
                "kernel",
                "timeout_s",
                "retries",
                "backoff_s",
                "checkpoint_dir",
            ),
            path,
        )
        jobs = payload.get("jobs")
        if jobs is not None:
            jobs = _require_int(jobs, f"{path}.jobs", minimum=0)
        compressed = payload.get("compressed")
        if compressed is not None:
            compressed = _require_bool(compressed, f"{path}.compressed")
        kernel = payload.get("kernel")
        if kernel is not None:
            kernel = _require_bool(kernel, f"{path}.kernel")
        timeout_s = payload.get("timeout_s")
        if timeout_s is not None:
            timeout_s = _require_number(timeout_s, f"{path}.timeout_s")
            if timeout_s <= 0:
                raise SpecError(f"{path}.timeout_s", "must be > 0")
        retries = _require_int(payload.get("retries", 1), f"{path}.retries", minimum=0)
        backoff_s = _require_number(
            payload.get("backoff_s", 0.25), f"{path}.backoff_s", minimum=0.0
        )
        checkpoint_dir = payload.get("checkpoint_dir")
        if checkpoint_dir is not None:
            checkpoint_dir = _require_str(checkpoint_dir, f"{path}.checkpoint_dir")
        return cls(
            jobs=jobs,
            compressed=compressed,
            kernel=kernel,
            timeout_s=timeout_s,
            retries=retries,
            backoff_s=backoff_s,
            checkpoint_dir=checkpoint_dir,
        )


@dataclass(frozen=True)
class OutputSpec:
    """Presentation hints: baselines, axis naming, titling."""

    baseline: bool = True
    x_axis: str = "prefetcher"
    x_label: str = ""
    title: str = ""

    def to_dict(self) -> dict:
        out: dict = {}
        if not self.baseline:
            out["baseline"] = False
        if self.x_axis != "prefetcher":
            out["x_axis"] = self.x_axis
        if self.x_label:
            out["x_label"] = self.x_label
        if self.title:
            out["title"] = self.title
        return out

    @classmethod
    def from_dict(cls, payload: Any, path: str = "output") -> "OutputSpec":
        payload = _require_mapping(payload, path)
        _reject_unknown(payload, ("baseline", "x_axis", "x_label", "title"), path)
        baseline = _require_bool(payload.get("baseline", True), f"{path}.baseline")
        x_axis = _require_str(payload.get("x_axis", "prefetcher"), f"{path}.x_axis")
        if x_axis not in _X_AXES:
            raise SpecError(
                f"{path}.x_axis", f"unknown axis {x_axis!r} (expected one of {_X_AXES})"
            )
        x_label = _require_str(
            payload.get("x_label", ""), f"{path}.x_label", allow_empty=True
        )
        title = _require_str(
            payload.get("title", ""), f"{path}.title", allow_empty=True
        )
        return cls(baseline=baseline, x_axis=x_axis, x_label=x_label, title=title)


@dataclass(frozen=True)
class SweepSpec:
    """A complete, frozen description of one sweep."""

    name: str
    workloads: Tuple[str, ...]
    version: int = SPEC_VERSION
    description: str = ""
    grid: GridSpec = field(default_factory=GridSpec)
    configs: Tuple[ConfigSpec, ...] = (ConfigSpec(),)
    prefetchers: Tuple[PrefetcherSpec, ...] = ()
    execution: ExecutionSpec = field(default_factory=ExecutionSpec)
    output: OutputSpec = field(default_factory=OutputSpec)

    # -- lookups --------------------------------------------------------

    def config_by_label(self, label: str) -> ConfigSpec:
        for cfg in self.configs:
            if cfg.label == label:
                return cfg
        raise KeyError(label)

    # -- derivation -----------------------------------------------------

    def replace(self, **changes: Any) -> "SweepSpec":
        """A copy with top-level fields replaced (validation re-applied)."""
        return type(self).from_dict(
            {**self.to_dict(), **{k: v for k, v in changes.items()}}
        )

    def with_grid(self, **changes: Any) -> "SweepSpec":
        """A copy with grid fields replaced — the records/seed override hook."""
        grid = self.grid.to_dict()
        for key, value in changes.items():
            if value is None:
                continue
            grid[key] = value
        return self.replace(grid=grid)

    # -- serialisation --------------------------------------------------

    def to_dict(self) -> dict:
        out: dict = {
            "version": self.version,
            "name": self.name,
            "workloads": list(self.workloads),
            "grid": self.grid.to_dict(),
        }
        if self.description:
            out["description"] = self.description
        if self.configs != (ConfigSpec(),):
            out["configs"] = [cfg.to_dict() for cfg in self.configs]
        if self.prefetchers:
            out["prefetchers"] = [pf.to_dict() for pf in self.prefetchers]
        execution = self.execution.to_dict()
        if execution:
            out["execution"] = execution
        output = self.output.to_dict()
        if output:
            out["output"] = output
        return out

    def fingerprint(self) -> str:
        """A content address: sha256 of the canonical JSON form."""
        canon = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()

    @classmethod
    def from_dict(cls, payload: Any) -> "SweepSpec":
        payload = _require_mapping(payload, "")
        _reject_unknown(
            payload,
            (
                "version",
                "name",
                "description",
                "workloads",
                "grid",
                "configs",
                "prefetchers",
                "execution",
                "output",
            ),
            "",
        )
        if "version" not in payload:
            raise SpecError("version", "missing required key")
        version = payload["version"]
        if isinstance(version, bool) or not isinstance(version, int):
            raise SpecVersionError(
                "version",
                f"expected an integer, got {type(version).__name__}",
                found=version,
            )
        if version != SPEC_VERSION:
            raise SpecVersionError(
                "version",
                f"schema version {version} not supported (this build reads "
                f"version {SPEC_VERSION})",
                found=version,
            )
        name = _require_str(payload.get("name"), "name")
        description = _require_str(
            payload.get("description", ""), "description", allow_empty=True
        )
        raw_workloads = _require_list(payload.get("workloads"), "workloads")
        workloads = []
        for i, workload in enumerate(raw_workloads):
            workload = _require_str(workload, f"workloads[{i}]")
            if workload not in WORKLOADS:
                raise SpecError(
                    f"workloads[{i}]",
                    f"unknown workload {workload!r} (known: {', '.join(WORKLOADS)})",
                )
            if workload in workloads:
                raise SpecError(f"workloads[{i}]", f"duplicate workload {workload!r}")
            workloads.append(workload)
        grid = GridSpec.from_dict(payload.get("grid", {}), "grid")
        raw_configs = payload.get("configs")
        if raw_configs is None:
            configs: Tuple[ConfigSpec, ...] = (ConfigSpec(),)
        else:
            configs = tuple(
                ConfigSpec.from_dict(cfg, f"configs[{i}]")
                for i, cfg in enumerate(_require_list(raw_configs, "configs"))
            )
            labels = [cfg.label for cfg in configs]
            if len(set(labels)) != len(labels):
                raise SpecError("configs", "config labels must be unique")
        raw_prefetchers = payload.get("prefetchers", [])
        prefetchers = tuple(
            PrefetcherSpec.from_dict(pf, f"prefetchers[{i}]")
            for i, pf in enumerate(
                _require_list(raw_prefetchers, "prefetchers", allow_empty=True)
            )
        )
        pf_labels = [pf.effective_label for pf in prefetchers]
        if len(set(pf_labels)) != len(pf_labels):
            raise SpecError("prefetchers", "prefetcher labels must be unique")
        execution = ExecutionSpec.from_dict(payload.get("execution", {}), "execution")
        output = OutputSpec.from_dict(payload.get("output", {}), "output")
        if not prefetchers and not output.baseline:
            raise SpecError(
                "prefetchers",
                "empty sweep: no prefetchers and output.baseline is false",
            )
        for i, pf in enumerate(prefetchers):
            if pf.name == "none":
                raise SpecError(
                    f"prefetchers[{i}].name",
                    "'none' is implied by output.baseline; list candidates only",
                )
        return cls(
            name=name,
            workloads=tuple(workloads),
            version=version,
            description=description,
            grid=grid,
            configs=configs,
            prefetchers=prefetchers,
            execution=execution,
            output=output,
        )
