"""Stdlib logging wiring for the CLI and library.

Every module in the package logs under the ``repro`` namespace
(``logging.getLogger("repro.engine.simulator")`` etc.); nothing is
printed unless the embedding application configures handlers.  The CLI
calls :func:`configure_logging` with the net ``-v`` / ``-q`` count.
"""

from __future__ import annotations

import logging

__all__ = ["configure_logging", "verbosity_to_level"]

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def verbosity_to_level(verbosity: int) -> int:
    """Map a net verbosity count to a logging level.

    ``-q`` subtracts one, each ``-v`` adds one: -1 or less -> ERROR,
    0 -> WARNING (default), 1 -> INFO, 2+ -> DEBUG.
    """
    if verbosity <= -1:
        return logging.ERROR
    if verbosity == 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure_logging(verbosity: int = 0) -> logging.Logger:
    """Configure the ``repro`` logger tree for CLI use; returns its root."""
    logger = logging.getLogger("repro")
    logger.setLevel(verbosity_to_level(verbosity))
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt="%H:%M:%S"))
        logger.addHandler(handler)
    return logger
