"""The typed event bus.

One :class:`EventBus` instance is shared by every component of a
simulation (engine, hierarchy, prefetch buffer, bandwidth model,
prefetcher).  Subscribers register per event *type*; emitters guard hot
paths with :meth:`EventBus.wants` so that an unobserved event is never
even constructed.

Null-sink fast path
-------------------
Observability is off by default: components hold ``bus = None`` and every
emission site reduces to a single ``is not None`` check.  When a bus is
attached but a given event type has no subscriber, ``wants`` returns
False and the emitter skips building the event object.  This keeps the
instrumented simulator within measurement noise of the uninstrumented
one (verified by ``tests/test_obs_bus.py`` and the bench suite).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Type

from .events import Event

__all__ = ["EventBus", "global_bus", "peek_global_bus", "reset_global_bus"]

Callback = Callable[[Event], None]


class EventBus:
    """Synchronous publish/subscribe bus keyed on event type."""

    def __init__(self) -> None:
        self._subscribers: Dict[type, List[Callback]] = {}
        self._all: List[Callback] = []
        #: Total events delivered (for manifests and sanity checks).
        self.emitted = 0

    # ------------------------------------------------------------------
    # Subscription
    # ------------------------------------------------------------------
    def subscribe(self, event_type: Type[Event], callback: Callback) -> Callable[[], None]:
        """Register ``callback`` for one event type; returns an unsubscriber."""
        if not (isinstance(event_type, type) and issubclass(event_type, Event)):
            raise TypeError(f"{event_type!r} is not an Event type")
        self._subscribers.setdefault(event_type, []).append(callback)

        def unsubscribe() -> None:
            callbacks = self._subscribers.get(event_type)
            if callbacks and callback in callbacks:
                callbacks.remove(callback)
                if not callbacks:
                    del self._subscribers[event_type]

        return unsubscribe

    def subscribe_all(self, callback: Callback) -> Callable[[], None]:
        """Register ``callback`` for every event type."""
        self._all.append(callback)

        def unsubscribe() -> None:
            if callback in self._all:
                self._all.remove(callback)

        return unsubscribe

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def wants(self, event_type: Type[Event]) -> bool:
        """True when at least one subscriber would receive this type.

        Emitters on hot paths call this *before* constructing the event so
        an unobserved simulation does no extra allocation.
        """
        return bool(self._all) or event_type in self._subscribers

    def emit(self, event: Event) -> None:
        """Deliver ``event`` synchronously to its subscribers, in order.

        Type-specific subscribers run before catch-all subscribers, each
        group in registration order.
        """
        delivered = False
        callbacks = self._subscribers.get(type(event))
        if callbacks:
            delivered = True
            for callback in list(callbacks):
                callback(event)
        if self._all:
            delivered = True
            for callback in list(self._all):
                callback(event)
        if delivered:
            self.emitted += 1

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True when anything at all is subscribed."""
        return bool(self._all) or bool(self._subscribers)

    def clear(self) -> None:
        """Drop every subscription (the bus can be reused afterwards)."""
        self._subscribers.clear()
        self._all.clear()


# ----------------------------------------------------------------------
# Process-wide bus
# ----------------------------------------------------------------------
# Layers with no bus plumbing of their own (the on-disk caches, the
# resilient executor when its caller attached no bus) emit here.  The bus
# is created lazily by the first *subscriber*: emitters use
# ``peek_global_bus`` and pay only a module-global load when nobody is
# listening.
_GLOBAL_BUS: Optional[EventBus] = None


def global_bus() -> EventBus:
    """The process-wide bus, created on first use (for subscribers)."""
    global _GLOBAL_BUS
    if _GLOBAL_BUS is None:
        _GLOBAL_BUS = EventBus()
    return _GLOBAL_BUS


def peek_global_bus() -> Optional[EventBus]:
    """The process-wide bus if one exists — never creates (for emitters)."""
    return _GLOBAL_BUS


def reset_global_bus() -> None:
    """Drop the process-wide bus entirely (tests)."""
    global _GLOBAL_BUS
    _GLOBAL_BUS = None
