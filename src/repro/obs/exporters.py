"""Event-trace exporters and the per-run manifest.

Three output formats:

* **JSONL** (:class:`JsonlTraceWriter`) — one JSON object per event, in
  emission order, with an ``event`` type tag and a monotonically
  increasing ``seq``.  Greppable, streamable, diffable.
* **Chrome trace events** (:class:`ChromeTraceExporter`) — the
  ``chrome://tracing`` / Perfetto JSON format.  Epochs render as
  complete ("X") slices on the *epochs* track with simulated cycles
  mapped to microseconds, prefetch lifecycle events as instants ("i"),
  and read-bus utilisation as a counter ("C") series — open the file in
  `ui.perfetto.dev <https://ui.perfetto.dev>`_ to scrub the epoch
  timeline the paper's Figure 1 sketches.
* **Run manifest** (:class:`RunManifest`) — one JSON document capturing
  what ran (workload, prefetcher, seed, records, config summary), what
  happened (result metrics, event counts), and how long each phase took
  (:class:`PhaseTimer` scopes around ``time.perf_counter``).
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import IO, Dict, List, Optional, Union

from .bus import EventBus
from .events import (
    AccessResolved,
    BudgetExhausted,
    EpochClosed,
    Event,
    PrefetchDropped,
    PrefetchFilled,
    PrefetchHit,
    PrefetchIssued,
    event_payload,
)

__all__ = [
    "JsonlTraceWriter",
    "read_jsonl",
    "ChromeTraceExporter",
    "PhaseTimer",
    "RunManifest",
]

PathLike = Union[str, Path]


class JsonlTraceWriter:
    """Stream every bus event to a JSONL file (or file-like object)."""

    def __init__(self, target: Union[PathLike, IO[str]], bus: Optional[EventBus] = None) -> None:
        if hasattr(target, "write"):
            self._fh: IO[str] = target  # type: ignore[assignment]
            self._owns_fh = False
        else:
            self._fh = open(Path(target), "w", encoding="utf-8")
            self._owns_fh = True
        self.events_written = 0
        self._unsubscribe = None
        if bus is not None:
            self.attach(bus)

    # ------------------------------------------------------------------
    def attach(self, bus: EventBus) -> "JsonlTraceWriter":
        self._unsubscribe = bus.subscribe_all(self.write_event)
        return self

    def write_event(self, event: Event) -> None:
        payload = event_payload(event)
        payload["seq"] = self.events_written
        self._fh.write(json.dumps(payload, separators=(",", ":")) + "\n")
        self.events_written += 1

    def close(self) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        if self._owns_fh:
            self._fh.close()

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_jsonl(path: PathLike) -> List[dict]:
    """Load a JSONL event trace back into a list of dicts."""
    records = []
    with open(Path(path), encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


class ChromeTraceExporter:
    """Collect bus events into a Chrome trace-event JSON document.

    Simulated cycles map 1:1 to trace microseconds (the viewer's native
    unit), so a 400-cycle epoch renders as a 400 µs slice.  Tracks:

    * pid 0 / tid 0 — *epochs*: one "X" slice per closed epoch;
    * pid 0 / tid 1 — *prefetches*: instant events for issue / fill /
      drop / hit;
    * counter track — *read-bus utilisation* sampled at each close.
    """

    #: Synthetic thread ids for the two tracks.
    EPOCH_TID = 0
    PREFETCH_TID = 1

    def __init__(self, bus: Optional[EventBus] = None) -> None:
        self.trace_events: List[dict] = [
            {"ph": "M", "pid": 0, "name": "process_name", "args": {"name": "repro-ebcp"}},
            {"ph": "M", "pid": 0, "tid": self.EPOCH_TID, "name": "thread_name",
             "args": {"name": "epochs"}},
            {"ph": "M", "pid": 0, "tid": self.PREFETCH_TID, "name": "thread_name",
             "args": {"name": "prefetches"}},
        ]
        self._last_cycle = 0.0
        self._unsubscribe: List = []
        if bus is not None:
            self.attach(bus)

    # ------------------------------------------------------------------
    def attach(self, bus: EventBus) -> "ChromeTraceExporter":
        self._unsubscribe = [
            bus.subscribe(EpochClosed, self._on_epoch),
            bus.subscribe(PrefetchIssued, self._on_issued),
            bus.subscribe(PrefetchFilled, self._on_filled),
            bus.subscribe(PrefetchDropped, self._on_dropped),
            bus.subscribe(PrefetchHit, self._on_hit),
            bus.subscribe(BudgetExhausted, self._on_budget),
        ]
        return self

    def detach(self) -> None:
        for unsubscribe in self._unsubscribe:
            unsubscribe()
        self._unsubscribe = []

    # ------------------------------------------------------------------
    def _on_epoch(self, event: EpochClosed) -> None:
        self._last_cycle = max(self._last_cycle, event.start_cycle + event.duration_cycles)
        self.trace_events.append(
            {
                "name": f"epoch {event.index}",
                "cat": "epoch",
                "ph": "X",
                "ts": round(event.start_cycle, 3),
                "dur": round(event.duration_cycles, 3),
                "pid": 0,
                "tid": self.EPOCH_TID,
                "args": {
                    "misses": event.n_misses,
                    "mlp": event.mlp,
                    "read_utilization": round(event.read_utilization, 4),
                    "queueing_cycles": round(event.queueing_cycles, 2),
                    "measured": event.measured,
                    "trigger_line": event.epoch.trigger_line,
                },
            }
        )
        self.trace_events.append(
            {
                "name": "read-bus utilisation",
                "ph": "C",
                "ts": round(event.start_cycle + event.duration_cycles, 3),
                "pid": 0,
                "args": {"utilization": round(event.read_utilization, 4)},
            }
        )

    def _instant(self, name: str, args: dict) -> None:
        self.trace_events.append(
            {
                "name": name,
                "cat": "prefetch",
                "ph": "i",
                "s": "t",
                "ts": round(self._last_cycle, 3),
                "pid": 0,
                "tid": self.PREFETCH_TID,
                "args": args,
            }
        )

    def _on_issued(self, event: PrefetchIssued) -> None:
        self._instant("issue", {"line": event.line, "source": event.source})

    def _on_filled(self, event: PrefetchFilled) -> None:
        self._instant(
            "fill", {"line": event.line, "issue_epoch": event.issue_epoch}
        )

    def _on_dropped(self, event: PrefetchDropped) -> None:
        self._instant("drop", {"line": event.line, "reason": event.reason})

    def _on_hit(self, event: PrefetchHit) -> None:
        self._instant(
            "hit",
            {
                "line": event.line,
                "lead_epochs": event.lead_epochs,
                "source": event.source,
            },
        )

    def _on_budget(self, event: BudgetExhausted) -> None:
        self._instant(
            "budget-exhausted",
            {"bus": event.bus, "nbytes": event.nbytes},
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "traceEvents": self.trace_events,
            "displayTimeUnit": "ms",
            "otherData": {"time_unit": "1 simulated cycle = 1us"},
        }

    def write(self, path: PathLike) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=1), encoding="utf-8")
        return path


class PhaseTimer:
    """Named wall-time scopes measured with ``time.perf_counter``.

    >>> timer = PhaseTimer()
    >>> with timer.phase("simulate"):
    ...     pass
    >>> "simulate" in timer.seconds
    True
    """

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}

    class _Scope:
        def __init__(self, timer: "PhaseTimer", name: str) -> None:
            self._timer = timer
            self._name = name
            self._start = 0.0

        def __enter__(self) -> "PhaseTimer._Scope":
            self._start = time.perf_counter()
            return self

        def __exit__(self, *exc: object) -> None:
            elapsed = time.perf_counter() - self._start
            seconds = self._timer.seconds
            seconds[self._name] = seconds.get(self._name, 0.0) + elapsed

    def phase(self, name: str) -> "PhaseTimer._Scope":
        return self._Scope(self, name)


class RunManifest:
    """Reproducibility record for one run: inputs, outputs, wall time.

    Everything except the ``wall`` section is a deterministic function of
    (workload, prefetcher, records, seed, config) — the exporter tests
    assert exactly that.
    """

    def __init__(
        self,
        workload: str,
        prefetcher: str,
        records: int,
        seed: int,
        config_summary: Optional[dict] = None,
    ) -> None:
        self.workload = workload
        self.prefetcher = prefetcher
        self.records = records
        self.seed = seed
        self.config_summary = dict(config_summary or {})
        self.timer = PhaseTimer()
        self.result: dict = {}
        self.event_counts: Dict[str, int] = {}
        self.extra: dict = {}

    # ------------------------------------------------------------------
    def phase(self, name: str) -> "PhaseTimer._Scope":
        return self.timer.phase(name)

    def record_result(self, result_dict: dict) -> None:
        self.result = dict(result_dict)

    def count_events(self, bus: EventBus) -> "RunManifest":
        """Subscribe a per-type event tally to ``bus``."""

        def tally(event: Event) -> None:
            name = type(event).__name__
            self.event_counts[name] = self.event_counts.get(name, 0) + 1

        bus.subscribe_all(tally)
        return self

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "run": {
                "workload": self.workload,
                "prefetcher": self.prefetcher,
                "records": self.records,
                "seed": self.seed,
                "config": self.config_summary,
            },
            "result": self.result,
            "event_counts": dict(sorted(self.event_counts.items())),
            "extra": self.extra,
            "wall": {
                "phases_seconds": {k: round(v, 6) for k, v in self.timer.seconds.items()},
                "python": platform.python_version(),
            },
        }

    def deterministic_dict(self) -> dict:
        """The manifest minus the wall-clock section (stable under a seed)."""
        payload = self.to_dict()
        payload.pop("wall", None)
        return payload

    def write(self, path: PathLike) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True), encoding="utf-8")
        return path
