"""Observability: typed event bus, metrics registry, exporters.

The ``repro.obs`` package is the simulator's introspection surface.  The
engine, memory hierarchy, bandwidth model and prefetchers all publish
typed events on a shared :class:`EventBus`; metrics collectors and trace
exporters are just subscribers.  With no bus attached (the default) the
whole layer costs one ``is None`` check per emission site.

Quick tour
----------
>>> from repro import EpochSimulator, ProcessorConfig, make_workload
>>> from repro.obs import EventBus, SimulationMetrics, EpochClosed
>>> bus = EventBus()
>>> metrics = SimulationMetrics(bus)
>>> closes = bus.subscribe(EpochClosed, lambda e: None)
>>> trace = make_workload("database", records=20_000)
>>> sim = EpochSimulator(ProcessorConfig.scaled(), None, bus=bus)
>>> result = sim.run(trace)
>>> metrics.epochs.value > 0
True
"""

from .bus import EventBus, global_bus, peek_global_bus, reset_global_bus
from .events import (
    EVENT_TYPES,
    AccessResolved,
    BudgetExhausted,
    CacheQuarantined,
    EpochClosed,
    Event,
    ExecutionDegraded,
    FleetResized,
    JobResumed,
    JobRetried,
    JobTimedOut,
    PrefetchDropped,
    PrefetchFilled,
    PrefetchHit,
    PrefetchIssued,
    QueueSaturated,
    RequestCompleted,
    RequestReceived,
    ShardRestarted,
    ShardSuspect,
    TableRead,
    TableWrite,
    TraceCacheWarmed,
    WorkerCrashed,
    event_payload,
)
from .exporters import (
    ChromeTraceExporter,
    JsonlTraceWriter,
    PhaseTimer,
    RunManifest,
    read_jsonl,
)
from .log import configure_logging
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ResilienceMetrics,
    RouterMetrics,
    ServiceMetrics,
    SimulationMetrics,
)
from .prometheus import render_prometheus
from .tracing import (
    SpanRecorder,
    TelemetrySink,
    TraceContext,
    chrome_trace_from_spans,
    wall_us,
    write_chrome_trace,
)

__all__ = [
    "AccessResolved",
    "BudgetExhausted",
    "CacheQuarantined",
    "ChromeTraceExporter",
    "Counter",
    "EpochClosed",
    "Event",
    "EventBus",
    "EVENT_TYPES",
    "ExecutionDegraded",
    "FleetResized",
    "Gauge",
    "Histogram",
    "JobResumed",
    "JobRetried",
    "JobTimedOut",
    "JsonlTraceWriter",
    "MetricsRegistry",
    "PhaseTimer",
    "PrefetchDropped",
    "PrefetchFilled",
    "PrefetchHit",
    "PrefetchIssued",
    "QueueSaturated",
    "RequestCompleted",
    "RequestReceived",
    "ResilienceMetrics",
    "RouterMetrics",
    "RunManifest",
    "ServiceMetrics",
    "ShardRestarted",
    "ShardSuspect",
    "SimulationMetrics",
    "SpanRecorder",
    "TableRead",
    "TableWrite",
    "TelemetrySink",
    "TraceCacheWarmed",
    "TraceContext",
    "WorkerCrashed",
    "chrome_trace_from_spans",
    "configure_logging",
    "event_payload",
    "global_bus",
    "peek_global_bus",
    "read_jsonl",
    "render_prometheus",
    "reset_global_bus",
    "wall_us",
    "write_chrome_trace",
]
