"""Prometheus text exposition for :class:`~repro.obs.metrics.MetricsRegistry`.

:func:`render_prometheus` turns a registry (or its ``to_dict()``
snapshot — the form that crosses process boundaries) into the
Prometheus text format (version 0.0.4), so the service's ``metrics``
request is scrapeable by any Prometheus-compatible collector with zero
dependencies on our side:

* counters  → ``# TYPE name counter`` + one sample;
* gauges    → ``# TYPE name gauge`` + one sample (plus ``_min`` /
  ``_max`` gauges when the gauge has samples);
* histograms → cumulative ``name_bucket{le="..."}`` series ending in
  ``le="+Inf"``, plus ``name_sum`` and ``name_count``.

Instrument names are sanitised to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``): dots and dashes become underscores, so
the per-prefetcher aggregates like ``ebcp.epoch_mlp`` expose as
``repro_ebcp_epoch_mlp``.
"""

from __future__ import annotations

import re
from typing import List, Union

from .metrics import MetricsRegistry

__all__ = ["render_prometheus"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LEADING_RE = re.compile(r"^[^a-zA-Z_:]")


def _sanitize(name: str) -> str:
    name = _NAME_RE.sub("_", name)
    if _LEADING_RE.match(name):
        name = "_" + name
    return name


def _format_value(value: Union[int, float]) -> str:
    if isinstance(value, bool):  # bools are ints; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def render_prometheus(
    metrics: Union[MetricsRegistry, dict], namespace: str = "repro"
) -> str:
    """The registry/snapshot as Prometheus text exposition (0.0.4)."""
    snapshot = metrics.to_dict() if isinstance(metrics, MetricsRegistry) else metrics
    prefix = f"{_sanitize(namespace)}_" if namespace else ""
    lines: List[str] = []
    for name in sorted(snapshot):
        payload = snapshot[name]
        kind = payload.get("type")
        metric = prefix + _sanitize(name)
        if kind == "counter":
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_format_value(payload.get('value', 0))}")
        elif kind == "gauge":
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_format_value(payload.get('value', 0.0))}")
            if payload.get("samples"):
                lines.append(f"# TYPE {metric}_min gauge")
                lines.append(f"{metric}_min {_format_value(payload.get('min', 0.0))}")
                lines.append(f"# TYPE {metric}_max gauge")
                lines.append(f"{metric}_max {_format_value(payload.get('max', 0.0))}")
        elif kind == "histogram":
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bound, count in zip(payload.get("buckets", []), payload.get("counts", [])):
                cumulative += count
                lines.append(
                    f'{metric}_bucket{{le="{_format_value(float(bound))}"}} {cumulative}'
                )
            total = payload.get("total", cumulative + payload.get("overflow", 0))
            lines.append(f'{metric}_bucket{{le="+Inf"}} {total}')
            lines.append(f"{metric}_sum {_format_value(payload.get('sum', 0.0))}")
            lines.append(f"{metric}_count {total}")
    return "\n".join(lines) + ("\n" if lines else "")
