"""Metrics registry: counters, gauges and fixed-bucket histograms.

The registry is deliberately tiny and dependency-free — a named bag of
three instrument kinds with a JSON-safe snapshot.  The simulator-facing
collector (:class:`SimulationMetrics`) subscribes the standard epoch /
prefetch / bus instruments to an :class:`~repro.obs.bus.EventBus`:

* ``epoch_misses`` / ``epoch_mlp`` — miss clustering per epoch (in the
  epoch model the two coincide: every miss of an epoch overlaps its one
  stall, paper Section 2.1);
* ``epoch_cycles`` — epoch length in cycles (stall + compute span);
* ``prefetch_lead_epochs`` — epochs between prefetch issue and use, the
  skip-2 timeliness margin (2 is the design target: table read under one
  stall, transfer under the next);
* ``read_bus_utilization`` — per-window read-bus occupancy;
* ``emab_occupancy`` — miss addresses buffered in the EMAB at each epoch
  close.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence

from .bus import EventBus
from .events import (
    AccessResolved,
    BudgetExhausted,
    CacheQuarantined,
    EpochClosed,
    Event,
    ExecutionDegraded,
    JobResumed,
    JobRetried,
    JobTimedOut,
    KernelFallback,
    PrefetchDropped,
    PrefetchFilled,
    PrefetchHit,
    PrefetchIssued,
    QueueSaturated,
    RequestCompleted,
    RequestReceived,
    TableRead,
    TableWrite,
    WorkerCrashed,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ResilienceMetrics",
    "RouterMetrics",
    "ServiceMetrics",
    "SimulationMetrics",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def merge_dict(self, payload: dict) -> None:
        """Fold another counter's snapshot into this one (sum)."""
        self.inc(payload.get("value", 0))

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that goes up and down; remembers its extremes."""

    __slots__ = ("name", "help", "value", "min", "max", "_n", "_sum")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._n = 0
        self._sum = 0.0

    def set(self, value: float) -> None:
        self.value = value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self._n += 1
        self._sum += value

    @property
    def mean(self) -> float:
        return self._sum / self._n if self._n else 0.0

    def merge_dict(self, payload: dict) -> None:
        """Fold another gauge's snapshot into this one.

        Last write wins for ``value`` (the snapshot being merged is
        assumed newer than this registry's state — the worker just
        reported it); extremes and the running mean fold losslessly.
        """
        samples = int(payload.get("samples", 0))
        if not samples:
            return
        self.value = payload.get("value", 0.0)
        self.min = min(self.min, payload.get("min", self.value))
        self.max = max(self.max, payload.get("max", self.value))
        self._n += samples
        self._sum += payload.get("mean", 0.0) * samples

    def to_dict(self) -> dict:
        return {
            "type": "gauge",
            "value": self.value,
            "min": self.min if self._n else 0.0,
            "max": self.max if self._n else 0.0,
            "mean": self.mean,
            "samples": self._n,
        }


class Histogram:
    """Fixed-bucket histogram with an implicit overflow bucket.

    ``buckets`` are inclusive upper bounds, strictly increasing; an
    observation lands in the first bucket whose bound is >= the value,
    or in the overflow bucket past the last bound.
    """

    __slots__ = ("name", "help", "bounds", "counts", "overflow", "_n", "_sum", "_min", "_max")

    def __init__(self, name: str, buckets: Sequence[float], help: str = "") -> None:
        bounds = list(buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.help = help
        self.bounds: List[float] = bounds
        self.counts: List[int] = [0] * len(bounds)
        self.overflow = 0
        self._n = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        if index == len(self.bounds):
            self.overflow += 1
        else:
            self.counts[index] += 1
        self._n += 1
        self._sum += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        return self._sum / self._n if self._n else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (Prometheus-style).

        The bucket containing rank ``q * total`` is found, then the
        value is linearly interpolated between the bucket's effective
        edges — the previous bound (or the observed minimum for the
        first occupied bucket) and ``min(bound, observed max)``.
        Observations in the overflow bucket interpolate between the last
        bound and the observed maximum, so p99 of a long-tailed
        distribution is a real estimate rather than a clamped bound.
        The estimate is exact at bucket boundaries and off by at most
        one bucket width inside a bucket (asserted against numpy
        percentiles in ``tests/test_metrics_merge.py``).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self._n:
            return 0.0
        rank = q * self._n
        cumulative = 0
        previous_bound: Optional[float] = None
        for bound, count in zip(self.bounds, self.counts):
            if count:
                if cumulative + count >= rank:
                    lower = self._min if previous_bound is None else previous_bound
                    upper = min(bound, self._max)
                    fraction = max(0.0, rank - cumulative) / count
                    value = lower + fraction * (upper - lower)
                    return min(max(value, self._min), self._max)
                cumulative += count
            previous_bound = bound
        if self.overflow:
            lower = self.bounds[-1] if cumulative else self._min
            fraction = max(0.0, rank - cumulative) / self.overflow
            value = lower + fraction * (max(self._max, lower) - lower)
            return min(max(value, self._min), self._max)
        return self._max

    def merge_dict(self, payload: dict) -> None:
        """Fold another histogram's snapshot into this one, bucket-wise.

        The other histogram must have identical bucket bounds — merging
        differently bucketed histograms would silently redistribute
        observations, so it is a :class:`ValueError` instead.
        """
        bounds = list(payload.get("buckets", []))
        if bounds != self.bounds:
            raise ValueError(
                f"cannot merge histogram '{self.name}': bucket bounds differ "
                f"({bounds} vs {self.bounds})"
            )
        counts = payload.get("counts", [])
        for i, count in enumerate(counts):
            self.counts[i] += count
        self.overflow += payload.get("overflow", 0)
        total = int(payload.get("total", 0))
        if total:
            self._n += total
            self._sum += payload.get("sum", 0.0)
            self._min = min(self._min, payload.get("min", float("inf")))
            self._max = max(self._max, payload.get("max", float("-inf")))

    @classmethod
    def from_dict(cls, name: str, payload: dict, help: str = "") -> "Histogram":
        """Rehydrate a histogram from its :meth:`to_dict` snapshot."""
        hist = cls(name, payload["buckets"], help)
        hist.merge_dict(payload)
        return hist

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "buckets": list(self.bounds),
            "counts": list(self.counts),
            "overflow": self.overflow,
            "total": self._n,
            "sum": self._sum,
            "mean": self.mean,
            "min": self._min if self._n else 0.0,
            "max": self._max if self._n else 0.0,
        }


class MetricsRegistry:
    """A flat namespace of instruments with get-or-create semantics."""

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, kind: type, factory) -> object:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise TypeError(
                    f"metric '{name}' already registered as {type(existing).__name__}"
                )
            return existing
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name, help))  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name, help))  # type: ignore[return-value]

    def histogram(self, name: str, buckets: Sequence[float], help: str = "") -> Histogram:
        return self._get_or_create(name, Histogram, lambda: Histogram(name, buckets, help))  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry | dict", prefix: str = "") -> "MetricsRegistry":
        """Fold another registry (or its :meth:`to_dict` snapshot) in.

        Counters sum, gauges take the incoming value (last write wins)
        while folding extremes and running means, histograms merge
        bucket-wise (identical bounds required — :class:`ValueError`
        otherwise).  ``prefix`` namespaces every incoming instrument
        (e.g. ``"ebcp."`` for per-prefetcher aggregation).  Merging a
        snapshot whose instrument kind conflicts with an existing name
        raises :class:`TypeError`.  The snapshot form is what pool
        workers ship back piggybacked on job results, so cross-process
        aggregation needs no shared memory.
        """
        snapshot = other.to_dict() if isinstance(other, MetricsRegistry) else other
        for name, payload in snapshot.items():
            target = prefix + name
            kind = payload.get("type")
            if kind == "counter":
                self.counter(target).merge_dict(payload)
            elif kind == "gauge":
                self.gauge(target).merge_dict(payload)
            elif kind == "histogram":
                self.histogram(target, payload["buckets"]).merge_dict(payload)
            else:
                raise ValueError(f"unknown instrument kind {kind!r} for '{name}'")
        return self

    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __getitem__(self, name: str) -> object:
        return self._instruments[name]

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def to_dict(self) -> dict:
        """JSON-safe snapshot of every instrument, sorted by name."""
        return {name: self._instruments[name].to_dict() for name in self.names()}  # type: ignore[attr-defined]


# ----------------------------------------------------------------------
# The standard simulator instrument set
# ----------------------------------------------------------------------
#: Default buckets, chosen so the paper-scale runs spread over them.
EPOCH_MISS_BUCKETS = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32)
EPOCH_CYCLE_BUCKETS = (300.0, 500.0, 750.0, 1000.0, 1500.0, 2500.0, 5000.0, 10000.0)
LEAD_EPOCH_BUCKETS = (0, 1, 2, 3, 4, 6, 8)
UTILIZATION_BUCKETS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.5)
EMAB_BUCKETS = (0, 4, 8, 16, 32, 64, 128)


class SimulationMetrics:
    """Attaches the standard instrument set to a bus.

    One instance observes one (or several sequential) simulations and
    exposes its numbers through :attr:`registry`.
    """

    def __init__(self, bus: EventBus, registry: Optional[MetricsRegistry] = None) -> None:
        self.bus = bus
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self.events_by_type = r.counter("events_total", "events delivered by type tally below")
        self._type_counters: Dict[type, Counter] = {}

        self.epochs = r.counter("epochs_closed", "real epochs closed")
        self.accesses = r.counter("accesses_resolved", "L2 accesses classified")
        self.issued = r.counter("prefetches_issued", "requests emitted by prefetchers")
        self.filled = r.counter("prefetches_filled", "prefetch bus transfers completed")
        self.dropped = r.counter("prefetches_dropped", "prefetches dropped (any reason)")
        self.hits = r.counter("prefetch_hits", "demand accesses averted by the buffer")
        self.table_reads = r.counter("table_read_bytes", "correlation-table read traffic")
        self.table_writes = r.counter("table_write_bytes", "correlation-table write traffic")
        self.budget_exhausted = r.counter("budget_exhausted", "droppable charges refused")
        self.kernel_fallbacks = r.counter(
            "kernel_fallbacks", "runs that fell back from the epoch-batched kernel"
        )

        self.epoch_misses = r.histogram(
            "epoch_misses", EPOCH_MISS_BUCKETS, "misses per epoch (== per-epoch MLP)"
        )
        self.epoch_mlp = r.histogram(
            "epoch_mlp", EPOCH_MISS_BUCKETS, "memory-level parallelism per epoch"
        )
        self.epoch_cycles = r.histogram(
            "epoch_cycles", EPOCH_CYCLE_BUCKETS, "epoch length in cycles"
        )
        self.lead_epochs = r.histogram(
            "prefetch_lead_epochs", LEAD_EPOCH_BUCKETS, "epochs between issue and use"
        )
        self.read_utilization = r.histogram(
            "read_bus_utilization", UTILIZATION_BUCKETS, "per-window read-bus occupancy"
        )
        self.emab_occupancy = r.histogram(
            "emab_occupancy", EMAB_BUCKETS, "EMAB addresses buffered at epoch close"
        )
        self.bus_queue = r.gauge("bus_queue_occupancy", "read-bus occupancy of the last window")
        self.buffer_occupancy = r.gauge("prefetch_buffer_occupancy", "buffer lines resident")

        self._unsubscribe = [
            bus.subscribe(EpochClosed, self._on_epoch),
            bus.subscribe(AccessResolved, self._on_access),
            bus.subscribe(PrefetchIssued, self._on_issued),
            bus.subscribe(PrefetchFilled, self._on_filled),
            bus.subscribe(PrefetchDropped, self._on_dropped),
            bus.subscribe(PrefetchHit, self._on_hit),
            bus.subscribe(TableRead, self._on_table_read),
            bus.subscribe(TableWrite, self._on_table_write),
            bus.subscribe(BudgetExhausted, self._on_budget),
            bus.subscribe(KernelFallback, self._on_kernel_fallback),
        ]

    # ------------------------------------------------------------------
    def detach(self) -> None:
        """Stop observing the bus (the registry keeps its numbers)."""
        for unsubscribe in self._unsubscribe:
            unsubscribe()
        self._unsubscribe = []

    def _tally(self, event: Event) -> None:
        self.events_by_type.inc()
        counter = self._type_counters.get(type(event))
        if counter is None:
            counter = self.registry.counter(f"events.{type(event).__name__}")
            self._type_counters[type(event)] = counter
        counter.inc()

    # ------------------------------------------------------------------
    def _on_epoch(self, event: EpochClosed) -> None:
        self._tally(event)
        self.epochs.inc()
        self.epoch_misses.observe(event.n_misses)
        self.epoch_mlp.observe(event.mlp)
        self.epoch_cycles.observe(event.duration_cycles)
        self.read_utilization.observe(event.read_utilization)
        self.bus_queue.set(event.read_utilization)
        if event.emab_occupancy >= 0:
            self.emab_occupancy.observe(event.emab_occupancy)
        self.buffer_occupancy.set(event.buffer_occupancy)

    def _on_access(self, event: AccessResolved) -> None:
        self._tally(event)
        self.accesses.inc()

    def _on_issued(self, event: PrefetchIssued) -> None:
        self._tally(event)
        self.issued.inc()

    def _on_filled(self, event: PrefetchFilled) -> None:
        self._tally(event)
        self.filled.inc()

    def _on_dropped(self, event: PrefetchDropped) -> None:
        self._tally(event)
        self.dropped.inc()

    def _on_hit(self, event: PrefetchHit) -> None:
        self._tally(event)
        self.hits.inc()
        if event.lead_epochs >= 0:
            self.lead_epochs.observe(event.lead_epochs)

    def _on_table_read(self, event: TableRead) -> None:
        self._tally(event)
        self.table_reads.inc(event.nbytes)

    def _on_table_write(self, event: TableWrite) -> None:
        self._tally(event)
        self.table_writes.inc(event.nbytes)

    def _on_budget(self, event: BudgetExhausted) -> None:
        self._tally(event)
        self.budget_exhausted.inc()
        self.bus_queue.set(event.utilization)

    def _on_kernel_fallback(self, event: KernelFallback) -> None:
        self._tally(event)
        self.kernel_fallbacks.inc()
        self.registry.counter(f"kernel_fallbacks.{event.cause}").inc()

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return self.registry.to_dict()


class ResilienceMetrics:
    """Counts the execution-harness events of :mod:`repro.resilience`.

    Subscribe it to the bus the executor emits on (usually
    :func:`repro.obs.bus.global_bus`) to make retries, timeouts, worker
    crashes, checkpoint resumes, degraded execution and quarantined cache
    entries countable alongside the simulation instruments.
    """

    def __init__(self, bus: EventBus, registry: Optional[MetricsRegistry] = None) -> None:
        self.bus = bus
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self.retries = r.counter("jobs_retried", "job attempts that failed and were retried")
        self.timeouts = r.counter("jobs_timed_out", "pooled jobs that exceeded timeout_s")
        self.crashes = r.counter("worker_crashes", "process-pool breakages recovered")
        self.resumed = r.counter("jobs_resumed", "jobs loaded from a checkpoint journal")
        self.degraded = r.counter("execution_degraded", "fallbacks to in-process execution")
        self.quarantined = r.counter("cache_quarantined", "corrupt cache entries quarantined")
        self._unsubscribe = [
            bus.subscribe(JobRetried, self._count(self.retries)),
            bus.subscribe(JobTimedOut, self._count(self.timeouts)),
            bus.subscribe(WorkerCrashed, self._count(self.crashes)),
            bus.subscribe(JobResumed, self._count(self.resumed)),
            bus.subscribe(ExecutionDegraded, self._count(self.degraded)),
            bus.subscribe(CacheQuarantined, self._count(self.quarantined)),
        ]

    @staticmethod
    def _count(counter: Counter):
        return lambda event: counter.inc()

    def detach(self) -> None:
        """Stop observing the bus (the registry keeps its numbers)."""
        for unsubscribe in self._unsubscribe:
            unsubscribe()
        self._unsubscribe = []

    def to_dict(self) -> dict:
        return self.registry.to_dict()


#: Forwarding-latency buckets in milliseconds: the front-end's view of
#: one proxied round-trip (shard link write → shard response read).
FORWARD_LATENCY_MS_BUCKETS = (
    0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0, 30000.0,
)


class RouterMetrics:
    """The instrument set of the sharded front-end router.

    The router is not a simulator — it parses, routes and proxies — so
    its instruments are updated directly rather than via bus events:
    one counter per routable outcome plus a per-shard routing tally
    (``routed.shard-0``, ...) and the proxied round-trip latency.  The
    registry is merged into the front-end's aggregate ``stats`` /
    ``metrics`` payloads, so shard balance is remotely scrapeable.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self.routed = r.counter("router_requests_routed", "simulate frames proxied to a shard")
        self.errors = r.counter(
            "router_forward_errors", "proxied frames that failed at the shard link"
        )
        self.shards = r.gauge("router_shards", "live shard processes behind the ring")
        self.restarts = r.counter(
            "router_restarts_total", "dead shards replaced by the supervisor"
        )
        self.resizes = r.counter(
            "router_resizes_total", "admin resize operations completed"
        )
        self.forward_ms = r.histogram(
            "router_forward_latency_ms",
            FORWARD_LATENCY_MS_BUCKETS,
            "front-end round-trip latency of one proxied simulate",
        )

    def count_route(self, shard: str) -> None:
        """One frame routed to ``shard`` (also bumps the per-shard tally)."""
        self.routed.inc()
        self.registry.counter(f"routed.{shard}").inc()

    def count_restart(self, shard: str) -> None:
        """One shard respawn (also bumps the per-shard restart tally)."""
        self.restarts.inc()
        self.registry.counter(f"restarts.{shard}").inc()

    def set_uptime(self, shard: str, seconds: float) -> None:
        """Refresh the per-shard uptime gauge (probe-driven)."""
        self.registry.gauge(
            f"shard_uptime_s.{shard}", "seconds since this shard process became ready"
        ).set(seconds)

    def to_dict(self) -> dict:
        return self.registry.to_dict()


#: Request-latency buckets in milliseconds: sub-millisecond cache hits
#: through multi-second cold simulations.
REQUEST_LATENCY_MS_BUCKETS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0, 30000.0,
)
#: Micro-batch sizes (requests dispatched per execute() call).
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64)


class ServiceMetrics:
    """The request-plane instrument set of :mod:`repro.service`.

    Subscribes to the service events (``RequestReceived``,
    ``RequestCompleted``, ``QueueSaturated``) and exposes the gauges the
    server updates directly (queue depth).  A ``stats`` protocol request
    is answered with ``registry.to_dict()`` of this registry, so every
    instrument here is remotely scrapeable.
    """

    def __init__(self, bus: EventBus, registry: Optional[MetricsRegistry] = None) -> None:
        self.bus = bus
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self.received = r.counter("requests_received", "protocol requests admitted")
        self.completed = r.counter("requests_completed", "protocol requests answered ok")
        self.failed = r.counter("requests_failed", "protocol requests answered with an error")
        self.saturated = r.counter(
            "queue_saturated", "simulate requests bounced off the full queue"
        )
        self.cache_hits = r.counter(
            "result_cache_hits", "simulate requests served from the result cache"
        )
        self.cache_misses = r.counter(
            "result_cache_misses", "simulate requests that ran a simulation job"
        )
        self.queue_depth = r.gauge("service_queue_depth", "requests waiting in the queue")
        self.latency_ms = r.histogram(
            "request_latency_ms",
            REQUEST_LATENCY_MS_BUCKETS,
            "end-to-end server-side request latency",
        )
        self.batch_size = r.histogram(
            "batch_size", BATCH_SIZE_BUCKETS, "simulate requests per dispatched micro-batch"
        )
        self._unsubscribe = [
            bus.subscribe(RequestReceived, self._on_received),
            bus.subscribe(RequestCompleted, self._on_completed),
            bus.subscribe(QueueSaturated, self._on_saturated),
        ]

    # ------------------------------------------------------------------
    def _on_received(self, event: RequestReceived) -> None:
        self.received.inc()
        self.registry.counter(f"requests.{event.request_type}").inc()

    def _on_completed(self, event: RequestCompleted) -> None:
        (self.completed if event.ok else self.failed).inc()
        self.latency_ms.observe(event.latency_ms)
        if event.request_type == "simulate" and event.ok:
            (self.cache_hits if event.cached else self.cache_misses).inc()

    def _on_saturated(self, event: QueueSaturated) -> None:
        self.saturated.inc()

    # ------------------------------------------------------------------
    def detach(self) -> None:
        """Stop observing the bus (the registry keeps its numbers)."""
        for unsubscribe in self._unsubscribe:
            unsubscribe()
        self._unsubscribe = []

    def to_dict(self) -> dict:
        return self.registry.to_dict()
