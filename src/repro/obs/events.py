"""Typed event catalogue for the observability layer.

Every interesting thing that happens inside the simulator is modelled as
a small frozen dataclass published on an :class:`~repro.obs.bus.EventBus`.
The catalogue mirrors the paper's own vocabulary — epochs, prefetch
lifecycle, correlation-table traffic, bus saturation — so that a
subscriber can reconstruct the epoch-level behaviour the evaluation
argues about (epoch counts, miss clustering, skip-2 timeliness) without
touching simulator internals.

Emission points
---------------
========================  ==================================================
Event                     Emitted by
========================  ==================================================
``EpochClosed``           :class:`repro.engine.simulator.EpochSimulator`
``AccessResolved``        :class:`repro.memory.hierarchy.CacheHierarchy`
``PrefetchIssued``        :meth:`repro.prefetchers.base.Prefetcher.make_request`
``PrefetchFilled``        the simulator's per-window bus accounting
``PrefetchDropped``       the simulator (bandwidth) / the prefetch buffer
                          (capacity eviction of a never-used line)
``PrefetchHit``           the simulator, on an averted off-chip miss
``TableRead``             :class:`repro.prefetchers.base.TrafficMeter`
``TableWrite``            :class:`repro.prefetchers.base.TrafficMeter`
``BudgetExhausted``       :class:`repro.memory.bandwidth.EpochBudget`
``KernelFallback``        :class:`repro.engine.simulator.EpochSimulator`
``JobRetried``            :mod:`repro.resilience.executor`
``JobTimedOut``           :mod:`repro.resilience.executor`
``WorkerCrashed``         :mod:`repro.resilience.executor`
``JobResumed``            :mod:`repro.resilience.executor`
``ExecutionDegraded``     :mod:`repro.resilience.executor`
``CacheQuarantined``      :mod:`repro.resilience.integrity`
``RequestReceived``       :class:`repro.service.server.SimulationService`
``RequestCompleted``      :class:`repro.service.server.SimulationService`
``QueueSaturated``        :class:`repro.service.server.SimulationService`
``ShardSuspect``          :class:`repro.service.supervisor.ShardSupervisor`
``ShardRestarted``        :class:`repro.service.supervisor.ShardSupervisor`
``FleetResized``          :class:`repro.service.supervisor.ShardSupervisor`
========================  ==================================================

The resilience events describe the *execution harness* rather than the
simulated machine: bounded retries, per-job timeouts, worker-pool
crashes, checkpoint resumes, degraded (in-process) execution and
quarantined cache entries.  They are emitted on the bus passed to the
executor, or on the process-wide :func:`repro.obs.bus.global_bus` when no
bus was attached but one exists.

The service events describe the request plane of the resident
simulation service (:mod:`repro.service`): request admission,
completion (with end-to-end latency and cache disposition) and
backpressure (a request bounced off the full queue).  The supervision
events (the last three) describe shard lifecycle inside the sharded
front-end: a shard going suspect after a missed probe, a dead shard
replaced by a fresh process with the same ring position, and the fleet
changing size under a live resize.

Events deliberately carry plain scalars (plus the rich ``Epoch`` /
``Access`` objects where subscribers need them); :func:`event_payload`
flattens any event into a JSON-safe dict for the exporters.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - the engine/memory layers import us
    from ..engine.epoch import Epoch
    from ..memory.hierarchy import HierarchyResult
    from ..memory.request import Access

__all__ = [
    "Event",
    "EpochClosed",
    "AccessResolved",
    "PrefetchIssued",
    "PrefetchFilled",
    "PrefetchDropped",
    "PrefetchHit",
    "TableRead",
    "TableWrite",
    "BudgetExhausted",
    "KernelFallback",
    "JobRetried",
    "JobTimedOut",
    "WorkerCrashed",
    "JobResumed",
    "ExecutionDegraded",
    "CacheQuarantined",
    "RequestReceived",
    "RequestCompleted",
    "QueueSaturated",
    "TraceCacheWarmed",
    "ShardSuspect",
    "ShardRestarted",
    "FleetResized",
    "EVENT_TYPES",
    "event_payload",
]


class Event:
    """Marker base class for all observability events."""

    __slots__ = ()


@dataclass(frozen=True)
class EpochClosed(Event):
    """A real epoch closed: its stall resolved and its window was charged.

    ``mlp`` equals ``n_misses`` by construction — in the epoch model every
    miss of an epoch overlaps the same single stall, so the epoch's
    memory-level parallelism *is* its miss count (paper Section 2.1).
    """

    epoch: Epoch
    index: int
    n_misses: int
    start_cycle: float
    duration_cycles: float
    read_utilization: float
    queueing_cycles: float
    measured: bool
    #: Total miss addresses buffered in the prefetcher's EMAB at close
    #: (-1 when the active prefetcher has no EMAB).
    emab_occupancy: int = -1
    #: Lines resident in the prefetch buffer at close.
    buffer_occupancy: int = 0

    @property
    def mlp(self) -> int:
        return self.n_misses


@dataclass(frozen=True)
class AccessResolved(Event):
    """One L2 access (== L1 miss) classified by the hierarchy."""

    access: Access
    line: int
    result: HierarchyResult
    cycle: float

    @property
    def outcome(self) -> str:
        return self.result.outcome.value


@dataclass(frozen=True)
class PrefetchIssued(Event):
    """A prefetcher emitted a request (before redundancy filtering)."""

    line: int
    source: str
    priority: int
    epochs_until_ready: int
    table_index: Optional[int] = None


@dataclass(frozen=True)
class PrefetchFilled(Event):
    """A staged prefetch's bus transfer completed in its window."""

    line: int
    issue_epoch: int
    window_epoch: int


@dataclass(frozen=True)
class PrefetchDropped(Event):
    """A staged prefetch died before being used.

    ``reason`` is ``"bandwidth"`` when the read-bus budget of its transfer
    window was exhausted (the paper's Section 5.2.1 drop), or
    ``"evicted_unused"`` when the buffer evicted a never-used line to make
    room.
    """

    line: int
    reason: str
    source: str = ""


@dataclass(frozen=True)
class PrefetchHit(Event):
    """A demand access was satisfied by a ready prefetch-buffer line."""

    line: int
    epoch_index: int
    issue_epoch: int
    source: str
    measured: bool
    table_index: Optional[int] = None

    @property
    def lead_epochs(self) -> int:
        """Epochs between issue and use — the skip-2 timeliness margin."""
        if self.issue_epoch < 0:
            return -1
        return self.epoch_index - self.issue_epoch


@dataclass(frozen=True)
class TableRead(Event):
    """Correlation-table read traffic (lookup or training read)."""

    nbytes: int
    purpose: str  # "lookup" | "update"


@dataclass(frozen=True)
class TableWrite(Event):
    """Correlation-table write traffic (training write or LRU refresh)."""

    nbytes: int
    purpose: str  # "update" | "lru"


@dataclass(frozen=True)
class BudgetExhausted(Event):
    """A droppable transfer found its epoch-window bus budget exhausted."""

    bus: str  # "read" | "write"
    priority: int
    nbytes: int
    utilization: float


@dataclass(frozen=True)
class KernelFallback(Event):
    """A run that could have used the epoch-batched execution kernel
    silently took the scalar path instead.

    ``cause`` names the reason (``bus_attached``, ``warm_state``,
    ``disabled``, ``compressed_disabled``, ...) — see
    :func:`repro.engine.ebcp_kernel.kernel_fallback_cause`.
    """

    prefetcher: str
    cause: str


# ----------------------------------------------------------------------
# Resilience / execution-harness events (repro.resilience)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobRetried(Event):
    """A job attempt failed and the executor will try it again.

    ``attempt`` is the attempt number that failed (1-based); the retry
    about to run is attempt ``attempt + 1``.
    """

    label: str
    index: int
    attempt: int
    cause: str


@dataclass(frozen=True)
class JobTimedOut(Event):
    """A pooled job exceeded the policy's per-job ``timeout_s``."""

    label: str
    index: int
    timeout_s: float


@dataclass(frozen=True)
class WorkerCrashed(Event):
    """The process pool broke (a worker died); in-flight jobs replay."""

    cause: str
    jobs_in_flight: int


@dataclass(frozen=True)
class JobResumed(Event):
    """A job's result was loaded from a checkpoint journal, not re-run."""

    label: str
    index: int
    key: str


@dataclass(frozen=True)
class ExecutionDegraded(Event):
    """Parallel execution fell back to in-process execution.

    ``reason`` is ``"unpicklable"`` (specs cannot cross the process
    boundary) or ``"pool_unavailable"`` (the pool could not start).
    """

    reason: str
    cause: str = ""


@dataclass(frozen=True)
class CacheQuarantined(Event):
    """A corrupt on-disk cache entry was quarantined and will regenerate.

    ``kind`` is ``"trace"`` or ``"plane"``; ``reason`` is
    ``"checksum_mismatch"`` or the decode error message.
    """

    path: str
    kind: str
    reason: str


# ----------------------------------------------------------------------
# Simulation-service / request-plane events (repro.service)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RequestReceived(Event):
    """The service admitted one protocol request for processing."""

    request_type: str  # "simulate" | "stats" | "ping" | "shutdown"
    request_id: str


@dataclass(frozen=True)
class RequestCompleted(Event):
    """One protocol request finished and its response was produced.

    ``latency_ms`` is the end-to-end server-side latency (admission to
    response ready); ``cached`` marks a simulate request answered from
    the fingerprint-keyed result cache without running a job.
    """

    request_type: str
    request_id: str
    ok: bool
    cached: bool
    latency_ms: float
    batch_size: int = 0


@dataclass(frozen=True)
class QueueSaturated(Event):
    """A simulate request bounced off the full request queue.

    The service answers with a ``queue_full`` error (carrying a
    ``retry_after_s`` hint) instead of buffering without bound — this
    event is the observable trace of that backpressure decision.
    """

    depth: int
    limit: int
    request_id: str = ""


@dataclass(frozen=True)
class TraceCacheWarmed(Event):
    """A pre-warm pass generated traces / filter planes / epoch segments.

    Emitted once per warming call that did any new work.  The counts are
    the *newly* warmed entries; anything already in the process-wide warm
    registry (e.g. warmed by an earlier sweep batch) is skipped and not
    counted.  ``total_specs`` is the size of the job list that was
    scanned.
    """

    traces: int
    planes: int
    segments: int
    total_specs: int = 0


@dataclass(frozen=True)
class ShardSuspect(Event):
    """A shard missed a health probe (or a proxied request hit a
    transport error) and the supervisor marked it suspect.

    A suspect shard keeps routing — the state is a strike, not a
    verdict; ``misses`` consecutive strikes (or a dead process) escalate
    it to a respawn.
    """

    index: int
    pid: int
    misses: int
    cause: str = ""


@dataclass(frozen=True)
class ShardRestarted(Event):
    """The supervisor replaced a dead shard with a fresh process.

    The ring is untouched — the replacement inherits the shard id and
    therefore the exact key range of the process it replaces.
    ``downtime_s`` measures death detection to ready handshake.
    """

    index: int
    old_pid: int
    new_pid: int
    restarts: int
    downtime_s: float


@dataclass(frozen=True)
class FleetResized(Event):
    """The sharded fleet changed size (admin resize or a fail-stop).

    ``added``/``removed`` are the shard indexes that entered/left the
    ring; consistent hashing guarantees only their keys remapped.
    ``reason`` is ``"resize"`` for an admin request or
    ``"max_restarts"`` when a shard was retired after exhausting its
    restart budget.
    """

    previous_workers: int
    workers: int
    added: Tuple[int, ...] = ()
    removed: Tuple[int, ...] = ()
    reason: str = "resize"


#: The full catalogue, in a stable order (used by exporters and tests).
EVENT_TYPES: Tuple[type, ...] = (
    EpochClosed,
    AccessResolved,
    PrefetchIssued,
    PrefetchFilled,
    PrefetchDropped,
    PrefetchHit,
    TableRead,
    TableWrite,
    BudgetExhausted,
    KernelFallback,
    JobRetried,
    JobTimedOut,
    WorkerCrashed,
    JobResumed,
    ExecutionDegraded,
    CacheQuarantined,
    RequestReceived,
    RequestCompleted,
    QueueSaturated,
    TraceCacheWarmed,
    ShardSuspect,
    ShardRestarted,
    FleetResized,
)


def _jsonify(value: Any) -> Any:
    """Recursively convert a field value into a JSON-safe structure."""
    if isinstance(value, enum.Enum):
        return value.name.lower()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonify(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    return value


def event_payload(event: Event) -> dict:
    """Flatten an event into a JSON-safe dict with an ``event`` tag."""
    payload: dict = {"event": type(event).__name__}
    for f in dataclasses.fields(event):  # type: ignore[arg-type]
        payload[f.name] = _jsonify(getattr(event, f.name))
    # Derived convenience fields exporters rely on.
    if isinstance(event, PrefetchHit):
        payload["lead_epochs"] = event.lead_epochs
    if isinstance(event, AccessResolved):
        payload["outcome"] = event.outcome
    if isinstance(event, EpochClosed):
        payload["mlp"] = event.mlp
    return payload
