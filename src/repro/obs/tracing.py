"""End-to-end request tracing across processes.

A request's journey through the service tier crosses at least three
processes — client SDK, asyncio server, pool worker — and each leg was
previously invisible to the others.  This module provides the minimal
distributed-tracing vocabulary that stitches them back together:

* :class:`TraceContext` — the ``(trace_id, span_id)`` pair that rides on
  protocol frames and job payloads.  Every span created under a context
  shares its ``trace_id``; ``span_id`` identifies the parent span.
* :class:`SpanRecorder` — a per-process collector.  :meth:`~SpanRecorder.span`
  opens a timed scope (a context manager) whose
  :attr:`~SpanScope.context` is the :class:`TraceContext` to hand to the
  next hop; finished spans accumulate as plain JSON/pickle-safe dicts so
  worker processes can ship them back piggybacked on job results.
* :func:`chrome_trace_from_spans` — renders any collection of span dicts
  (from one recorder or several processes' worth, concatenated) as a
  Chrome trace-event document that loads in ``ui.perfetto.dev`` as one
  coherent timeline.
* :class:`TelemetrySink` — the parent-side funnel the executor fills:
  worker spans land in a recorder, worker metrics snapshots merge into a
  :class:`~repro.obs.metrics.MetricsRegistry` (per-prefetcher prefixed).

Clock
-----
Spans are stamped with :func:`wall_us` — epoch-based wall time in
microseconds (``time.time_ns() // 1000``).  Unlike ``perf_counter``,
the epoch clock is shared by every process on the machine, so spans
recorded in the client, the server and a pool worker land on one
timeline without offset negotiation.

Span schema (the dict each recorder stores)::

    {"name": "server:simulate",      # what happened
     "trace_id": "2f0c…",            # whole-request identity
     "span_id": "91ab…",             # this span
     "parent_id": "55e2…" | None,    # the enclosing span (None = root)
     "ts_us": 1723100000000000,      # wall_us() at entry
     "dur_us": 5210,                 # scope duration
     "pid": 4242,                    # os.getpid() of the recording process
     "process": "server",            # human label: client|server|worker
     "args": {...}}                  # free-form attributes
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle with .metrics
    from .metrics import MetricsRegistry

__all__ = [
    "TraceContext",
    "SpanScope",
    "SpanRecorder",
    "TelemetrySink",
    "wall_us",
    "chrome_trace_from_spans",
    "write_chrome_trace",
]

PathLike = Union[str, Path]


def wall_us() -> int:
    """Epoch wall time in microseconds — one clock for every process."""
    return time.time_ns() // 1_000


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """The propagation token: which trace, and which span is the parent.

    The wire form (:meth:`to_wire`) is a two-key dict small enough to
    ride on every protocol frame and job payload; :meth:`from_wire` is
    deliberately forgiving — observability must never fail a request, so
    anything malformed decodes to ``None`` (an untraced request).
    """

    trace_id: str
    span_id: str

    @classmethod
    def new(cls) -> "TraceContext":
        """A fresh root context (new trace, new span id)."""
        return cls(trace_id=_new_id(), span_id=_new_id())

    def child(self) -> "TraceContext":
        """A context in the same trace with a fresh span id."""
        return TraceContext(trace_id=self.trace_id, span_id=_new_id())

    def to_wire(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, payload: Any) -> Optional["TraceContext"]:
        """Decode a wire dict; ``None`` for anything not a valid context."""
        if not isinstance(payload, dict):
            return None
        trace_id = payload.get("trace_id")
        span_id = payload.get("span_id")
        if (
            isinstance(trace_id, str)
            and isinstance(span_id, str)
            and trace_id
            and span_id
        ):
            return cls(trace_id=trace_id, span_id=span_id)
        return None


class SpanScope:
    """One open span: a context manager that records itself on exit.

    :attr:`context` is this span's own :class:`TraceContext` — hand it to
    the next hop (a protocol frame, a job payload) so downstream spans
    become children of this one.  Attributes set via :meth:`set` (or the
    constructor's ``**attrs``) end up in the span dict's ``args``.
    """

    __slots__ = ("_recorder", "name", "context", "parent_id", "args", "_start_us")

    def __init__(
        self,
        recorder: "SpanRecorder",
        name: str,
        parent: Optional[TraceContext],
        attrs: Dict[str, Any],
    ) -> None:
        self._recorder = recorder
        self.name = name
        if parent is None:
            self.context = TraceContext.new()
            self.parent_id: Optional[str] = None
        else:
            self.context = parent.child()
            self.parent_id = parent.span_id
        self.args = dict(attrs)
        self._start_us = 0

    def set(self, **attrs: Any) -> "SpanScope":
        """Attach attributes to the span (merged into ``args``)."""
        self.args.update(attrs)
        return self

    def __enter__(self) -> "SpanScope":
        self._start_us = wall_us()
        return self

    def __exit__(self, exc_type: object, *exc: object) -> None:
        if exc_type is not None:
            self.args.setdefault("error", getattr(exc_type, "__name__", str(exc_type)))
        self._recorder.record(
            {
                "name": self.name,
                "trace_id": self.context.trace_id,
                "span_id": self.context.span_id,
                "parent_id": self.parent_id,
                "ts_us": self._start_us,
                "dur_us": wall_us() - self._start_us,
                "pid": os.getpid(),
                "process": self._recorder.process,
                "args": self.args,
            }
        )


class SpanRecorder:
    """Per-process span collector (thread-safe appends).

    One recorder per process role: the client SDK, the service and each
    pool worker own one.  Workers :meth:`drain` theirs into the job
    result; the parent :meth:`extend`\\ s them into its own recorder so a
    single recorder ends up holding the whole cross-process tree.
    """

    def __init__(self, process: str = "") -> None:
        #: Human-readable role label stamped on every span.
        self.process = process or f"pid-{os.getpid()}"
        self.spans: List[dict] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def span(
        self, name: str, parent: Optional[TraceContext] = None, **attrs: Any
    ) -> SpanScope:
        """Open a timed scope; ``parent=None`` starts a new trace."""
        return SpanScope(self, name, parent, attrs)

    def record(self, span: dict) -> None:
        with self._lock:
            self.spans.append(span)

    def record_manual(
        self,
        name: str,
        parent: TraceContext,
        ts_us: int,
        dur_us: int,
        **attrs: Any,
    ) -> None:
        """Record a span from externally measured timestamps.

        Used where the scope's lifetime does not match a ``with`` block —
        e.g. the admission wait, measured from request receipt to batch
        pickup by two different coroutines.
        """
        self.record(
            {
                "name": name,
                "trace_id": parent.trace_id,
                "span_id": _new_id(),
                "parent_id": parent.span_id,
                "ts_us": ts_us,
                "dur_us": max(0, dur_us),
                "pid": os.getpid(),
                "process": self.process,
                "args": dict(attrs),
            }
        )

    def extend(self, spans: Iterable[dict]) -> None:
        """Absorb spans recorded elsewhere (e.g. shipped from a worker)."""
        with self._lock:
            self.spans.extend(spans)

    def drain(self) -> List[dict]:
        """Remove and return every recorded span (worker → result path)."""
        with self._lock:
            spans, self.spans = self.spans, []
        return spans

    def snapshot(self) -> List[dict]:
        """A copy of every recorded span, leaving the recorder intact.

        The non-destructive sibling of :meth:`drain` — what a shard
        answers a ``telemetry`` request with, so polling the spans does
        not erase them from the shard's own ``--trace-out`` dump.
        """
        with self._lock:
            return list(self.spans)

    # ------------------------------------------------------------------
    def to_chrome(self) -> dict:
        """This recorder's spans as a Chrome trace-event document."""
        return chrome_trace_from_spans(self.spans)

    def write_chrome(self, path: PathLike) -> Path:
        return write_chrome_trace(self.spans, path)


def chrome_trace_from_spans(spans: Iterable[dict]) -> dict:
    """Render span dicts (any processes' worth) as one Chrome trace.

    Each distinct ``(pid, process)`` pair becomes a named process track;
    spans render as complete ("X") slices with their trace/span/parent
    ids in ``args`` so Perfetto queries can reconstruct the tree.
    Timestamps are shifted so the earliest span starts at zero.
    """
    spans = list(spans)
    t0 = min((s["ts_us"] for s in spans), default=0)
    events: List[dict] = []
    named: set = set()
    for span in spans:
        pid = span.get("pid", 0)
        process = span.get("process", "")
        if pid not in named:
            named.add(pid)
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "name": "process_name",
                    "args": {"name": process or f"pid-{pid}"},
                }
            )
        args = dict(span.get("args", {}))
        args["trace_id"] = span["trace_id"]
        args["span_id"] = span["span_id"]
        args["parent_id"] = span.get("parent_id")
        events.append(
            {
                "name": span["name"],
                "cat": "request",
                "ph": "X",
                "ts": span["ts_us"] - t0,
                "dur": max(1, span.get("dur_us", 0)),
                "pid": pid,
                "tid": 0,
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"time_unit": "1us (epoch wall clock, zero-shifted)"},
    }


def write_chrome_trace(spans: Iterable[dict], path: PathLike) -> Path:
    path = Path(path)
    path.write_text(
        json.dumps(chrome_trace_from_spans(spans), indent=1), encoding="utf-8"
    )
    return path


class TelemetrySink:
    """Parent-side funnel for telemetry shipped back from job attempts.

    The executor calls :meth:`absorb` once per completed attempt with the
    spans and metrics snapshot the worker produced.  Spans accumulate in
    ``recorder``; metric snapshots merge into ``registry`` under a
    ``"<label>."`` prefix, so a service aggregates e.g.
    ``ebcp.epoch_mlp`` across every worker and batch.

    Either side may be ``None``: a sink with only a registry aggregates
    metrics without tracing, and vice versa.
    """

    def __init__(
        self,
        registry: "Optional[MetricsRegistry]" = None,
        recorder: Optional[SpanRecorder] = None,
    ) -> None:
        self.registry = registry
        self.recorder = recorder

    @property
    def collects_metrics(self) -> bool:
        return self.registry is not None

    def absorb(
        self,
        spans: Optional[Iterable[dict]],
        metrics_snapshot: Optional[dict],
        label: str = "",
    ) -> None:
        if self.recorder is not None and spans:
            self.recorder.extend(spans)
        if self.registry is not None and metrics_snapshot:
            prefix = f"{label}." if label else ""
            self.registry.merge(metrics_snapshot, prefix=prefix)
