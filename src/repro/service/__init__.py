"""The resident simulation service: async server + client SDK.

Everything below the service already existed as batch machinery — the
observability bus (:mod:`repro.obs`), parallel job fan-out
(:mod:`repro.parallel`), filter-plane caches
(:mod:`repro.engine.filter_plane`) and the fault-tolerant executor
(:mod:`repro.resilience`).  This package turns that per-run machinery
into shared warm infrastructure: one long-lived process that serves
simulate requests over TCP, micro-batching concurrent requests into one
executor batch over a persistent process pool and answering repeats
from a fingerprint-keyed result cache.

Quick tour
----------
Serve (blocking; drains gracefully on SIGTERM)::

    repro-ebcp serve --port 7421 -j 4

or sharded — N worker processes behind a consistent-hash front-end,
each with its own pool and cache, spilling warm results to a disk tier
that survives restarts::

    repro-ebcp serve --port 7421 --workers 4 --cache-dir /var/cache/repro

Call from Python (sync)::

    from repro.service import ServiceClient
    with ServiceClient("127.0.0.1", 7421) as client:
        served = client.simulate("tpcw", "ebcp", records=50_000)
        print(served.result.cpi, served.cached)

or async — concurrent calls coalesce into one server micro-batch::

    from repro.service import AsyncServiceClient
    client = AsyncServiceClient("127.0.0.1", 7421)
    results = await asyncio.gather(
        *(client.simulate(w, "ebcp", records=50_000)
          for w in ("tpcc", "tpcw", "tpch")))

Modules
-------
``protocol``  newline-delimited versioned JSON frames, typed error codes
``server``    :class:`SimulationService` — queue, batcher, drain logic
``client``    :class:`ServiceClient` / :class:`AsyncServiceClient`
``cache``     :class:`ResultCache` — fingerprint-keyed LRU of results
              with an optional checksummed disk spill tier
``sharding``  :class:`HashRing` / :func:`routing_key` — consistent-hash
              request routing
``router``    :class:`ShardedService` — the multi-process front-end
``supervisor``  :class:`ShardSupervisor` — shard liveness, crash
              recovery and live resize for the sharded front-end
"""

from .cache import ResultCache
from .client import (
    AsyncServiceClient,
    ServedResult,
    ServiceBusyError,
    ServiceClient,
    ServiceError,
)
from .protocol import PROTOCOL_VERSION, SUPPORTED_VERSIONS, ErrorCode
from .router import ShardedService
from .server import BackgroundService, ServiceConfig, SimulationService, serve
from .sharding import HashRing, routing_key
from .supervisor import ShardState, ShardSupervisor

__all__ = [
    "AsyncServiceClient",
    "BackgroundService",
    "ErrorCode",
    "HashRing",
    "PROTOCOL_VERSION",
    "ResultCache",
    "SUPPORTED_VERSIONS",
    "ServedResult",
    "ServiceBusyError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ShardState",
    "ShardSupervisor",
    "ShardedService",
    "SimulationService",
    "routing_key",
    "serve",
]
