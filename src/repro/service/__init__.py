"""The resident simulation service: async server + client SDK.

Everything below the service already existed as batch machinery — the
observability bus (:mod:`repro.obs`), parallel job fan-out
(:mod:`repro.parallel`), filter-plane caches
(:mod:`repro.engine.filter_plane`) and the fault-tolerant executor
(:mod:`repro.resilience`).  This package turns that per-run machinery
into shared warm infrastructure: one long-lived process that serves
simulate requests over TCP, micro-batching concurrent requests into one
executor batch over a persistent process pool and answering repeats
from a fingerprint-keyed result cache.

Quick tour
----------
Serve (blocking; drains gracefully on SIGTERM)::

    repro-ebcp serve --port 7421 -j 4

Call from Python (sync)::

    from repro.service import ServiceClient
    with ServiceClient("127.0.0.1", 7421) as client:
        served = client.simulate("tpcw", "ebcp", records=50_000)
        print(served.result.cpi, served.cached)

or async — concurrent calls coalesce into one server micro-batch::

    from repro.service import AsyncServiceClient
    client = AsyncServiceClient("127.0.0.1", 7421)
    results = await asyncio.gather(
        *(client.simulate(w, "ebcp", records=50_000)
          for w in ("tpcc", "tpcw", "tpch")))

Modules
-------
``protocol``  newline-delimited versioned JSON frames, typed error codes
``server``    :class:`SimulationService` — queue, batcher, drain logic
``client``    :class:`ServiceClient` / :class:`AsyncServiceClient`
``cache``     :class:`ResultCache` — fingerprint-keyed LRU of results
"""

from .cache import ResultCache
from .client import (
    AsyncServiceClient,
    ServedResult,
    ServiceBusyError,
    ServiceClient,
    ServiceError,
)
from .protocol import PROTOCOL_VERSION, SUPPORTED_VERSIONS, ErrorCode
from .server import BackgroundService, ServiceConfig, SimulationService, serve

__all__ = [
    "AsyncServiceClient",
    "BackgroundService",
    "ErrorCode",
    "PROTOCOL_VERSION",
    "ResultCache",
    "SUPPORTED_VERSIONS",
    "ServedResult",
    "ServiceBusyError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "SimulationService",
    "serve",
]
