"""Fingerprint-keyed result cache for served simulations.

A resident service sees the same request many times — dashboards poll,
sweeps overlap, users rerun.  Simulation is deterministic in its inputs,
so a repeat request need not re-simulate: the cache keys a completed
:class:`~repro.engine.stats.SimulationResult` by the *content identity*
of the run —

* :meth:`Trace.fingerprint() <repro.workloads.trace.Trace.fingerprint>`
  — a content hash over all six record columns, so two requests that
  generate byte-identical traces share an entry no matter how they were
  parameterised;
* :meth:`ProcessorConfig.fingerprint()
  <repro.engine.config.ProcessorConfig.fingerprint>` — the exact
  hierarchy/latency/bandwidth tuple;
* the prefetcher's *registry name* — the service only accepts registered
  prefetcher names and builds a fresh instance per job, so equal names
  mean identical initial predictor state;
* the warmup split.

``compressed`` execution mode is deliberately **not** part of the key:
compressed and legacy execution are bit-identical by construction (the
same argument the checkpoint journal makes), so a cache entry is valid
in either mode.

Entries are :meth:`~repro.engine.stats.SimulationResult.snapshot`
dictionaries, not live objects — every hit rehydrates a fresh
``SimulationResult`` so callers can never mutate the cached copy.
Eviction is LRU with a bounded entry count.
"""

from __future__ import annotations

from collections import OrderedDict
from threading import Lock
from typing import Optional, Tuple

from ..engine.stats import SimulationResult

__all__ = ["ResultCache"]

CacheKey = Tuple[str, tuple, str, Optional[int]]


class ResultCache:
    """Bounded LRU of simulation results keyed by run content identity."""

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[CacheKey, dict]" = OrderedDict()
        self._lock = Lock()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    @staticmethod
    def key(
        trace_fingerprint: str,
        config_fingerprint: tuple,
        prefetcher: str,
        warmup_records: Optional[int],
    ) -> CacheKey:
        return (trace_fingerprint, config_fingerprint, prefetcher, warmup_records)

    def get(self, key: CacheKey) -> Optional[SimulationResult]:
        """The cached result for ``key`` (a fresh object), or None."""
        with self._lock:
            snapshot = self._entries.get(key)
            if snapshot is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
        return SimulationResult.from_snapshot(snapshot)

    def put(self, key: CacheKey, result: SimulationResult) -> None:
        if self.max_entries == 0:
            return
        snapshot = result.snapshot()
        with self._lock:
            self._entries[key] = snapshot
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def info(self) -> dict:
        """JSON-safe occupancy/effectiveness summary (stats responses)."""
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
        }
