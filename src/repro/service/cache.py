"""Fingerprint-keyed result cache for served simulations — now tiered.

A resident service sees the same request many times — dashboards poll,
sweeps overlap, users rerun.  Simulation is deterministic in its inputs,
so a repeat request need not re-simulate: the cache keys a completed
:class:`~repro.engine.stats.SimulationResult` by the *content identity*
of the run —

* :meth:`Trace.fingerprint() <repro.workloads.trace.Trace.fingerprint>`
  — a content hash over all six record columns, so two requests that
  generate byte-identical traces share an entry no matter how they were
  parameterised;
* :meth:`ProcessorConfig.fingerprint()
  <repro.engine.config.ProcessorConfig.fingerprint>` — the exact
  hierarchy/latency/bandwidth tuple;
* the prefetcher's *registry name* — the service only accepts registered
  prefetcher names and builds a fresh instance per job, so equal names
  mean identical initial predictor state;
* the warmup split.

``compressed`` execution mode is deliberately **not** part of the key:
compressed and legacy execution are bit-identical by construction (the
same argument the checkpoint journal makes), so a cache entry is valid
in either mode.

Tiers
-----
The in-memory tier is a bounded LRU of
:meth:`~repro.engine.stats.SimulationResult.snapshot` dictionaries —
every hit rehydrates a fresh ``SimulationResult`` so callers can never
mutate the cached copy.

With ``spill_dir`` set, every ``put`` also writes the snapshot through
to disk as a content-addressed JSON entry (file name = sha256 of the
canonical key) with a sha256 sidecar from
:mod:`repro.resilience.integrity`.  A memory miss then falls through to
the disk tier: the sidecar is verified *before* decoding, a bad entry is
quarantined (``quarantine/`` sibling + ``CacheQuarantined`` event) and
treated as a miss, and a good entry is promoted back into memory.
Because entries are content-addressed and written atomically
(``tmp`` + ``os.replace``), several shard processes can safely share one
``spill_dir`` — concurrent writers of the same key write identical
bytes — and a warm result survives worker crashes, full restarts and
ring resizes.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from collections import OrderedDict
from pathlib import Path
from threading import Lock
from typing import Any, List, Optional, Tuple, Union

from ..engine.stats import SimulationResult
from ..resilience.integrity import quarantine_entry, verify_checksum, write_checksum

__all__ = ["ResultCache"]

log = logging.getLogger(__name__)

CacheKey = Tuple[str, tuple, str, Optional[int]]

PathLike = Union[str, "os.PathLike[str]"]


def _key_jsonable(key: CacheKey) -> List[Any]:
    """The key as canonical JSON-safe data (tuples become lists)."""
    return json.loads(
        json.dumps(list(key), separators=(",", ":"), default=list)
    )


def _tupled(value: Any) -> Any:
    """Recursively turn JSON lists back into tuples.

    The inverse of :func:`_key_jsonable` for cache keys: keys are built
    from scalars and (nested) tuples only, so list→tuple recursion
    reconstructs the exact in-memory key a disk entry was stored under.
    """
    if isinstance(value, list):
        return tuple(_tupled(v) for v in value)
    return value


class ResultCache:
    """LRU of simulation results with an optional write-through disk tier."""

    def __init__(
        self,
        max_entries: int = 256,
        spill_dir: Optional[PathLike] = None,
        max_disk_entries: int = 4096,
    ) -> None:
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        if max_disk_entries < 1:
            raise ValueError(f"max_disk_entries must be >= 1, got {max_disk_entries}")
        self.max_entries = max_entries
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self.max_disk_entries = max_disk_entries
        self._entries: "OrderedDict[CacheKey, dict]" = OrderedDict()
        self._lock = Lock()
        self.hits = 0
        self.misses = 0
        #: Memory misses answered from the disk tier (and promoted).
        self.disk_hits = 0
        #: Snapshots written through to the disk tier.
        self.spilled = 0
        #: Disk entries quarantined (bad sidecar, undecodable, key clash).
        self.quarantined = 0
        if self.spill_dir is not None:
            self.spill_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    @staticmethod
    def key(
        trace_fingerprint: str,
        config_fingerprint: tuple,
        prefetcher: str,
        warmup_records: Optional[int],
    ) -> CacheKey:
        return (trace_fingerprint, config_fingerprint, prefetcher, warmup_records)

    def get(self, key: CacheKey) -> Optional[SimulationResult]:
        """The cached result for ``key`` (a fresh object), or None.

        Checks the memory tier first, then — when spilling is enabled —
        the disk tier, promoting a verified disk entry back into memory.
        """
        with self._lock:
            snapshot = self._entries.get(key)
            if snapshot is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return SimulationResult.from_snapshot(snapshot)
        snapshot = self._disk_get(key)
        if snapshot is not None:
            with self._lock:
                self.disk_hits += 1
                self._remember(key, snapshot)
            return SimulationResult.from_snapshot(snapshot)
        with self._lock:
            self.misses += 1
        return None

    def put(self, key: CacheKey, result: SimulationResult) -> None:
        if self.max_entries == 0 and self.spill_dir is None:
            return
        snapshot = result.snapshot()
        if self.max_entries:
            with self._lock:
                self._remember(key, snapshot)
        self._disk_put(key, snapshot)

    def _remember(self, key: CacheKey, snapshot: dict) -> None:
        """Insert into the memory LRU (caller holds the lock)."""
        self._entries[key] = snapshot
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    # ------------------------------------------------------------------
    # Disk tier
    # ------------------------------------------------------------------
    def entry_path(self, key: CacheKey) -> Path:
        """The content-addressed disk path of ``key``'s entry."""
        assert self.spill_dir is not None
        canonical = json.dumps(_key_jsonable(key), separators=(",", ":"))
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        return self.spill_dir / f"{digest}.json"

    def _disk_put(self, key: CacheKey, snapshot: dict) -> None:
        if self.spill_dir is None:
            return
        path = self.entry_path(key)
        payload = {"key": _key_jsonable(key), "snapshot": snapshot}
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            tmp.write_text(
                json.dumps(payload, separators=(",", ":"), sort_keys=True),
                encoding="utf-8",
            )
            os.replace(tmp, path)
            write_checksum(path)
        except OSError as exc:
            log.warning("could not spill result cache entry %s (%s)", path.name, exc)
            try:
                tmp.unlink()
            except OSError:
                pass
            return
        self.spilled += 1
        self._prune_disk()

    def _disk_get(self, key: CacheKey) -> Optional[dict]:
        if self.spill_dir is None:
            return None
        path = self.entry_path(key)
        if not path.exists():
            return None
        reason = verify_checksum(path)
        if reason is not None:
            self.quarantined += 1
            quarantine_entry(path, "result", reason)
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            stored_key = payload["key"]
            snapshot = payload["snapshot"]
        except (OSError, ValueError, KeyError, TypeError) as exc:
            self.quarantined += 1
            quarantine_entry(path, "result", f"undecodable entry ({exc})")
            return None
        if stored_key != _key_jsonable(key):
            # A sha256 collision is not a realistic cause; a mismatch
            # means the entry was tampered with or mis-written.
            self.quarantined += 1
            quarantine_entry(path, "result", "stored key does not match its address")
            return None
        if not isinstance(snapshot, dict):
            self.quarantined += 1
            quarantine_entry(path, "result", "snapshot is not an object")
            return None
        # Touch the entry so disk pruning tracks recency, not write age.
        try:
            os.utime(path)
        except OSError:
            pass
        return snapshot

    def _prune_disk(self) -> None:
        """Drop the oldest disk entries beyond ``max_disk_entries``."""
        assert self.spill_dir is not None
        try:
            entries = [
                p for p in self.spill_dir.glob("*.json") if p.is_file()
            ]
        except OSError:
            return
        excess = len(entries) - self.max_disk_entries
        if excess <= 0:
            return

        def mtime(p: Path) -> float:
            try:
                return p.stat().st_mtime
            except OSError:
                return 0.0

        for victim in sorted(entries, key=mtime)[:excess]:
            for path in (victim, victim.with_name(victim.name + ".sha256")):
                try:
                    path.unlink()
                except OSError:
                    pass

    def preload(self, limit: Optional[int] = None) -> int:
        """Warm the memory tier from the disk tier; returns entries loaded.

        Reads the newest disk entries (recency = mtime, which ``get``
        refreshes on every disk hit) into the memory LRU without
        counting hits or misses — this is boot-time warming for a shard
        that just joined (or rejoined) the ring over a shared
        ``spill_dir``, not request traffic.  Corrupt entries are
        quarantined exactly as a ``get`` would.
        """
        if self.spill_dir is None or self.max_entries == 0:
            return 0
        budget = self.max_entries if limit is None else min(limit, self.max_entries)
        try:
            entries = [p for p in self.spill_dir.glob("*.json") if p.is_file()]
        except OSError:
            return 0

        def mtime(p: Path) -> float:
            try:
                return p.stat().st_mtime
            except OSError:
                return 0.0

        loaded = 0
        # Take the newest ``budget`` entries, but insert oldest-first so
        # the LRU's eviction order matches disk recency.
        newest = sorted(entries, key=mtime, reverse=True)[:budget]
        for path in reversed(newest):
            reason = verify_checksum(path)
            if reason is not None:
                self.quarantined += 1
                quarantine_entry(path, "result", reason)
                continue
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                stored_key = payload["key"]
                snapshot = payload["snapshot"]
            except (OSError, ValueError, KeyError, TypeError) as exc:
                self.quarantined += 1
                quarantine_entry(path, "result", f"undecodable entry ({exc})")
                continue
            if not isinstance(stored_key, list) or not isinstance(snapshot, dict):
                self.quarantined += 1
                quarantine_entry(path, "result", "malformed preload entry")
                continue
            key = _tupled(stored_key)
            with self._lock:
                if key not in self._entries:
                    self._remember(key, snapshot)
                    loaded += 1
        return loaded

    def disk_entries(self) -> int:
        """How many entries the disk tier currently holds."""
        if self.spill_dir is None:
            return 0
        try:
            return sum(1 for _ in self.spill_dir.glob("*.json"))
        except OSError:
            return 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def clear(self, disk: bool = False) -> None:
        """Empty the memory tier; with ``disk=True`` the disk tier too."""
        with self._lock:
            self._entries.clear()
        if disk and self.spill_dir is not None:
            for path in self.spill_dir.glob("*.json*"):
                try:
                    path.unlink()
                except OSError:
                    pass

    def info(self) -> dict:
        """JSON-safe occupancy/effectiveness summary (stats responses)."""
        info = {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
        }
        if self.spill_dir is not None:
            info["disk"] = {
                "dir": str(self.spill_dir),
                "entries": self.disk_entries(),
                "max_entries": self.max_disk_entries,
                "hits": self.disk_hits,
                "spilled": self.spilled,
                "quarantined": self.quarantined,
            }
        return info
