"""The asyncio simulation service.

One resident process that serves simulation requests over TCP, keeping
everything a cold CLI invocation pays for — interpreter startup, trace
generation, filter-plane warming, process-pool spin-up — warm across
requests:

* **bounded admission**: simulate requests enter an ``asyncio.Queue``
  with a hard capacity; when it is full the client gets an immediate
  ``queue_full`` error with a ``retry_after_s`` hint (explicit
  backpressure) instead of the server buffering without bound;
* **micro-batching**: the dispatcher drains up to
  ``ServiceConfig.max_batch`` queued requests within
  ``ServiceConfig.batch_window_s`` and ships them as *one*
  :class:`~repro.parallel.jobs.JobSpec` batch through
  :func:`repro.resilience.executor.execute` — so concurrent requests
  share the executor's trace warming and fan out over the pool together;
* **persistent pool**: the executor leases a
  :class:`~repro.resilience.executor.PersistentPool` owned by the
  service, so pool workers (and their inherited trace/filter-plane
  memos) survive across batches;
* **result cache**: completed runs are cached by content fingerprint
  (:mod:`repro.service.cache`); a repeat request is answered in
  microseconds without touching the queue's *execution* cost (it still
  passes admission, so backpressure semantics stay uniform);
* **graceful drain**: SIGTERM/SIGINT (or a ``shutdown`` request) stops
  admission, finishes every queued and in-flight request, delivers the
  responses, then exits.

Identity guarantee
------------------
A served simulate request runs the *same* :class:`JobSpec` path as
``repro-ebcp simulate`` and the sweep runners, so its
:class:`~repro.engine.stats.SimulationStats` are bit-identical to a
fresh CLI invocation with equal parameters (asserted in
``tests/test_service.py``).
"""

from __future__ import annotations

import asyncio
import logging
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .. import __version__
from ..engine.config import ProcessorConfig
from ..engine.stats import SimulationResult
from ..obs.bus import EventBus
from ..obs.events import QueueSaturated, RequestCompleted, RequestReceived
from ..obs.metrics import MetricsRegistry, ServiceMetrics
from ..obs.prometheus import render_prometheus
from ..obs.tracing import SpanRecorder, TelemetrySink, TraceContext, wall_us
from ..parallel.jobs import JobSpec
from ..prefetchers.registry import PREFETCHERS, build_prefetcher
from ..resilience.executor import PersistentPool, execute
from ..resilience.policy import ExecutionPolicy
from ..workloads.registry import WORKLOADS, make_workload
from . import protocol
from .cache import ResultCache
from .protocol import ErrorCode, ProtocolError, Request, SimulateParams

__all__ = ["ServiceConfig", "SimulationService", "BackgroundService", "serve"]

log = logging.getLogger(__name__)


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one service instance.

    ``port=0`` binds an ephemeral port; the bound address is available as
    :attr:`SimulationService.address` after :meth:`~SimulationService.start`.
    """

    host: str = "127.0.0.1"
    port: int = 7421
    #: Hard capacity of the request queue; the backpressure threshold.
    queue_size: int = 64
    #: Most simulate requests dispatched as one executor batch.
    max_batch: int = 8
    #: How long the dispatcher waits for the batch to fill before
    #: dispatching what it has.
    batch_window_s: float = 0.005
    #: Result-cache capacity (entries); 0 disables caching.
    cache_entries: int = 256
    #: Grace period for handlers to flush responses during shutdown.
    drain_timeout_s: float = 30.0
    #: Collect worker-side :class:`SimulationMetrics` per job and merge
    #: them into the service-global registry (per-prefetcher prefixed).
    worker_metrics: bool = True
    #: Disk tier of the result cache: spill lossless snapshots under
    #: this directory (sha256 sidecars, quarantine-on-corruption) so
    #: warm hits survive crashes and restarts.  ``None`` = memory only.
    #: Safe to share across shard processes (content-addressed entries,
    #: atomic writes).
    cache_dir: Optional[str] = None
    #: Disk-tier entry bound (oldest pruned beyond it).
    max_disk_entries: int = 4096
    #: ``(workload, records, seed)`` triples to pre-warm (trace + filter
    #: planes generated, pool workers pre-spawned) before reporting
    #: ready.  A sharded front-end partitions these per shard.
    prewarm: Tuple[Tuple[str, int, int], ...] = ()
    #: Position of this instance behind a sharded front-end; ``None``
    #: for a standalone service.  Surfaces in ping/stats/telemetry.
    shard_index: Optional[int] = None
    #: Load the newest ``cache_dir`` entries into the memory tier before
    #: binding.  Off by default; a live resize sets it on newcomers so
    #: a shard joining the ring serves warm from its first request.
    preload_disk: bool = False


@dataclass
class _PendingRequest:
    """One admitted simulate request waiting for its batch."""

    request_id: str
    params: SimulateParams
    received_at: float
    future: "asyncio.Future[Tuple[SimulationResult, bool]]"
    cache_key: Optional[tuple] = None
    #: The server-side span context this request's downstream spans
    #: (admission, batch, cache, worker jobs) parent to; None = untraced.
    trace: Optional[TraceContext] = None
    #: ``wall_us()`` at admission — start of the admission-wait span.
    received_us: int = 0


@dataclass
class _BatchOutcome:
    """What one dispatched micro-batch produced, per pending request."""

    results: List[Optional[SimulationResult]] = field(default_factory=list)
    cached: List[bool] = field(default_factory=list)
    error: Optional[BaseException] = None


class SimulationService:
    """Asyncio TCP server speaking :mod:`repro.service.protocol`."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        policy: Optional[ExecutionPolicy] = None,
        bus: Optional[EventBus] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.policy = policy or ExecutionPolicy()
        self.bus = bus if bus is not None else EventBus()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.metrics = ServiceMetrics(self.bus, self.registry)
        self.cache = ResultCache(
            self.config.cache_entries,
            spill_dir=self.config.cache_dir,
            max_disk_entries=self.config.max_disk_entries,
        )
        self.pool = PersistentPool(self.policy.resolved_jobs())
        #: Server-side span collector; worker spans are absorbed here too,
        #: so after a traced request it holds the whole cross-process tree.
        self.recorder = SpanRecorder("server")
        #: Worker simulation metrics, merged across jobs under a
        #: per-prefetcher prefix (``ebcp.epoch_mlp``, ...).
        self.sim_registry = MetricsRegistry()
        self.sink = TelemetrySink(
            registry=self.sim_registry if self.config.worker_metrics else None,
            recorder=self.recorder,
        )
        self.address: Optional[Tuple[str, int]] = None

        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: "Optional[asyncio.Queue[_PendingRequest]]" = None
        self._batcher_task: Optional[asyncio.Task] = None
        self._dispatch_gate: Optional[asyncio.Event] = None
        self._draining = False
        self._busy_handlers = 0
        self._writers: "set[asyncio.StreamWriter]" = set()
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind, start serving, and return the bound ``(host, port)``.

        With :attr:`ServiceConfig.prewarm` set, the expected working
        set (traces, filter planes, pool workers) is warmed *before*
        binding, so a ready service is a warm service.
        """
        if self.config.prewarm:
            await asyncio.get_running_loop().run_in_executor(None, self.prewarm)
        if self.config.preload_disk and self.config.cache_dir:
            loaded = await asyncio.get_running_loop().run_in_executor(
                None, self.cache.preload
            )
            if loaded:
                log.info("preloaded %d result(s) from the disk cache tier", loaded)
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.config.queue_size)
        self._dispatch_gate = asyncio.Event()
        self._dispatch_gate.set()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=protocol.MAX_FRAME_BYTES,
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        self._started_at = time.monotonic()
        self._batcher_task = asyncio.create_task(self._batch_loop())
        log.info("simulation service listening on %s:%d", *self.address)
        return self.address

    async def run(self, install_signal_handlers: bool = False) -> None:
        """Serve until drained (SIGTERM/SIGINT or a ``shutdown`` request)."""
        if self._server is None:
            await self.start()
        if install_signal_handlers:
            import signal

            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.begin_drain)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass  # non-main thread / platform without signal support
        assert self._batcher_task is not None
        await self._batcher_task
        # The batcher resolved every admitted future; give the connection
        # handlers a bounded grace period to write those responses out.
        deadline = time.monotonic() + self.config.drain_timeout_s
        while self._busy_handlers and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        for writer in list(self._writers):
            writer.close()
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        self.pool.shutdown()
        log.info("simulation service drained and stopped")

    def prewarm(self) -> None:
        """Warm the configured working set (blocking; called off-loop).

        Generates each prewarm triple's trace and filter planes through
        the shared on-disk caches and pre-spawns the persistent pool's
        workers, so the first real request hits warm state.
        """
        from ..parallel.jobs import warm_trace_cache

        config = ProcessorConfig.scaled()
        specs = [
            JobSpec(workload=w, records=r, seed=s, config=config)
            for (w, r, s) in self.config.prewarm
        ]
        try:
            warm_trace_cache(specs)
        except Exception as exc:  # warming is best-effort, never fatal
            log.warning("prewarm failed (%s); serving cold", exc)
        if self.pool.max_workers > 1 and (
            (os.cpu_count() or 1) > 1 or os.environ.get("REPRO_FORCE_POOL") == "1"
        ):
            self.pool.warm()
        log.info("prewarmed %d working-set entr(ies)", len(specs))

    def begin_drain(self) -> None:
        """Stop admission; queued and in-flight requests still complete.

        Callable from the event loop (signal handlers, the ``shutdown``
        request); thread-safe via :meth:`begin_drain_threadsafe`.
        """
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()  # stop accepting new connections
        log.info("simulation service draining (no new requests admitted)")

    def begin_drain_threadsafe(self) -> None:
        self._call_threadsafe(self.begin_drain)

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------
    # Test seam: hold the dispatcher to observe queue/backpressure states
    # deterministically (queue saturation, drain with work pending).
    # ------------------------------------------------------------------
    def hold_dispatch(self) -> None:
        assert self._dispatch_gate is not None
        self._dispatch_gate.clear()

    def release_dispatch(self) -> None:
        assert self._dispatch_gate is not None
        self._dispatch_gate.set()

    def release_dispatch_threadsafe(self) -> None:
        self._call_threadsafe(self.release_dispatch)

    def _call_threadsafe(self, callback) -> None:
        """Schedule on the service loop; a no-op once the loop is gone
        (an already-drained service needs no further nudging)."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(callback)
        except RuntimeError:
            pass  # loop closed between the check and the call

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # Frame exceeded the stream limit: answer and hang up
                    # (the stream is no longer line-synchronised).
                    writer.write(
                        protocol.encode_frame(
                            protocol.error_response(
                                "",
                                ErrorCode.MALFORMED_FRAME,
                                f"frame exceeds {protocol.MAX_FRAME_BYTES} bytes",
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break  # EOF: client hung up
                self._busy_handlers += 1
                try:
                    response = await self._handle_frame(line, writer)
                finally:
                    self._busy_handlers -= 1
                writer.write(protocol.encode_frame(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client vanished mid-conversation; nothing to answer
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _handle_frame(
        self, line: bytes, writer: Optional[asyncio.StreamWriter] = None
    ) -> Dict[str, Any]:
        started = time.monotonic()
        try:
            request = protocol.parse_request(line)
        except ProtocolError as exc:
            request_id = str(exc.details.get("request_id", ""))
            details = {k: v for k, v in exc.details.items() if k != "request_id"}
            self._emit_completed("invalid", request_id, started, ok=False)
            return protocol.error_response(request_id, exc.code, exc.message, **details)

        if self.bus.wants(RequestReceived):
            self.bus.emit(RequestReceived(request_type=request.type, request_id=request.id))

        if request.type == "ping":
            response = protocol.ok_response(request.id, self._ping_payload())
        elif request.type == "stats":
            response = protocol.ok_response(request.id, self._stats_payload())
        elif request.type == "metrics":
            response = protocol.ok_response(request.id, self._metrics_payload())
        elif request.type == "telemetry":
            response = protocol.ok_response(
                request.id, self._telemetry_payload(request.params)
            )
        elif request.type == "admin":
            response = protocol.error_response(
                request.id,
                ErrorCode.INVALID_REQUEST,
                "admin commands require a sharded front-end (serve --workers N)",
            )
            self._emit_completed(request.type, request.id, started, ok=False)
            return response
        elif request.type == "shutdown":
            self.begin_drain()
            response = protocol.ok_response(request.id, {"draining": True})
        elif request.type == "sweep":
            # Streams one frame per job through ``writer``; the returned
            # frame is the terminal done marker.  Emits its own completion.
            return await self._handle_sweep(request, writer, started)
        else:  # simulate
            response = await self._handle_simulate(request, started)
            return response  # _handle_simulate emits its own completion
        self._emit_completed(request.type, request.id, started, ok=True)
        return response

    async def _handle_simulate(self, request: Request, started: float) -> Dict[str, Any]:
        """Serve one simulate, continuing the client's trace when present."""
        ctx = TraceContext.from_wire(request.trace)
        if ctx is None:
            return await self._simulate_body(request, started, span=None)
        with self.recorder.span(
            "server:simulate", parent=ctx, request_id=request.id
        ) as span:
            response = await self._simulate_body(request, started, span=span)
            span.set(ok=bool(response.get("ok")))
            return response

    async def _simulate_body(
        self, request: Request, started: float, span: Optional[Any]
    ) -> Dict[str, Any]:
        if self._draining:
            self._emit_completed("simulate", request.id, started, ok=False)
            return protocol.error_response(
                request.id, ErrorCode.SHUTTING_DOWN, "service is draining; not admitting"
            )
        try:
            params = SimulateParams.from_dict(request.params)
            self._validate_names(params)
        except ProtocolError as exc:
            self._emit_completed("simulate", request.id, started, ok=False)
            return protocol.error_response(request.id, exc.code, exc.message, **exc.details)

        assert self._queue is not None and self._loop is not None
        pending = _PendingRequest(
            request_id=request.id,
            params=params,
            received_at=started,
            future=self._loop.create_future(),
            trace=span.context if span is not None else None,
            received_us=wall_us(),
        )
        try:
            self._queue.put_nowait(pending)
        except asyncio.QueueFull:
            retry_after = max(2.0 * self.config.batch_window_s, 0.05)
            if self.bus.wants(QueueSaturated):
                self.bus.emit(
                    QueueSaturated(
                        depth=self._queue.qsize(),
                        limit=self.config.queue_size,
                        request_id=request.id,
                    )
                )
            self._emit_completed("simulate", request.id, started, ok=False)
            return protocol.error_response(
                request.id,
                ErrorCode.QUEUE_FULL,
                f"request queue full ({self.config.queue_size} waiting)",
                retry_after_s=retry_after,
            )
        self.metrics.queue_depth.set(float(self._queue.qsize()))

        try:
            result, cached = await pending.future
        except Exception as exc:
            log.exception("simulate request %s failed", request.id or "<anon>")
            self._emit_completed("simulate", request.id, started, ok=False)
            return protocol.error_response(
                request.id, ErrorCode.INTERNAL, f"{type(exc).__name__}: {exc}"
            )
        elapsed_ms = (time.monotonic() - started) * 1000.0
        if span is not None:
            span.set(cached=cached)
        self._emit_completed("simulate", request.id, started, ok=True, cached=cached)
        return protocol.ok_response(
            request.id,
            result.snapshot(),
            cached=cached,
            elapsed_ms=elapsed_ms,
        )

    # ------------------------------------------------------------------
    # Sweep streaming (v4)
    # ------------------------------------------------------------------
    @staticmethod
    def _job_payload(meta: Any) -> Dict[str, Any]:
        """The per-job identity block carried on every sweep frame."""
        return {
            "index": meta.index,
            "kind": meta.kind,
            "workload": meta.workload,
            "seed": meta.seed,
            "records": meta.records,
            "n_threads": meta.n_threads,
            "label": meta.label,
            "config": meta.config_label,
        }

    async def _handle_sweep(
        self,
        request: Request,
        writer: Optional[asyncio.StreamWriter],
        started: float,
    ) -> Dict[str, Any]:
        """Expand a sweep spec and stream per-job frames as they settle.

        Every job enters the same admission queue and micro-batching
        dispatcher as a plain simulate (so results are bit-identical to
        individual requests), but admission *blocks* instead of
        answering ``queue_full`` — a sweep is one request and its
        backpressure is the stream itself.
        """
        from ..spec import SpecError, SweepSpec, expand
        from ..spec.wire import simulate_params_for

        if writer is None:  # pragma: no cover - defensive
            return protocol.error_response(
                request.id, ErrorCode.INVALID_REQUEST, "sweep requires a streaming connection"
            )
        if self._draining:
            self._emit_completed("sweep", request.id, started, ok=False)
            return protocol.error_response(
                request.id, ErrorCode.SHUTTING_DOWN, "service is draining; not admitting"
            )
        use_cache = request.params.get("use_cache", True)
        try:
            spec_payload = request.params.get("spec")
            if not isinstance(spec_payload, dict):
                raise ProtocolError(ErrorCode.INVALID_REQUEST, "sweep requires a 'spec' object")
            spec = SweepSpec.from_dict(spec_payload)
        except SpecError as exc:
            self._emit_completed("sweep", request.id, started, ok=False)
            return protocol.error_response(
                request.id, ErrorCode.INVALID_REQUEST, str(exc), path=getattr(exc, "path", "")
            )
        except ProtocolError as exc:
            self._emit_completed("sweep", request.id, started, ok=False)
            return protocol.error_response(request.id, exc.code, exc.message, **exc.details)

        plan = expand(spec)
        ctx = TraceContext.from_wire(request.trace)
        assert self._queue is not None and self._loop is not None
        pendings: List[_PendingRequest] = []
        aborted = False
        for meta in plan.meta:
            if self._draining:
                aborted = True
                break
            params = SimulateParams.from_dict(
                {**simulate_params_for(meta), "use_cache": bool(use_cache)}
            )
            pending = _PendingRequest(
                request_id=f"{request.id}#{meta.index}",
                params=params,
                received_at=time.monotonic(),
                future=self._loop.create_future(),
                trace=ctx,
                received_us=wall_us(),
            )
            await self._queue.put(pending)
            pendings.append(pending)
        self.metrics.queue_depth.set(float(self._queue.qsize()))

        async def settle(pending: _PendingRequest, meta: Any):
            try:
                result, cached = await pending.future
                return meta, result, cached, None
            except Exception as exc:
                return meta, None, False, exc

        errors = 0
        tasks = [
            asyncio.ensure_future(settle(p, m)) for p, m in zip(pendings, plan.meta)
        ]
        for fut in asyncio.as_completed(tasks):
            meta, result, cached, exc = await fut
            if exc is not None:
                errors += 1
                frame = protocol.error_response(
                    request.id, ErrorCode.INTERNAL, f"{type(exc).__name__}: {exc}"
                )
            else:
                frame = protocol.ok_response(
                    request.id, result.snapshot(), cached=cached
                )
            frame["job"] = self._job_payload(meta)
            writer.write(protocol.encode_frame(frame))
            await writer.drain()
        elapsed_ms = (time.monotonic() - started) * 1000.0
        ok = not errors and not aborted
        self._emit_completed("sweep", request.id, started, ok=ok)
        terminal = protocol.ok_response(
            request.id,
            {
                "name": spec.name,
                "fingerprint": spec.fingerprint(),
                "jobs": len(plan.meta),
                "streamed": len(pendings),
                "errors": errors,
                "aborted": aborted,
                "elapsed_ms": elapsed_ms,
            },
        )
        terminal["done"] = True
        return terminal

    # ------------------------------------------------------------------
    # Micro-batching dispatcher
    # ------------------------------------------------------------------
    async def _batch_loop(self) -> None:
        assert self._queue is not None and self._dispatch_gate is not None
        loop = asyncio.get_running_loop()
        while True:
            first = await self._next_pending()
            if first is None:
                return  # draining and nothing left
            batch = [first]
            deadline = loop.time() + self.config.batch_window_s
            while len(batch) < self.config.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(await asyncio.wait_for(self._queue.get(), remaining))
                except asyncio.TimeoutError:
                    break
            self.metrics.queue_depth.set(float(self._queue.qsize()))
            await self._dispatch_gate.wait()
            self.metrics.batch_size.observe(len(batch))
            # Close each traced request's admission-wait span (receipt →
            # batch pickup, measured across two coroutines) and pick the
            # first traced request as the batch span's parent — a batch
            # has one span but possibly many traces.
            picked_up_us = wall_us()
            batch_ctx: Optional[TraceContext] = None
            for pending in batch:
                if pending.trace is None:
                    continue
                self.recorder.record_manual(
                    "admission",
                    pending.trace,
                    pending.received_us,
                    picked_up_us - pending.received_us,
                    request_id=pending.request_id,
                )
                if batch_ctx is None:
                    batch_ctx = pending.trace
            if batch_ctx is not None:
                with self.recorder.span(
                    "batch", parent=batch_ctx, size=len(batch)
                ) as batch_span:
                    outcome = await asyncio.to_thread(
                        self._run_batch, batch, batch_span.context
                    )
            else:
                outcome = await asyncio.to_thread(self._run_batch, batch, None)
            for i, pending in enumerate(batch):
                if pending.future.cancelled():  # pragma: no cover - defensive
                    continue
                if outcome.error is not None:
                    pending.future.set_exception(outcome.error)
                else:
                    pending.future.set_result((outcome.results[i], outcome.cached[i]))

    async def _next_pending(self) -> Optional[_PendingRequest]:
        """The next queued request; None once draining with an empty queue."""
        assert self._queue is not None
        while True:
            if self._draining:
                try:
                    return self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    return None
            try:
                return await asyncio.wait_for(self._queue.get(), timeout=0.1)
            except asyncio.TimeoutError:
                continue

    def _run_batch(
        self,
        batch: List[_PendingRequest],
        batch_ctx: Optional[TraceContext] = None,
    ) -> _BatchOutcome:
        """Resolve one micro-batch (worker thread; blocking is fine here).

        Requests that hit the result cache are answered without a job;
        the rest — deduplicated, so identical concurrent requests share
        one simulation — go through :func:`repro.resilience.execute`
        over the persistent pool.  ``batch_ctx`` is the batch span's
        context; it propagates through the executor into worker jobs.
        """
        outcome = _BatchOutcome(
            results=[None] * len(batch), cached=[False] * len(batch)
        )
        try:
            from ..spec.wire import config_from_wire, extended_cache_key, jobspec_from_simulate

            config = ProcessorConfig.scaled()
            specs: List[JobSpec] = []
            spec_slots: Dict[tuple, List[int]] = {}
            spec_order: List[tuple] = []
            jobs_by_key: Dict[tuple, JobSpec] = {}
            for i, pending in enumerate(batch):
                params = pending.params
                if params.is_extended():
                    # Spec-expanded job (v4): content-address from the
                    # generation parameters themselves — no trace build
                    # at admission (interleaved traces are expensive).
                    job_config = config_from_wire(params.config)
                    key = extended_cache_key(params, job_config.fingerprint())
                    jobs_by_key[key] = jobspec_from_simulate(params, config=job_config)
                else:
                    # The registry memoises traces in-process, and Trace
                    # caches its fingerprint, so a warm repeat costs a dict
                    # lookup — this is what keys the result cache.
                    trace = make_workload(
                        params.workload, records=params.records, seed=params.seed
                    )
                    key = ResultCache.key(
                        trace.fingerprint(),
                        config.fingerprint(),
                        params.prefetcher,
                        params.warmup_records,
                    )
                pending.cache_key = key
                if params.use_cache:
                    if pending.trace is not None:
                        with self.recorder.span(
                            "cache:lookup", parent=pending.trace
                        ) as cache_span:
                            hit = self.cache.get(key)
                            cache_span.set(hit=hit is not None)
                    else:
                        hit = self.cache.get(key)
                    if hit is not None:
                        outcome.results[i] = hit
                        outcome.cached[i] = True
                        continue
                if key in spec_slots:
                    spec_slots[key].append(i)
                    continue
                spec_slots[key] = [i]
                spec_order.append(key)
                if key in jobs_by_key:
                    specs.append(jobs_by_key[key])
                else:
                    specs.append(
                        JobSpec(
                            workload=params.workload,
                            records=params.records,
                            seed=params.seed,
                            config=config,
                            prefetcher=(
                                None
                                if params.prefetcher == "none"
                                else build_prefetcher(params.prefetcher)
                            ),
                            label=params.prefetcher,
                            warmup_records=params.warmup_records,
                        )
                    )
            if specs:
                job_results = execute(
                    specs, self.policy, bus=self.bus, pool=self.pool,
                    trace=batch_ctx, telemetry=self.sink,
                )
                for key, result in zip(spec_order, job_results):
                    self.cache.put(key, result)
                    for slot in spec_slots[key]:
                        outcome.results[slot] = result
        except BaseException as exc:  # delivered per-request as INTERNAL
            outcome.error = exc
        return outcome

    # ------------------------------------------------------------------
    # Payloads and plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _validate_names(params: SimulateParams) -> None:
        if params.workload not in WORKLOADS:
            raise ProtocolError(
                ErrorCode.INVALID_REQUEST,
                f"unknown workload '{params.workload}'",
                known=sorted(WORKLOADS),
            )
        if params.prefetcher not in PREFETCHERS:
            raise ProtocolError(
                ErrorCode.INVALID_REQUEST,
                f"unknown prefetcher '{params.prefetcher}'",
                known=sorted(PREFETCHERS),
            )

    def _ping_payload(self) -> Dict[str, Any]:
        payload = {
            "pong": True,
            "version": __version__,
            "protocol": protocol.PROTOCOL_VERSION,
            "supported_versions": list(protocol.SUPPORTED_VERSIONS),
            "pid": os.getpid(),
            # The health frame a supervising front-end probes (v5).
            "uptime_s": time.monotonic() - self._started_at,
            "state": "draining" if self._draining else "ready",
        }
        if self.config.shard_index is not None:
            payload["shard_index"] = self.config.shard_index
        return payload

    def _stats_payload(self) -> Dict[str, Any]:
        assert self._queue is not None
        latency = self.metrics.latency_ms
        return {
            "pid": os.getpid(),
            "shard_index": self.config.shard_index,
            "uptime_s": time.monotonic() - self._started_at,
            "queue": {"depth": self._queue.qsize(), "limit": self.config.queue_size},
            "cache": self.cache.info(),
            "pool": {
                "workers": self.pool.max_workers,
                "generation": self.pool.generation,
            },
            "draining": self._draining,
            "latency_ms": {
                "p50": latency.quantile(0.5),
                "p90": latency.quantile(0.9),
                "p99": latency.quantile(0.99),
                "count": latency.total,
            },
            "metrics": self.registry.to_dict(),
            "simulation": self.sim_registry.to_dict(),
        }

    def merged_metrics(self) -> Dict[str, Any]:
        """Service + aggregated worker instruments as one snapshot.

        Names cannot collide: worker instruments arrive prefixed with
        their job label (``ebcp.``, ``pointer_chase.``, ...), while the
        service's own instruments are unprefixed.
        """
        snapshot = dict(self.registry.to_dict())
        snapshot.update(self.sim_registry.to_dict())
        return snapshot

    def _metrics_payload(self) -> Dict[str, Any]:
        return {
            "content_type": "text/plain; version=0.0.4",
            "text": render_prometheus(self.merged_metrics()),
        }

    #: Span ceiling per telemetry response; keeps the frame under
    #: ``protocol.MAX_FRAME_BYTES`` for long-lived shards.
    TELEMETRY_SPAN_CAP = 2000

    def _telemetry_payload(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Spans + registries for cross-process aggregation (v3).

        ``params["drain"]`` removes the spans on read — what a sharded
        front-end sends right before shutdown, so each span is shipped
        exactly once.  The newest :data:`TELEMETRY_SPAN_CAP` spans are
        kept when the backlog would overflow one frame; the count of
        dropped older spans is reported instead of silently truncating.
        """
        drain = bool(params.get("drain")) if isinstance(params, dict) else False
        spans = self.recorder.drain() if drain else self.recorder.snapshot()
        dropped = max(0, len(spans) - self.TELEMETRY_SPAN_CAP)
        if dropped:
            spans = spans[-self.TELEMETRY_SPAN_CAP:]
        return {
            "pid": os.getpid(),
            "shard_index": self.config.shard_index,
            "spans": spans,
            "dropped_spans": dropped,
            "metrics": self.registry.to_dict(),
            "simulation": self.sim_registry.to_dict(),
        }

    def _emit_completed(
        self,
        request_type: str,
        request_id: str,
        started: float,
        ok: bool,
        cached: bool = False,
    ) -> None:
        if self.bus.wants(RequestCompleted):
            self.bus.emit(
                RequestCompleted(
                    request_type=request_type,
                    request_id=request_id,
                    ok=ok,
                    cached=cached,
                    latency_ms=(time.monotonic() - started) * 1000.0,
                )
            )


async def serve(
    config: Optional[ServiceConfig] = None,
    policy: Optional[ExecutionPolicy] = None,
    ready_message: bool = True,
    metrics_out: Optional[str] = None,
    trace_out: Optional[str] = None,
    workers: int = 1,
    heartbeat_s: float = 2.0,
    max_restarts: int = 5,
) -> int:
    """Run one service until it drains (the ``repro-ebcp serve`` body).

    ``workers > 1`` runs the sharded tier instead: a consistent-hash
    front-end over that many single-shard worker processes
    (:class:`~repro.service.router.ShardedService`), supervised every
    ``heartbeat_s`` (``<= 0`` disables supervision) with at most
    ``max_restarts`` respawns per shard.  ``metrics_out`` dumps the
    merged registry (service + aggregated worker metrics) as JSON on
    shutdown; ``trace_out`` writes every span the service recorded (its
    own and the worker spans it absorbed) as a Chrome trace.
    """
    import json as _json

    from ..obs.tracing import write_chrome_trace

    if workers > 1:
        from .router import ShardedService

        service: Any = ShardedService(
            config=config,
            policy=policy,
            workers=workers,
            heartbeat_s=heartbeat_s,
            max_restarts=max_restarts,
        )
    else:
        service = SimulationService(config=config, policy=policy)
    host, port = await service.start()
    if ready_message:
        # The sentinel line CI and scripts wait for before sending traffic.
        print(f"repro-ebcp service listening on {host}:{port}", flush=True)
    await service.run(install_signal_handlers=True)
    if metrics_out:
        from pathlib import Path

        Path(metrics_out).write_text(
            _json.dumps(service.merged_metrics(), indent=2, sort_keys=True),
            encoding="utf-8",
        )
        log.info("merged metrics written to %s", metrics_out)
    if trace_out:
        write_chrome_trace(service.recorder.spans, trace_out)
        log.info("service trace written to %s", trace_out)
    return 0


class BackgroundService:
    """A service on a daemon thread — the harness tests and benches use.

    Runs ``asyncio.run(service.run())`` off-thread and blocks until the
    ephemeral port is bound, so callers can connect immediately:

    >>> with BackgroundService() as svc:        # doctest: +SKIP
    ...     client = ServiceClient(*svc.address)

    ``service`` hosts a prebuilt instance instead — any object with the
    service lifecycle (``start``/``run``/``begin_drain_threadsafe``/
    ``address``), which is how the sharded front-end
    (:class:`~repro.service.router.ShardedService`) reuses this harness.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        policy: Optional[ExecutionPolicy] = None,
        start_timeout_s: float = 10.0,
        service: Optional[Any] = None,
    ) -> None:
        if service is not None and (config is not None or policy is not None):
            raise ValueError("pass either a prebuilt service or config/policy, not both")
        self.service = service if service is not None else SimulationService(
            config=config or ServiceConfig(port=0), policy=policy
        )
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._main, name="repro-service", daemon=True
        )
        self._start_timeout_s = start_timeout_s

    def _main(self) -> None:
        async def body() -> None:
            await self.service.start()
            self._ready.set()
            await self.service.run()

        try:
            asyncio.run(body())
        except BaseException as exc:  # surfaced to the starting thread
            self._error = exc
            self._ready.set()

    # ------------------------------------------------------------------
    def start(self) -> "BackgroundService":
        self._thread.start()
        if not self._ready.wait(self._start_timeout_s):
            raise TimeoutError("service failed to start within the timeout")
        if self._error is not None:
            raise RuntimeError("service failed to start") from self._error
        return self

    @property
    def address(self) -> Tuple[str, int]:
        assert self.service.address is not None
        return self.service.address

    def stop(self, timeout_s: float = 30.0) -> None:
        self.service.begin_drain_threadsafe()
        self._thread.join(timeout_s)
        if self._thread.is_alive():  # pragma: no cover - drain wedged
            raise TimeoutError("service did not drain within the timeout")

    def __enter__(self) -> "BackgroundService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
