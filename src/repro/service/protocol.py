"""Wire protocol of the simulation service.

One request or response per line: a UTF-8 JSON object terminated by
``\\n`` (newline-delimited JSON).  Frames are small — a simulate request
is its generation parameters, a response carries a
:meth:`~repro.engine.stats.SimulationResult.snapshot` — and the framing
needs nothing beyond ``readline``, so the protocol is equally usable
from ``nc``, a shell script or the bundled SDK.

Versioning
----------
Every frame carries ``"v"``.  A request whose version the server does
not speak is answered with an ``unsupported_version`` error that lists
``SUPPORTED_VERSIONS``, so a newer client can downgrade instead of
guessing.  Version 2 added the ``metrics`` request type and an optional
``trace`` field on request frames; version 3 adds the ``telemetry``
request type and shard metadata on simulate responses served by a
sharded front-end.  Version 4 adds the streaming ``sweep`` request type
(one request, many response frames) and the extended simulate
parameters that carry a declarative-spec job: ``config`` (a
``{"base", "overrides"}`` processor-config payload),
``prefetcher_overrides``, ``n_threads``, ``scale`` and ``label``.  The
extended parameters are omitted from the wire at their defaults, so a
v4 client issuing a plain simulate emits frames a v1 server parses.
Version 5 adds the ``admin`` request type (fleet control: live resize
of a sharded front-end) and per-shard liveness fields on sharded
``ping``/``stats`` payloads.  Each version is a strict superset of the
previous one, so v1-v4 clients are still served — the server accepts
every version in ``SUPPORTED_VERSIONS``.

Request frames
--------------
``{"v": 3, "id": "<client-chosen>", "type": "<type>", "params": {...},
"trace": {"trace_id": ..., "span_id": ...}}`` — ``trace`` is optional
(v2+) and carries the client's :class:`~repro.obs.tracing.TraceContext`
so server-side spans join the client's trace.

=============  ========================================================
type           params
=============  ========================================================
``ping``       none — liveness and version discovery
``simulate``   ``workload``, ``prefetcher``, ``records``, ``seed``,
               optional ``warmup_records``, ``use_cache`` (default
               true); v4 adds optional ``config``,
               ``prefetcher_overrides``, ``n_threads``, ``scale``,
               ``label``
``sweep``      ``spec`` (a version-1 sweep-spec document, JSON form),
               optional ``use_cache`` — streams one frame per job
               (``{"job": {...}, "result": {...}}``) as they settle,
               then a terminal ``{"done": true}`` frame (v4+)
``stats``      none — the service's metrics-registry snapshot (sharded:
               the cross-shard aggregate plus a per-shard breakdown)
``metrics``    none — the merged registry as Prometheus text (v2+)
``telemetry``  optional ``drain`` (default false) — the spans and
               metric registries the service holds, for cross-process
               aggregation; ``drain`` removes the spans on read (v3+)
``admin``      ``command`` (currently only ``"resize"``) plus its
               arguments (``resize``: ``workers``, the target fleet
               size) — fleet control; only a sharded front-end accepts
               it (v5+)
``shutdown``   none — begin graceful drain (in-flight requests finish)
=============  ========================================================

Response frames
---------------
``{"v": 1, "id": ..., "ok": true, "result": {...}}`` on success, or
``{"v": 1, "id": ..., "ok": false, "error": {"code": ..., "message":
..., ...}}`` with a typed :class:`ErrorCode`.  ``queue_full`` errors
additionally carry ``retry_after_s`` — the server's backpressure hint.
A simulate response proxied by a sharded front-end additionally carries
``"shard": {"index": ..., "pid": ...}`` — which worker process ran (or
cached) the request.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "MAX_FRAME_BYTES",
    "REQUEST_TYPES",
    "ErrorCode",
    "ProtocolError",
    "ServiceError",
    "ServiceBusyError",
    "Request",
    "SimulateParams",
    "encode_frame",
    "decode_frame",
    "parse_request",
    "ok_response",
    "error_response",
    "raise_for_error",
]

#: The protocol version this build speaks natively.
PROTOCOL_VERSION = 5
#: Every version the server accepts (negotiation surface).  v1-v4
#: clients never send the newer request types and are served unchanged.
SUPPORTED_VERSIONS: Tuple[int, ...] = (1, 2, 3, 4, 5)
#: Upper bound on one frame; a longer line is a malformed frame.
MAX_FRAME_BYTES = 1 << 20

REQUEST_TYPES = (
    "ping", "simulate", "sweep", "stats", "metrics", "telemetry", "admin", "shutdown"
)


class ErrorCode(str, Enum):
    """Typed error codes; the wire form is the lowercase string value."""

    MALFORMED_FRAME = "malformed_frame"
    UNSUPPORTED_VERSION = "unsupported_version"
    UNKNOWN_TYPE = "unknown_type"
    INVALID_REQUEST = "invalid_request"
    QUEUE_FULL = "queue_full"
    SHUTTING_DOWN = "shutting_down"
    INTERNAL = "internal"


class ServiceError(Exception):
    """An error response from the service, surfaced client-side."""

    def __init__(self, code: ErrorCode, message: str, **details: Any) -> None:
        super().__init__(f"{code.value}: {message}")
        self.code = code
        self.message = message
        self.details = details


class ServiceBusyError(ServiceError):
    """``queue_full`` backpressure — retry after :attr:`retry_after_s`."""

    def __init__(self, message: str, retry_after_s: float = 0.0, **details: Any) -> None:
        super().__init__(ErrorCode.QUEUE_FULL, message, **details)
        self.retry_after_s = retry_after_s


class ProtocolError(Exception):
    """A frame the server cannot act on (server-side parse failure)."""

    def __init__(self, code: ErrorCode, message: str, **details: Any) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.details = details


# ----------------------------------------------------------------------
# Typed request payloads
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SimulateParams:
    """Parameters of one simulate request.

    Deliberately *names*, not objects: the client names a registered
    workload and prefetcher, and the server constructs both — which is
    what makes the fingerprint-keyed result cache safe (every request
    with equal parameters starts from identical predictor state).
    """

    workload: str
    prefetcher: str = "none"
    records: int = 280_000
    seed: int = 7
    warmup_records: Optional[int] = None
    use_cache: bool = True
    # v4 extensions (spec-expanded jobs).  All default to the value a
    # v1-v3 server assumes, and to_dict omits them at their defaults, so
    # a plain simulate stays wire-compatible in both directions.
    config: Optional[Dict[str, Any]] = None
    prefetcher_overrides: Optional[Dict[str, Any]] = None
    n_threads: int = 0
    scale: float = 1.0
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.workload, str) or not self.workload:
            raise ProtocolError(ErrorCode.INVALID_REQUEST, "workload must be a non-empty string")
        if not isinstance(self.prefetcher, str) or not self.prefetcher:
            raise ProtocolError(ErrorCode.INVALID_REQUEST, "prefetcher must be a non-empty string")
        if not isinstance(self.records, int) or self.records <= 0:
            raise ProtocolError(ErrorCode.INVALID_REQUEST, "records must be a positive integer")
        if not isinstance(self.seed, int):
            raise ProtocolError(ErrorCode.INVALID_REQUEST, "seed must be an integer")
        if self.warmup_records is not None and (
            not isinstance(self.warmup_records, int) or self.warmup_records < 0
        ):
            raise ProtocolError(
                ErrorCode.INVALID_REQUEST, "warmup_records must be a non-negative integer"
            )
        if self.config is not None and not isinstance(self.config, dict):
            raise ProtocolError(ErrorCode.INVALID_REQUEST, "config must be an object")
        if self.prefetcher_overrides is not None and not isinstance(
            self.prefetcher_overrides, dict
        ):
            raise ProtocolError(
                ErrorCode.INVALID_REQUEST, "prefetcher_overrides must be an object"
            )
        if not isinstance(self.n_threads, int) or isinstance(self.n_threads, bool) \
                or self.n_threads < 0:
            raise ProtocolError(
                ErrorCode.INVALID_REQUEST, "n_threads must be a non-negative integer"
            )
        if not isinstance(self.scale, (int, float)) or isinstance(self.scale, bool) \
                or self.scale <= 0:
            raise ProtocolError(ErrorCode.INVALID_REQUEST, "scale must be a positive number")
        if self.label is not None and not isinstance(self.label, str):
            raise ProtocolError(ErrorCode.INVALID_REQUEST, "label must be a string")

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "workload": self.workload,
            "prefetcher": self.prefetcher,
            "records": self.records,
            "seed": self.seed,
            "use_cache": self.use_cache,
        }
        if self.warmup_records is not None:
            payload["warmup_records"] = self.warmup_records
        if self.config is not None:
            payload["config"] = self.config
        if self.prefetcher_overrides is not None:
            payload["prefetcher_overrides"] = self.prefetcher_overrides
        if self.n_threads:
            payload["n_threads"] = self.n_threads
        if self.scale != 1.0:
            payload["scale"] = self.scale
        if self.label is not None:
            payload["label"] = self.label
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SimulateParams":
        if not isinstance(payload, dict):
            raise ProtocolError(ErrorCode.INVALID_REQUEST, "params must be an object")
        known = {
            "workload",
            "prefetcher",
            "records",
            "seed",
            "warmup_records",
            "use_cache",
            "config",
            "prefetcher_overrides",
            "n_threads",
            "scale",
            "label",
        }
        unknown = set(payload) - known
        if unknown:
            raise ProtocolError(
                ErrorCode.INVALID_REQUEST,
                f"unknown simulate parameter(s): {', '.join(sorted(unknown))}",
            )
        if "workload" not in payload:
            raise ProtocolError(ErrorCode.INVALID_REQUEST, "simulate requires 'workload'")
        return cls(**payload)

    def is_extended(self) -> bool:
        """True when any v4-only field departs from its v1-v3 default."""
        return (
            self.config is not None
            or self.prefetcher_overrides is not None
            or self.n_threads != 0
            or self.scale != 1.0
        )


@dataclass(frozen=True)
class Request:
    """One parsed, version-checked request frame.

    ``trace`` is the optional (v2+) trace-context wire dict; absent for
    v1 clients and untraced v2 requests.
    """

    type: str
    id: str
    version: int = PROTOCOL_VERSION
    params: Dict[str, Any] = field(default_factory=dict)
    trace: Optional[Dict[str, str]] = None

    def to_dict(self) -> Dict[str, Any]:
        frame: Dict[str, Any] = {"v": self.version, "id": self.id, "type": self.type}
        if self.params:
            frame["params"] = self.params
        if self.trace:
            frame["trace"] = self.trace
        return frame


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_frame(payload: Dict[str, Any]) -> bytes:
    """One JSON object as a newline-terminated UTF-8 frame."""
    return json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8") + b"\n"


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one frame; raises :class:`ProtocolError` on garbage."""
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            ErrorCode.MALFORMED_FRAME, f"frame exceeds {MAX_FRAME_BYTES} bytes"
        )
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(ErrorCode.MALFORMED_FRAME, f"not a JSON frame: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(ErrorCode.MALFORMED_FRAME, "frame must be a JSON object")
    return payload


def parse_request(line: bytes) -> Request:
    """Parse and validate one request frame (version, type, id shape)."""
    payload = decode_frame(line)
    request_id = payload.get("id")
    if request_id is None:
        request_id = ""
    if not isinstance(request_id, str):
        raise ProtocolError(ErrorCode.MALFORMED_FRAME, "'id' must be a string")
    version = payload.get("v")
    if not isinstance(version, int):
        raise ProtocolError(
            ErrorCode.MALFORMED_FRAME, "missing integer 'v' (protocol version)",
            request_id=request_id,
        )
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(
            ErrorCode.UNSUPPORTED_VERSION,
            f"protocol version {version} not supported",
            request_id=request_id,
            supported=list(SUPPORTED_VERSIONS),
        )
    request_type = payload.get("type")
    if not isinstance(request_type, str):
        raise ProtocolError(
            ErrorCode.MALFORMED_FRAME, "missing string 'type'", request_id=request_id
        )
    if request_type not in REQUEST_TYPES:
        raise ProtocolError(
            ErrorCode.UNKNOWN_TYPE,
            f"unknown request type '{request_type}'",
            request_id=request_id,
            known=list(REQUEST_TYPES),
        )
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST, "'params' must be an object", request_id=request_id
        )
    # Trace context is best-effort observability: a malformed one is
    # dropped, never a request failure.
    trace = payload.get("trace")
    if not isinstance(trace, dict):
        trace = None
    return Request(
        type=request_type, id=request_id, version=version, params=params, trace=trace
    )


# ----------------------------------------------------------------------
# Response construction
# ----------------------------------------------------------------------
def ok_response(request_id: str, result: Dict[str, Any], **extra: Any) -> Dict[str, Any]:
    frame: Dict[str, Any] = {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": True,
        "result": result,
    }
    frame.update(extra)
    return frame


def error_response(
    request_id: str, code: ErrorCode, message: str, **details: Any
) -> Dict[str, Any]:
    error: Dict[str, Any] = {"code": code.value, "message": message}
    error.update(details)
    return {"v": PROTOCOL_VERSION, "id": request_id, "ok": False, "error": error}


def raise_for_error(frame: Dict[str, Any]) -> Dict[str, Any]:
    """Client-side: return ``frame`` if ok, else raise a typed error."""
    if frame.get("ok"):
        return frame
    error = frame.get("error") or {}
    message = str(error.get("message", "unknown service error"))
    try:
        code = ErrorCode(error.get("code"))
    except ValueError:
        code = ErrorCode.INTERNAL
    details = {
        k: v for k, v in error.items() if k not in ("code", "message", "retry_after_s")
    }
    if code is ErrorCode.QUEUE_FULL:
        raise ServiceBusyError(
            message, retry_after_s=float(error.get("retry_after_s", 0.0)), **details
        )
    raise ServiceError(code, message, **details)
