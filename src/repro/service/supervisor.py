"""Shard supervision: liveness, crash recovery and live resize.

PR 8's sharded tier boots a fixed fleet and assumes it stays up; this
module turns that boot-time topology into a *supervised* fleet.  One
:class:`ShardSupervisor` lives inside the
:class:`~repro.service.router.ShardedService` event loop and owns shard
lifecycle end to end:

* **Liveness** — every ``heartbeat_s`` the supervisor sweeps the fleet:
  ``process.is_alive()`` catches a crashed worker immediately, and an
  async ``ping`` probe over the pooled links catches a wedged one.  Each
  shard carries a typed state machine::

      starting ──► ready ◄────────────┐
                    │ missed probe /  │ probe ok /
                    ▼ transport error │ handshake
                  suspect ────────────┤
                    │ process dead or │
                    ▼ strikes == N    │
                   dead ──► respawning┘
                    │ restarts > max_restarts
                    ▼
                retired (ring shrinks — fail-stop)

  ``suspect`` is a strike, not a verdict: the shard keeps routing until
  the strikes accumulate or its process is simply gone.

* **Crash recovery** — a dead shard's in-flight requests fail fast with
  retryable ``queue_full`` errors (the SDK's existing backpressure
  retry absorbs the window), then the supervisor forks a replacement
  with the *same shard id*.  The ring is untouched, so the newcomer
  inherits the exact key range, re-runs the dead shard's ``--prewarm``
  slice, and — when a shared ``cache_dir`` is configured — re-serves
  previously computed results from the disk tier instead of
  re-simulating them.

* **Live resize** — the protocol v5 ``admin`` request
  (``{"command": "resize", "workers": N}``) grows the fleet via
  :meth:`HashRing.add` (each newcomer is warmed from the shared disk
  tier *before* it enters the ring) and shrinks it with a drain-aware
  rebalance: :meth:`HashRing.remove` first (no new keys route there),
  in-flight proxied requests finish, the victim's final telemetry is
  absorbed into the router, then it is shut down and joined.
  Consistent hashing guarantees only the added/removed shards' keys
  remap — the property ``tests/test_sharding.py`` pins.

The supervisor is deliberately an *event-loop peer* of the router, not
a thread: every mutation of ``shards``/``ring``/``_by_name`` happens on
the loop, so the router's request handlers never observe a torn fleet.
"""

from __future__ import annotations

import asyncio
import dataclasses
import logging
import multiprocessing
import os
import signal
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from ..engine.config import ProcessorConfig
from ..obs.events import FleetResized, ShardRestarted, ShardSuspect
from ..resilience.policy import ExecutionPolicy
from .server import ServiceConfig, SimulationService
from .sharding import HashRing, routing_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .router import ShardedService

__all__ = ["ShardState", "ShardInfo", "ShardSupervisor"]

log = logging.getLogger(__name__)


class ShardState(str, Enum):
    """Lifecycle state of one shard behind the ring."""

    STARTING = "starting"
    READY = "ready"
    SUSPECT = "suspect"
    DEAD = "dead"
    RESPAWNING = "respawning"
    DRAINING = "draining"


def _shard_main(
    index: int, config: ServiceConfig, policy: ExecutionPolicy, conn: Any
) -> None:
    """Worker-process entry point: run one shard until drained.

    Reports ``{"port", "pid"}`` through ``conn`` once the shard is
    bound (and pre-warmed, when configured), so the front-end only
    advertises readiness when the whole fleet can serve.  SIGINT is
    ignored before the loop starts — a Ctrl-C against the process group
    must reach the shard as the front-end's orderly ``shutdown`` frame
    (or SIGTERM), not as a KeyboardInterrupt mid-start.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass

    async def body() -> None:
        service = SimulationService(config=config, policy=policy)
        _host, port = await service.start()
        conn.send({"port": port, "pid": os.getpid()})
        conn.close()
        await service.run(install_signal_handlers=True)

    asyncio.run(body())


@dataclass
class ShardInfo:
    """One shard behind the ring (live or being replaced)."""

    index: int
    name: str
    port: int
    pid: int
    process: Any
    #: Idle pooled connections to this shard ``(reader, writer)``.
    idle: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = field(
        default_factory=list
    )
    #: The exact worker config this shard was forked with — a respawn
    #: reuses it verbatim (same shard id, same ``--prewarm`` slice).
    config: Optional[ServiceConfig] = None
    state: ShardState = ShardState.READY
    #: Times the supervisor replaced this shard's process.
    restarts: int = 0
    #: Consecutive failed health probes (reset on any success).
    probe_misses: int = 0
    #: Requests currently proxied to this shard (drain-aware rebalance).
    inflight: int = 0
    #: When the *current* process became ready (monotonic clock).
    started_at: float = field(default_factory=time.monotonic)
    #: When the current incarnation was declared dead (downtime metric).
    died_at: float = 0.0

    @property
    def uptime_s(self) -> float:
        return max(0.0, time.monotonic() - self.started_at)


def drop_idle_links(shard: ShardInfo) -> None:
    """Close every pooled connection to ``shard`` (they point at a dead
    or superseded process; the next round-trip opens fresh sockets)."""
    while shard.idle:
        _reader, writer = shard.idle.pop()
        try:
            writer.close()
        except Exception:  # pragma: no cover - already broken
            pass


def wait_shard_ready(conn: Any, process: Any, timeout_s: float) -> Dict[str, Any]:
    """Block (in an executor thread) for one shard's ready handshake."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if conn.poll(0.1):
            return conn.recv()
        if not process.is_alive():
            raise RuntimeError(
                f"shard process {process.name} exited during start-up "
                f"(exitcode {process.exitcode})"
            )
    process.terminate()
    raise TimeoutError(
        f"shard {process.name} did not report ready within {timeout_s:.0f}s"
    )


class ShardSupervisor:
    """Owns shard lifecycle inside a :class:`ShardedService`.

    ``heartbeat_s <= 0`` disables supervision entirely (the fleet
    behaves exactly like the pre-supervisor static tier); the router
    still uses :meth:`fork`/:meth:`spawn_shard` for its boot path.
    """

    def __init__(
        self,
        service: "ShardedService",
        heartbeat_s: float = 2.0,
        max_restarts: int = 5,
        probe_timeout_s: float = 5.0,
        suspect_probes: int = 2,
    ) -> None:
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        if suspect_probes < 1:
            raise ValueError(f"suspect_probes must be >= 1, got {suspect_probes}")
        self.service = service
        self.heartbeat_s = heartbeat_s
        self.max_restarts = max_restarts
        self.probe_timeout_s = probe_timeout_s
        self.suspect_probes = suspect_probes
        self._task: Optional[asyncio.Task] = None
        self._wake: Optional[asyncio.Event] = None
        self._respawns: Dict[int, asyncio.Task] = {}
        self._resize_lock = asyncio.Lock()

    @property
    def enabled(self) -> bool:
        return self.heartbeat_s > 0

    def retry_after_s(self) -> float:
        """The backpressure hint sent while a shard is being replaced."""
        if not self.enabled:
            return 0.25
        return max(0.05, min(1.0, self.heartbeat_s))

    # ------------------------------------------------------------------
    # Forking (boot, respawn and resize all share this path)
    # ------------------------------------------------------------------
    def fork(self, index: int, config: ServiceConfig) -> Tuple[Any, Any]:
        """Start one shard process; returns ``(handshake_conn, process)``."""
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        # NOT daemonic: each shard owns a ProcessPoolExecutor, and
        # daemonic processes are not allowed to have children.
        process = ctx.Process(
            target=_shard_main,
            args=(index, config, self.service.policy, child_conn),
            name=f"repro-shard-{index}",
            daemon=False,
        )
        process.start()
        child_conn.close()
        return parent_conn, process

    async def handshake(self, conn: Any, process: Any) -> Dict[str, Any]:
        """Await the ``{"port", "pid"}`` ready frame off the loop."""
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(
                None, wait_shard_ready, conn, process,
                self.service.shard_start_timeout_s,
            )
        finally:
            conn.close()

    async def spawn_shard(self, index: int, config: ServiceConfig) -> ShardInfo:
        """Fork + handshake one shard; terminates the process on failure."""
        conn, process = self.fork(index, config)
        try:
            info = await self.handshake(conn, process)
        except Exception:
            if process.is_alive():
                process.terminate()
            raise
        return ShardInfo(
            index=index,
            name=f"shard-{index}",
            port=int(info["port"]),
            pid=int(info["pid"]),
            process=process,
            config=config,
            state=ShardState.READY,
        )

    # ------------------------------------------------------------------
    # Heartbeat loop
    # ------------------------------------------------------------------
    def start(self) -> None:
        if not self.enabled or self._task is not None:
            return
        self._wake = asyncio.Event()
        self._task = asyncio.create_task(self._run(), name="shard-supervisor")

    async def stop(self) -> None:
        """Stop probing; let an in-flight respawn finish (never orphan a
        freshly forked process)."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        if self._respawns:
            await asyncio.wait(
                list(self._respawns.values()),
                timeout=self.service.shard_start_timeout_s,
            )

    async def _run(self) -> None:
        assert self._wake is not None
        while True:
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=self.heartbeat_s)
            except asyncio.TimeoutError:
                pass
            self._wake.clear()
            if self.service.draining:
                return
            try:
                await self.check_fleet()
            except asyncio.CancelledError:
                raise
            except Exception:  # pragma: no cover - defensive
                log.exception("supervisor heartbeat failed")

    async def check_fleet(self) -> None:
        """One liveness sweep: dead-process checks, then async probes."""
        for shard in list(self.service.shards):
            if shard.state in (
                ShardState.RESPAWNING, ShardState.DEAD, ShardState.DRAINING
            ):
                continue
            if not shard.process.is_alive():
                self.note_suspect(shard, "process exited")
                self._mark_dead(
                    shard, f"process exited (exitcode {shard.process.exitcode})"
                )
                continue
            await self._probe(shard)

    async def _probe(self, shard: ShardInfo) -> None:
        try:
            payload = await asyncio.wait_for(
                self.service._shard_control(shard, "ping"),
                timeout=self.probe_timeout_s,
            )
        except asyncio.TimeoutError:
            payload = None
        if shard.state in (
            ShardState.RESPAWNING, ShardState.DEAD, ShardState.DRAINING
        ):
            return  # the shard moved under the await; leave it alone
        if payload is not None:
            shard.probe_misses = 0
            shard.state = ShardState.READY
            self.service.metrics.set_uptime(shard.name, shard.uptime_s)
            return
        self.note_suspect(shard, "probe failed")
        if not shard.process.is_alive() or shard.probe_misses >= self.suspect_probes:
            self._mark_dead(shard, "probe failed")

    # ------------------------------------------------------------------
    # State transitions
    # ------------------------------------------------------------------
    def note_suspect(self, shard: ShardInfo, cause: str) -> None:
        """One strike against ``shard`` (probe miss or transport error)."""
        shard.probe_misses += 1
        if shard.state in (ShardState.READY, ShardState.STARTING, ShardState.SUSPECT):
            shard.state = ShardState.SUSPECT
            self.service.emit(
                ShardSuspect(
                    index=shard.index,
                    pid=shard.pid,
                    misses=shard.probe_misses,
                    cause=cause,
                )
            )

    def note_failure(self, shard: ShardInfo, cause: str = "") -> None:
        """The router hit a transport error proxying to ``shard``.

        Synchronous (called from request handlers): records a strike and
        wakes the heartbeat loop so death is confirmed on the loop, not
        in the middle of a request.
        """
        if not self.enabled:
            return
        if shard.state in (
            ShardState.RESPAWNING, ShardState.DEAD, ShardState.DRAINING
        ):
            return
        self.note_suspect(shard, cause or "transport error")
        if self._wake is not None:
            self._wake.set()

    def _mark_dead(self, shard: ShardInfo, cause: str) -> None:
        """Declare ``shard`` dead and schedule its replacement."""
        if shard.state in (
            ShardState.RESPAWNING, ShardState.DEAD, ShardState.DRAINING
        ):
            return
        shard.died_at = time.monotonic()
        drop_idle_links(shard)
        if shard.restarts >= self.max_restarts:
            shard.state = ShardState.DEAD
            self._retire_dead(shard, cause)
            return
        shard.state = ShardState.RESPAWNING
        log.warning("%s (pid %d) dead: %s — respawning", shard.name, shard.pid, cause)
        task = asyncio.create_task(
            self._respawn(shard), name=f"respawn-{shard.name}"
        )
        self._respawns[shard.index] = task
        task.add_done_callback(lambda _t: self._respawns.pop(shard.index, None))

    async def _respawn(self, shard: ShardInfo) -> None:
        """Replace a dead shard's process; the ring is untouched."""
        svc = self.service
        old_pid = shard.pid
        old_process = shard.process
        shard.restarts += 1
        process = None
        try:
            config = shard.config if shard.config is not None else svc.config
            conn, process = self.fork(shard.index, config)
            info = await self.handshake(conn, process)
        except Exception as exc:
            if process is not None and process.is_alive():
                process.terminate()
            # Back to suspect: the next heartbeat finds the process dead
            # and tries again (until the restart budget runs out).
            shard.state = ShardState.SUSPECT
            log.warning("respawn of %s failed: %s", shard.name, exc)
            return
        shard.port = int(info["port"])
        shard.pid = int(info["pid"])
        shard.process = process
        shard.probe_misses = 0
        shard.started_at = time.monotonic()
        shard.state = ShardState.READY
        try:
            old_process.join(0)  # reap the zombie; it is already dead
        except Exception:  # pragma: no cover - platform quirks
            pass
        downtime = time.monotonic() - (shard.died_at or time.monotonic())
        svc.metrics.count_restart(shard.name)
        svc.metrics.set_uptime(shard.name, 0.0)
        svc.emit(
            ShardRestarted(
                index=shard.index,
                old_pid=old_pid,
                new_pid=shard.pid,
                restarts=shard.restarts,
                downtime_s=downtime,
            )
        )
        log.info(
            "%s respawned: pid %d -> %d (restart %d, %.2fs downtime)",
            shard.name, old_pid, shard.pid, shard.restarts, downtime,
        )

    def _retire_dead(self, shard: ShardInfo, cause: str) -> None:
        """Fail-stop: drop a shard that exhausted its restart budget."""
        svc = self.service
        previous = len(svc.shards)
        svc.ring.remove(shard.name)
        svc._by_name.pop(shard.name, None)
        if shard in svc.shards:
            svc.shards.remove(shard)
        svc.workers = len(svc.shards)
        svc.metrics.shards.set(float(len(svc.shards)))
        svc.emit(
            FleetResized(
                previous_workers=previous,
                workers=len(svc.shards),
                removed=(shard.index,),
                reason="max_restarts",
            )
        )
        log.error(
            "%s retired after %d restarts (%s); fleet is now %d shard(s)",
            shard.name, shard.restarts, cause, len(svc.shards),
        )

    # ------------------------------------------------------------------
    # Live resize (protocol v5 admin request)
    # ------------------------------------------------------------------
    async def resize(self, workers: int) -> Dict[str, Any]:
        """Grow or shrink the fleet to ``workers`` shards, live."""
        if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
            raise ValueError(f"workers must be a positive integer, got {workers!r}")
        async with self._resize_lock:
            svc = self.service
            previous = len(svc.shards)
            added: List[int] = []
            removed: List[int] = []
            if workers > previous:
                added = await self._grow(workers - previous)
            elif workers < previous:
                removed = await self._shrink(previous - workers)
            svc.workers = len(svc.shards)
            svc.metrics.shards.set(float(len(svc.shards)))
            if added or removed:
                svc.metrics.resizes.inc()
                svc.emit(
                    FleetResized(
                        previous_workers=previous,
                        workers=len(svc.shards),
                        added=tuple(added),
                        removed=tuple(removed),
                    )
                )
                log.info(
                    "fleet resized %d -> %d (added %s, removed %s)",
                    previous, len(svc.shards), added or "-", removed or "-",
                )
            return {
                "workers": len(svc.shards),
                "previous_workers": previous,
                "added": added,
                "removed": removed,
                "shards": [
                    {"index": s.index, "pid": s.pid, "state": s.state.value}
                    for s in svc.shards
                ],
            }

    async def _grow(self, count: int) -> List[int]:
        """Spawn ``count`` newcomers; each enters the ring only after its
        handshake (and disk-tier warm-up) completed."""
        svc = self.service
        existing = {s.index for s in svc.shards}
        new_indexes: List[int] = []
        candidate = 0
        while len(new_indexes) < count:
            if candidate not in existing:
                new_indexes.append(candidate)
            candidate += 1

        # Partition the prewarm working set with the *prospective* ring,
        # so each newcomer warms exactly the traces it is about to own.
        prospective = HashRing(
            [s.name for s in svc.shards] + [f"shard-{i}" for i in new_indexes]
        )
        prewarm_by: Dict[str, List[Tuple[str, int, int]]] = {
            f"shard-{i}": [] for i in new_indexes
        }
        config_fp = svc._config_fp or ProcessorConfig.scaled().fingerprint()
        for workload, records, seed in svc.config.prewarm:
            owner = prospective.route(routing_key(workload, records, seed, config_fp))
            if owner in prewarm_by:
                prewarm_by[owner].append((workload, records, seed))

        async def spawn(index: int) -> ShardInfo:
            config = dataclasses.replace(
                svc.config,
                host="127.0.0.1",
                port=0,
                shard_index=index,
                prewarm=tuple(prewarm_by[f"shard-{index}"]),
                # Warm the newcomer's memory tier from the shared disk
                # tier before it takes traffic.
                preload_disk=svc.config.cache_dir is not None,
            )
            return await self.spawn_shard(index, config)

        results = await asyncio.gather(
            *(spawn(i) for i in new_indexes), return_exceptions=True
        )
        failures = [r for r in results if isinstance(r, BaseException)]
        if failures:
            for r in results:
                if isinstance(r, ShardInfo):
                    # Never entered the ring; discard it.
                    r.process.terminate()
            raise failures[0]
        added: List[int] = []
        for shard in results:
            assert isinstance(shard, ShardInfo)
            svc.shards.append(shard)
            svc._by_name[shard.name] = shard
            svc.ring.add(shard.name)
            added.append(shard.index)
        svc.shards.sort(key=lambda s: s.index)
        return added

    async def _shrink(self, count: int) -> List[int]:
        """Drain-aware removal of the ``count`` highest-index shards."""
        svc = self.service
        victims = sorted(svc.shards, key=lambda s: s.index)[-count:]
        removed: List[int] = []
        # Unroute all victims first — synchronously, so no request can
        # land on a shard that is about to drain.
        for victim in victims:
            victim.state = ShardState.DRAINING
            svc.ring.remove(victim.name)
            svc._by_name.pop(victim.name, None)
            svc.shards.remove(victim)
            removed.append(victim.index)
        for victim in victims:
            await self._retire(victim)
        return removed

    async def _retire(self, victim: ShardInfo) -> None:
        """Let a drained-out victim finish, absorb its telemetry, join."""
        svc = self.service
        deadline = time.monotonic() + svc.config.drain_timeout_s
        while victim.inflight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        payload = await svc._shard_control(victim, "telemetry", drain=True)
        if payload is not None:
            svc.recorder.extend(payload.get("spans", ()))
            # The payload's registries keep counting in fleet aggregates
            # after the process is gone (stats/metrics/final telemetry).
            svc._retired.append((victim.index, payload))
        await svc._shard_control(victim, "shutdown")
        drop_idle_links(victim)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._join_victim, victim)
        victim.state = ShardState.DEAD

    def _join_victim(self, victim: ShardInfo) -> None:
        victim.process.join(self.service.config.drain_timeout_s)
        if victim.process.is_alive():  # pragma: no cover - drain wedged
            log.warning("%s did not drain on removal; terminating", victim.name)
            victim.process.terminate()
            victim.process.join(5.0)
