"""The sharded service tier: consistent-hash front-end over N shards.

One :class:`ShardedService` is a front-end acceptor plus ``workers``
single-shard worker processes, each running an unmodified
:class:`~repro.service.server.SimulationService` on an ephemeral
localhost port — its own admission queue, micro-batcher,
:class:`~repro.resilience.executor.PersistentPool` and
:class:`~repro.service.cache.ResultCache`.  The front-end:

* **routes** every simulate frame over a consistent-hash ring
  (:mod:`repro.service.sharding`) keyed by the request's generation
  parameters + processor-config fingerprint, so every run of one trace
  lands on the same shard and that shard's trace memo, filter planes
  and result cache stay hot (locality-preserving request routing);
* **proxies** at the byte level: an untraced frame is forwarded
  verbatim over a pooled shard connection and the shard's response is
  returned with ``"shard": {"index", "pid"}`` metadata attached;
  a traced frame is re-parented under a ``router:route`` span first,
  so the client's trace shows the routing hop;
* **answers control requests itself**: ``ping`` describes the fleet,
  ``stats``/``metrics`` fan out to every shard and merge the registries
  (:meth:`MetricsRegistry.merge`) into one aggregate *plus* per-shard
  breakdowns, ``telemetry`` combines every process's spans;
* **drains gracefully**: stop accepting, finish in-flight proxied
  requests, pull each shard's spans and metrics (``telemetry`` with
  ``drain=true``), forward ``shutdown``, and join the processes — so
  ``--trace-out``/``--metrics-out`` on the front-end cover the whole
  fleet;
* **is supervised**: a :class:`~repro.service.supervisor.ShardSupervisor`
  probes the fleet every ``heartbeat_s``, replaces dead shards in place
  (the ring untouched, so the replacement owns the same key range) and
  executes live resizes requested over the protocol v5 ``admin``
  request — see :mod:`repro.service.supervisor`.

Shards share one ``cache_dir`` when configured: the disk tier is
content-addressed and written atomically, so warm results survive not
just restarts but ring resizes (a key that moves shards is re-served
from disk, not re-simulated).
"""

from __future__ import annotations

import asyncio
import dataclasses
import logging
import os
import signal
import time
from typing import Any, Dict, List, Optional, Tuple

from .. import __version__
from ..engine.config import ProcessorConfig
from ..obs.bus import EventBus
from ..obs.events import Event
from ..obs.metrics import MetricsRegistry, RouterMetrics
from ..obs.prometheus import render_prometheus
from ..obs.tracing import SpanRecorder, TraceContext
from ..prefetchers.registry import PREFETCHERS
from ..resilience.policy import ExecutionPolicy
from ..workloads.registry import WORKLOADS
from . import protocol
from .protocol import ErrorCode, ProtocolError, Request, SimulateParams
from .server import ServiceConfig, SimulationService
from .sharding import HashRing, routing_key
from .supervisor import (
    ShardInfo,
    ShardState,
    ShardSupervisor,
    drop_idle_links,
)

__all__ = ["ShardedService", "ShardInfo", "ShardState"]

log = logging.getLogger(__name__)


class ShardedService:
    """Front-end acceptor routing requests over shard worker processes.

    Speaks the same wire protocol as :class:`SimulationService` on the
    same lifecycle surface (``start``/``run``/``begin_drain``/
    ``address``/``recorder``/``merged_metrics``), so ``serve``,
    :class:`~repro.service.server.BackgroundService` and the CLI host
    either interchangeably.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        policy: Optional[ExecutionPolicy] = None,
        workers: int = 2,
        shard_start_timeout_s: float = 120.0,
        heartbeat_s: float = 2.0,
        max_restarts: int = 5,
        bus: Optional[EventBus] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.config = config or ServiceConfig()
        self.policy = policy or ExecutionPolicy()
        self.workers = workers
        self.shard_start_timeout_s = shard_start_timeout_s
        self.bus = bus
        self.registry = MetricsRegistry()
        self.metrics = RouterMetrics(self.registry)
        #: Router spans; at drain every shard's spans are absorbed here,
        #: so ``serve --trace-out`` covers the whole fleet.
        self.recorder = SpanRecorder("router")
        self.ring = HashRing(f"shard-{i}" for i in range(workers))
        self.shards: List[ShardInfo] = []
        self.address: Optional[Tuple[str, int]] = None
        #: Shard lifecycle owner (probes, respawns, live resize).
        self.supervisor = ShardSupervisor(
            self, heartbeat_s=heartbeat_s, max_restarts=max_restarts
        )

        self._by_name: Dict[str, ShardInfo] = {}
        self._config_fp: Optional[tuple] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._drain_requested: Optional[asyncio.Event] = None
        self._draining = False
        self._busy_handlers = 0
        self._writers: "set[asyncio.StreamWriter]" = set()
        self._started_at = time.monotonic()
        #: Final telemetry payloads of shards removed by a live resize —
        #: their request counts keep counting in fleet aggregates.
        self._retired: List[Tuple[int, Dict[str, Any]]] = []
        #: Fleet-wide metric snapshot frozen at drain (``merged_metrics``).
        self._final_metrics: Optional[Dict[str, Any]] = None

    def emit(self, event: Event) -> None:
        """Publish an obs event when a bus is attached and listening."""
        bus = self.bus
        if bus is not None and bus.wants(type(event)):
            bus.emit(event)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Spawn the shards, bind the front-end, return ``(host, port)``."""
        self._loop = asyncio.get_running_loop()
        self._drain_requested = asyncio.Event()
        self._config_fp = ProcessorConfig.scaled().fingerprint()

        # Partition the prewarm working set the same way requests will
        # route, so each shard warms exactly the traces it will serve.
        prewarm_by_shard: Dict[str, List[Tuple[str, int, int]]] = {
            name: [] for name in self.ring.shards()
        }
        for workload, records, seed in self.config.prewarm:
            key = routing_key(workload, records, seed, self._config_fp)
            prewarm_by_shard[self.ring.route(key)].append((workload, records, seed))

        shard_configs = {
            index: dataclasses.replace(
                self.config,
                host="127.0.0.1",
                port=0,
                shard_index=index,
                prewarm=tuple(prewarm_by_shard[f"shard-{index}"]),
            )
            for index in range(self.workers)
        }
        results = await asyncio.gather(
            *(
                self.supervisor.spawn_shard(index, shard_config)
                for index, shard_config in shard_configs.items()
            ),
            return_exceptions=True,
        )
        failures = [r for r in results if isinstance(r, BaseException)]
        if failures:
            for r in results:
                if isinstance(r, ShardInfo) and r.process.is_alive():
                    r.process.terminate()
            raise failures[0]
        for shard in results:
            assert isinstance(shard, ShardInfo)
            self.shards.append(shard)
            self._by_name[shard.name] = shard
        self.shards.sort(key=lambda s: s.index)

        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=protocol.MAX_FRAME_BYTES,
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        self._started_at = time.monotonic()
        self.metrics.shards.set(float(len(self.shards)))
        self.supervisor.start()
        log.info(
            "sharded service listening on %s:%d over %d shard(s): %s",
            self.address[0],
            self.address[1],
            len(self.shards),
            ", ".join(f"{s.name}=pid{s.pid}:{s.port}" for s in self.shards),
        )
        return self.address

    async def run(self, install_signal_handlers: bool = False) -> None:
        """Serve until drained, then wind the whole fleet down."""
        if self._server is None:
            await self.start()
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.begin_drain)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass
        assert self._drain_requested is not None
        await self._drain_requested.wait()

        # In-flight proxied requests finish within the grace period.
        deadline = time.monotonic() + self.config.drain_timeout_s
        while self._busy_handlers and time.monotonic() < deadline:
            await asyncio.sleep(0.01)

        # Stop the supervisor first: no probe, respawn or resize may
        # race the fleet teardown below.
        await self.supervisor.stop()
        await self._collect_final_telemetry()
        await self._shutdown_shards()
        for writer in list(self._writers):
            writer.close()
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        self._join_shards()
        log.info("sharded service drained and stopped")

    def begin_drain(self) -> None:
        """Stop admission; in-flight requests and the fleet still drain."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
        if self._drain_requested is not None:
            self._drain_requested.set()
        log.info("sharded service draining (no new requests admitted)")

    def begin_drain_threadsafe(self) -> None:
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self.begin_drain)
        except RuntimeError:
            pass

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------
    # Shard links
    # ------------------------------------------------------------------
    async def _shard_roundtrip(self, shard: ShardInfo, payload: bytes) -> bytes:
        """One framed request/response against ``shard``.

        Pooled connections are reused.  *Any* write/read failure — a
        stale idle socket, the shard mid-restart, even a fresh connect
        refused — invalidates the whole pool for that shard and is
        retried once on a brand-new connection, re-reading
        ``shard.port`` (a respawned shard listens on a new ephemeral
        port).  ``inflight`` brackets the round-trip so a drain-aware
        rebalance knows when a departing shard has gone quiet.
        """
        shard.inflight += 1
        last_error: Optional[BaseException] = None
        try:
            for attempt in (0, 1):
                if attempt == 0 and shard.idle:
                    reader, writer = shard.idle.pop()
                else:
                    try:
                        reader, writer = await asyncio.open_connection(
                            "127.0.0.1", shard.port, limit=protocol.MAX_FRAME_BYTES
                        )
                    except (OSError, ConnectionError) as exc:
                        last_error = exc
                        drop_idle_links(shard)
                        continue
                try:
                    writer.write(payload)
                    await writer.drain()
                    line = await reader.readline()
                    if not line:
                        raise ConnectionError(f"{shard.name} closed the connection")
                except (OSError, ConnectionError) as exc:
                    last_error = exc
                    writer.close()
                    # The pool points at the same (possibly dead)
                    # process; a retry must start from clean sockets.
                    drop_idle_links(shard)
                    continue
                shard.idle.append((reader, writer))
                return line
            assert last_error is not None
            raise last_error
        finally:
            shard.inflight -= 1

    async def _close_links(self) -> None:
        for shard in self.shards:
            while shard.idle:
                _reader, writer = shard.idle.pop()
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    pass

    def _control_frame(self, request_type: str, **params: Any) -> bytes:
        frame: Dict[str, Any] = {
            "v": protocol.PROTOCOL_VERSION,
            "id": f"router-{request_type}",
            "type": request_type,
        }
        if params:
            frame["params"] = params
        return protocol.encode_frame(frame)

    async def _shard_control(
        self, shard: ShardInfo, request_type: str, **params: Any
    ) -> Optional[Dict[str, Any]]:
        """A control request's result payload, or None when unreachable."""
        try:
            line = await self._shard_roundtrip(
                shard, self._control_frame(request_type, **params)
            )
            frame = protocol.decode_frame(line)
        except (OSError, ConnectionError, ProtocolError) as exc:
            log.warning("%s %s failed: %s", shard.name, request_type, exc)
            return None
        if not frame.get("ok"):
            log.warning("%s %s answered %s", shard.name, request_type, frame.get("error"))
            return None
        return frame.get("result", {})

    async def _fan_out(
        self, request_type: str, **params: Any
    ) -> List[Optional[Dict[str, Any]]]:
        """One control request against every shard, concurrently."""
        return list(
            await asyncio.gather(
                *(self._shard_control(s, request_type, **params) for s in self.shards)
            )
        )

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(
                        protocol.encode_frame(
                            protocol.error_response(
                                "",
                                ErrorCode.MALFORMED_FRAME,
                                f"frame exceeds {protocol.MAX_FRAME_BYTES} bytes",
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                self._busy_handlers += 1
                try:
                    response = await self._handle_frame(line, writer)
                finally:
                    self._busy_handlers -= 1
                writer.write(response)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Drain closes connections out from under blocked readlines;
            # a cancelled handler is normal shutdown, not an error.
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _handle_frame(
        self, line: bytes, writer: Optional[asyncio.StreamWriter] = None
    ) -> bytes:
        try:
            request = protocol.parse_request(line)
        except ProtocolError as exc:
            request_id = str(exc.details.get("request_id", ""))
            details = {k: v for k, v in exc.details.items() if k != "request_id"}
            return protocol.encode_frame(
                protocol.error_response(request_id, exc.code, exc.message, **details)
            )
        if request.type == "simulate":
            return await self._proxy_simulate(request, line)
        if request.type == "sweep":
            return await self._proxy_sweep(request, writer)
        if request.type == "ping":
            payload: Dict[str, Any] = self._ping_payload()
        elif request.type == "stats":
            payload = await self._stats_payload()
        elif request.type == "metrics":
            payload = await self._metrics_payload()
        elif request.type == "telemetry":
            payload = await self._telemetry_payload(request.params)
        elif request.type == "admin":
            return await self._handle_admin(request)
        else:  # shutdown
            self.begin_drain()
            payload = {"draining": True}
        return protocol.encode_frame(protocol.ok_response(request.id, payload))

    async def _handle_admin(self, request: Request) -> bytes:
        """Fleet control (protocol v5): currently ``resize``."""
        if self._draining:
            return protocol.encode_frame(
                protocol.error_response(
                    request.id, ErrorCode.SHUTTING_DOWN, "service is draining"
                )
            )
        command = request.params.get("command")
        if command != "resize":
            return protocol.encode_frame(
                protocol.error_response(
                    request.id,
                    ErrorCode.INVALID_REQUEST,
                    f"unknown admin command {command!r}",
                    known=["resize"],
                )
            )
        workers = request.params.get("workers")
        if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
            return protocol.encode_frame(
                protocol.error_response(
                    request.id,
                    ErrorCode.INVALID_REQUEST,
                    "resize requires a positive integer 'workers'",
                )
            )
        try:
            result = await self.supervisor.resize(workers)
        except Exception as exc:  # pragma: no cover - spawn failure
            log.exception("resize to %d workers failed", workers)
            return protocol.encode_frame(
                protocol.error_response(
                    request.id, ErrorCode.INTERNAL, f"resize failed: {exc}"
                )
            )
        return protocol.encode_frame(protocol.ok_response(request.id, result))

    async def _proxy_simulate(self, request: Request, line: bytes) -> bytes:
        """Route one simulate frame to its shard and relay the answer."""
        if self._draining:
            return protocol.encode_frame(
                protocol.error_response(
                    request.id,
                    ErrorCode.SHUTTING_DOWN,
                    "service is draining; not admitting",
                )
            )
        try:
            params = SimulateParams.from_dict(request.params)
            self._validate_names(params)
        except ProtocolError as exc:
            return protocol.encode_frame(
                protocol.error_response(request.id, exc.code, exc.message, **exc.details)
            )
        config_fp = self._config_fp
        if params.config is not None:
            # v4 extended simulate: route by the job's *built* config, so
            # every run of one (trace, config) cell lands on one shard.
            from ..spec.wire import config_from_wire

            try:
                config_fp = config_from_wire(params.config).fingerprint()
            except Exception as exc:
                return protocol.encode_frame(
                    protocol.error_response(
                        request.id, ErrorCode.INVALID_REQUEST, f"bad config payload: {exc}"
                    )
                )
        key = routing_key(params.workload, params.records, params.seed, config_fp)
        try:
            shard = self._by_name[self.ring.route(key)]
        except (KeyError, LookupError):
            return protocol.encode_frame(
                protocol.error_response(
                    request.id, ErrorCode.INTERNAL, "no live shards behind the ring"
                )
            )
        if shard.state in (ShardState.RESPAWNING, ShardState.DEAD):
            # Fail fast and retryable: the shard is being replaced, and
            # its key range will be served again within a heartbeat or
            # two — the SDK's queue_full retry absorbs the window.
            return protocol.encode_frame(
                protocol.error_response(
                    request.id,
                    ErrorCode.QUEUE_FULL,
                    f"{shard.name} is being replaced; retry shortly",
                    retry_after_s=self.supervisor.retry_after_s(),
                )
            )
        self.metrics.count_route(shard.name)

        ctx = TraceContext.from_wire(request.trace)
        span = None
        payload = line
        if ctx is not None:
            # Re-parent the shard's spans under a routing span, so the
            # client's trace shows front-end → shard → pool worker.
            span = self.recorder.span(
                "router:route",
                parent=ctx,
                shard=shard.index,
                shard_pid=shard.pid,
                request_id=request.id,
            )
            span.__enter__()
            forwarded = request.to_dict()
            forwarded["trace"] = span.context.to_wire()
            payload = protocol.encode_frame(forwarded)
        started = time.monotonic()
        try:
            answer = await self._shard_roundtrip(shard, payload)
        except (OSError, ConnectionError) as exc:
            self.metrics.errors.inc()
            if span is not None:
                span.set(error=type(exc).__name__)
            self.supervisor.note_failure(shard, str(exc))
            if self.supervisor.enabled:
                # Transport failure on a supervised fleet is transient
                # by construction (the supervisor replaces the shard);
                # surface it as retryable backpressure, not a hard 500.
                return protocol.encode_frame(
                    protocol.error_response(
                        request.id,
                        ErrorCode.QUEUE_FULL,
                        f"{shard.name} (pid {shard.pid}) unreachable: {exc}; "
                        "being replaced",
                        retry_after_s=self.supervisor.retry_after_s(),
                    )
                )
            return protocol.encode_frame(
                protocol.error_response(
                    request.id,
                    ErrorCode.INTERNAL,
                    f"{shard.name} (pid {shard.pid}) unreachable: {exc}",
                )
            )
        finally:
            if span is not None:
                span.__exit__(None)
        self.metrics.forward_ms.observe((time.monotonic() - started) * 1000.0)
        try:
            frame = protocol.decode_frame(answer)
        except ProtocolError:
            self.metrics.errors.inc()
            return protocol.encode_frame(
                protocol.error_response(
                    request.id, ErrorCode.INTERNAL, f"{shard.name} answered garbage"
                )
            )
        frame["shard"] = {"index": shard.index, "pid": shard.pid}
        return protocol.encode_frame(frame)

    #: Per-shard in-flight bound for sweep fan-out; keeps a big sweep
    #: from monopolising a shard's admission queue (plain simulates keep
    #: getting through) while still saturating its micro-batcher.
    SWEEP_SHARD_INFLIGHT = 16
    #: Bounded retries when a shard answers ``queue_full`` for a sweep
    #: job (each waits the shard's ``retry_after_s`` hint first).
    SWEEP_RETRIES = 50

    async def _proxy_sweep(
        self, request: Request, writer: Optional[asyncio.StreamWriter]
    ) -> bytes:
        """Expand a sweep spec and fan its jobs out across the shards.

        The router — not the shards — expands the spec: each shard only
        ever sees plain (extended) simulate frames, routed by
        ``routing_key(workload, records, seed, built-config
        fingerprint)`` so a sweep enjoys the same cache/trace locality
        as individual requests.  Per-job result frames are streamed back
        to the client as shards answer, then a terminal done frame.
        """
        from ..spec import SpecError, SweepSpec, expand
        from ..spec.wire import simulate_params_for

        if writer is None:  # pragma: no cover - defensive
            return protocol.encode_frame(
                protocol.error_response(
                    request.id, ErrorCode.INVALID_REQUEST, "sweep requires a streaming connection"
                )
            )
        if self._draining:
            return protocol.encode_frame(
                protocol.error_response(
                    request.id, ErrorCode.SHUTTING_DOWN, "service is draining; not admitting"
                )
            )
        use_cache = request.params.get("use_cache", True)
        try:
            spec_payload = request.params.get("spec")
            if not isinstance(spec_payload, dict):
                raise ProtocolError(ErrorCode.INVALID_REQUEST, "sweep requires a 'spec' object")
            spec = SweepSpec.from_dict(spec_payload)
        except SpecError as exc:
            return protocol.encode_frame(
                protocol.error_response(
                    request.id, ErrorCode.INVALID_REQUEST, str(exc),
                    path=getattr(exc, "path", ""),
                )
            )
        except ProtocolError as exc:
            return protocol.encode_frame(
                protocol.error_response(request.id, exc.code, exc.message, **exc.details)
            )

        started = time.monotonic()
        plan = expand(spec)
        fp_by_label = {cfg.label: cfg.build().fingerprint() for cfg in spec.configs}
        write_lock = asyncio.Lock()

        def shard_limit() -> asyncio.Semaphore:
            return asyncio.Semaphore(
                max(1, min(self.SWEEP_SHARD_INFLIGHT, self.config.queue_size // 2))
            )

        limits = {shard.name: shard_limit() for shard in self.shards}
        errors = 0

        async def run_job(meta: Any) -> None:
            nonlocal errors
            params = dict(simulate_params_for(meta))
            params["use_cache"] = bool(use_cache)
            key = routing_key(
                meta.workload, meta.records, meta.seed, fp_by_label[meta.config_label]
            )
            job_frame: Dict[str, Any] = {
                "v": protocol.PROTOCOL_VERSION,
                "id": f"{request.id}#{meta.index}",
                "type": "simulate",
                "params": params,
            }
            if request.trace:
                job_frame["trace"] = request.trace
            payload = protocol.encode_frame(job_frame)
            frame: Optional[Dict[str, Any]] = None
            shard: Optional[ShardInfo] = None
            routed_to: Optional[str] = None
            for _attempt in range(self.SWEEP_RETRIES):
                # Re-route every attempt: a mid-sweep respawn keeps the
                # owner but changes its port, and a mid-sweep resize may
                # hand the key to a different shard entirely.
                try:
                    shard = self._by_name.get(self.ring.route(key))
                except LookupError:
                    shard = None
                if shard is None or shard.state in (
                    ShardState.RESPAWNING, ShardState.DEAD
                ):
                    await asyncio.sleep(self.supervisor.retry_after_s())
                    continue
                if routed_to != shard.name:
                    self.metrics.count_route(shard.name)
                    routed_to = shard.name
                retry_sleep: Optional[float] = None
                async with limits.setdefault(shard.name, shard_limit()):
                    try:
                        answer = await self._shard_roundtrip(shard, payload)
                        frame = protocol.decode_frame(answer)
                    except ProtocolError as exc:
                        self.metrics.errors.inc()
                        frame = protocol.error_response(
                            request.id,
                            ErrorCode.INTERNAL,
                            f"{shard.name} (pid {shard.pid}): {exc}",
                        )
                        break
                    except (OSError, ConnectionError) as exc:
                        self.metrics.errors.inc()
                        self.supervisor.note_failure(shard, str(exc))
                        if self.supervisor.enabled:
                            # Transient: the supervisor will replace the
                            # shard; hold the job and try again.
                            frame = None
                            retry_sleep = self.supervisor.retry_after_s()
                        else:
                            frame = protocol.error_response(
                                request.id,
                                ErrorCode.INTERNAL,
                                f"{shard.name} (pid {shard.pid}): {exc}",
                            )
                            break
                if retry_sleep is not None:
                    await asyncio.sleep(retry_sleep)
                    continue
                assert frame is not None
                error = frame.get("error") or {}
                if not frame.get("ok") and error.get("code") == ErrorCode.QUEUE_FULL.value:
                    frame = None
                    await asyncio.sleep(
                        max(0.01, float(error.get("retry_after_s", 0.05)))
                    )
                    continue
                break
            if frame is None:
                frame = protocol.error_response(
                    request.id,
                    ErrorCode.INTERNAL,
                    f"sweep job {meta.index} still unroutable after "
                    f"{self.SWEEP_RETRIES} attempts",
                )
            frame["id"] = request.id
            if shard is not None:
                frame["shard"] = {"index": shard.index, "pid": shard.pid}
            frame["job"] = {
                "index": meta.index,
                "kind": meta.kind,
                "workload": meta.workload,
                "seed": meta.seed,
                "records": meta.records,
                "n_threads": meta.n_threads,
                "label": meta.label,
                "config": meta.config_label,
            }
            if not frame.get("ok"):
                errors += 1
            async with write_lock:
                writer.write(protocol.encode_frame(frame))
                await writer.drain()

        await asyncio.gather(*(run_job(meta) for meta in plan.meta))
        terminal = protocol.ok_response(
            request.id,
            {
                "name": spec.name,
                "fingerprint": spec.fingerprint(),
                "jobs": len(plan.meta),
                "streamed": len(plan.meta),
                "errors": errors,
                "aborted": False,
                "elapsed_ms": (time.monotonic() - started) * 1000.0,
            },
        )
        terminal["done"] = True
        return protocol.encode_frame(terminal)

    @staticmethod
    def _validate_names(params: SimulateParams) -> None:
        if params.workload not in WORKLOADS:
            raise ProtocolError(
                ErrorCode.INVALID_REQUEST,
                f"unknown workload '{params.workload}'",
                known=sorted(WORKLOADS),
            )
        if params.prefetcher not in PREFETCHERS:
            raise ProtocolError(
                ErrorCode.INVALID_REQUEST,
                f"unknown prefetcher '{params.prefetcher}'",
                known=sorted(PREFETCHERS),
            )

    # ------------------------------------------------------------------
    # Control payloads (fleet views)
    # ------------------------------------------------------------------
    def _ping_payload(self) -> Dict[str, Any]:
        return {
            "pong": True,
            "version": __version__,
            "protocol": protocol.PROTOCOL_VERSION,
            "supported_versions": list(protocol.SUPPORTED_VERSIONS),
            "pid": os.getpid(),
            "sharded": True,
            "workers": len(self.shards),
            "supervised": self.supervisor.enabled,
            "heartbeat_s": self.supervisor.heartbeat_s,
            "shards": [
                {
                    "index": s.index,
                    "pid": s.pid,
                    "port": s.port,
                    "state": s.state.value,
                    "restarts": s.restarts,
                    "uptime_s": s.uptime_s,
                }
                for s in self.shards
            ],
        }

    async def _stats_payload(self) -> Dict[str, Any]:
        """The fleet aggregate plus a per-shard breakdown."""
        shard_stats = await self._fan_out("stats")
        agg = MetricsRegistry()
        sim = MetricsRegistry()
        cache = {"entries": 0, "hits": 0, "misses": 0, "max_entries": 0}
        disk = {"entries": 0, "hits": 0, "spilled": 0, "quarantined": 0}
        has_disk = False
        queue = {"depth": 0, "limit": 0}
        pool = {"workers": 0, "generation": 0}
        shards: List[Dict[str, Any]] = []
        for shard, stats in zip(self.shards, shard_stats):
            if stats is None:
                shards.append(
                    {
                        "index": shard.index,
                        "pid": shard.pid,
                        "state": shard.state.value,
                        "restarts": shard.restarts,
                        "unreachable": True,
                    }
                )
                continue
            agg.merge(stats.get("metrics", {}))
            sim.merge(stats.get("simulation", {}))
            shard_cache = stats.get("cache", {})
            for field_name in ("entries", "hits", "misses", "max_entries"):
                cache[field_name] += shard_cache.get(field_name, 0)
            shard_disk = shard_cache.get("disk")
            if shard_disk:
                has_disk = True
                for field_name in ("hits", "spilled", "quarantined"):
                    disk[field_name] += shard_disk.get(field_name, 0)
                # Shards share one spill directory; entries is the
                # directory's population, not a per-shard sum.
                disk["entries"] = max(disk["entries"], shard_disk.get("entries", 0))
            queue["depth"] += stats.get("queue", {}).get("depth", 0)
            queue["limit"] += stats.get("queue", {}).get("limit", 0)
            pool["workers"] += stats.get("pool", {}).get("workers", 0)
            pool["generation"] = max(
                pool["generation"], stats.get("pool", {}).get("generation", 0)
            )
            shard_metrics = stats.get("metrics", {})
            shards.append(
                {
                    "index": shard.index,
                    "pid": shard.pid,
                    "state": shard.state.value,
                    "restarts": shard.restarts,
                    "uptime_s": stats.get("uptime_s", 0.0),
                    "requests": shard_metrics.get("requests_received", {}).get(
                        "value", 0
                    ),
                    "routed": self.registry.to_dict()
                    .get(f"routed.{shard.name}", {})
                    .get("value", 0),
                    "cache": shard_cache,
                    "queue": stats.get("queue", {}),
                    "latency_ms": stats.get("latency_ms", {}),
                }
            )
        for _index, payload in self._retired:
            # Shards removed by a live resize keep counting in the
            # fleet aggregate; their processes are gone but their work
            # happened.
            agg.merge(payload.get("metrics", {}))
            sim.merge(payload.get("simulation", {}))
        if has_disk:
            cache["disk"] = disk
        latency = {"p50": 0.0, "p90": 0.0, "p99": 0.0, "count": 0}
        if "request_latency_ms" in agg:
            merged = agg["request_latency_ms"]
            latency = {
                "p50": merged.quantile(0.5),
                "p90": merged.quantile(0.9),
                "p99": merged.quantile(0.99),
                "count": merged.total,
            }
        return {
            "pid": os.getpid(),
            "sharded": True,
            "workers": len(self.shards),
            "uptime_s": time.monotonic() - self._started_at,
            "draining": self._draining,
            "queue": queue,
            "cache": cache,
            "pool": pool,
            "latency_ms": latency,
            "metrics": agg.to_dict(),
            "simulation": sim.to_dict(),
            "router": self.registry.to_dict(),
            "shards": shards,
        }

    async def _live_merged_metrics(self) -> Dict[str, Any]:
        """Aggregate + per-shard-prefixed snapshot of the whole fleet."""
        shard_stats = await self._fan_out("stats")
        agg = MetricsRegistry()
        for shard, stats in zip(self.shards, shard_stats):
            if stats is None:
                continue
            agg.merge(stats.get("metrics", {}))
            agg.merge(stats.get("simulation", {}))
            agg.merge(stats.get("metrics", {}), prefix=f"shard{shard.index}.")
        for index, payload in self._retired:
            agg.merge(payload.get("metrics", {}))
            agg.merge(payload.get("simulation", {}))
            agg.merge(payload.get("metrics", {}), prefix=f"shard{index}.")
        snapshot = agg.to_dict()
        snapshot.update(self.registry.to_dict())
        return snapshot

    async def _metrics_payload(self) -> Dict[str, Any]:
        return {
            "content_type": "text/plain; version=0.0.4",
            "text": render_prometheus(await self._live_merged_metrics()),
        }

    async def _telemetry_payload(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Every process's spans plus the aggregated registries."""
        drain = bool(params.get("drain")) if isinstance(params, dict) else False
        shard_payloads = await self._fan_out("telemetry", drain=drain)
        spans = self.recorder.drain() if drain else self.recorder.snapshot()
        dropped = 0
        agg = MetricsRegistry()
        sim = MetricsRegistry()
        for shard, payload in zip(self.shards, shard_payloads):
            if payload is None:
                continue
            spans.extend(payload.get("spans", ()))
            dropped += int(payload.get("dropped_spans", 0))
            agg.merge(payload.get("metrics", {}))
            agg.merge(payload.get("metrics", {}), prefix=f"shard{shard.index}.")
            sim.merge(payload.get("simulation", {}))
        for index, payload in self._retired:
            agg.merge(payload.get("metrics", {}))
            agg.merge(payload.get("metrics", {}), prefix=f"shard{index}.")
            sim.merge(payload.get("simulation", {}))
        cap = SimulationService.TELEMETRY_SPAN_CAP
        if len(spans) > cap:
            dropped += len(spans) - cap
            spans = spans[-cap:]
        snapshot = agg.to_dict()
        snapshot.update(self.registry.to_dict())
        return {
            "pid": os.getpid(),
            "sharded": True,
            "shard_index": None,
            "spans": spans,
            "dropped_spans": dropped,
            "metrics": snapshot,
            "simulation": sim.to_dict(),
        }

    # ------------------------------------------------------------------
    # Drain plumbing
    # ------------------------------------------------------------------
    async def _collect_final_telemetry(self) -> None:
        """Pull every shard's spans/metrics before shutting the fleet down."""
        shard_payloads = await self._fan_out("telemetry", drain=True)
        agg = MetricsRegistry()
        sim = MetricsRegistry()
        for shard, payload in zip(self.shards, shard_payloads):
            if payload is None:
                continue
            self.recorder.extend(payload.get("spans", ()))
            agg.merge(payload.get("metrics", {}))
            agg.merge(payload.get("metrics", {}), prefix=f"shard{shard.index}.")
            sim.merge(payload.get("simulation", {}))
        for index, payload in self._retired:
            # Spans were absorbed at retirement; only the registries
            # still need to fold into the final fleet snapshot.
            agg.merge(payload.get("metrics", {}))
            agg.merge(payload.get("metrics", {}), prefix=f"shard{index}.")
            sim.merge(payload.get("simulation", {}))
        snapshot = agg.to_dict()
        snapshot.update(sim.to_dict())
        snapshot.update(self.registry.to_dict())
        self._final_metrics = snapshot

    async def _shutdown_shards(self) -> None:
        await self._fan_out("shutdown")
        await self._close_links()

    def _join_shards(self) -> None:
        deadline = time.monotonic() + self.config.drain_timeout_s
        for shard in self.shards:
            shard.process.join(max(0.1, deadline - time.monotonic()))
            if shard.process.is_alive():  # pragma: no cover - drain wedged
                log.warning("%s did not drain; terminating", shard.name)
                shard.process.terminate()
                shard.process.join(5.0)

    def merged_metrics(self) -> Dict[str, Any]:
        """The fleet-wide registry snapshot (frozen at drain).

        Before the drain has run (or if every shard was unreachable)
        this is the router's own instruments only.
        """
        if self._final_metrics is not None:
            return dict(self._final_metrics)
        return self.registry.to_dict()
