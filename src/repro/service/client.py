"""Client SDK for the simulation service.

Two clients over the same newline-delimited JSON protocol:

* :class:`ServiceClient` — synchronous, one persistent socket with
  automatic reconnect, for scripts and the ``repro-ebcp call`` CLI;
* :class:`AsyncServiceClient` — asyncio, one connection per request so
  concurrent ``simulate`` calls land in the same server micro-batch.

Both derive their per-request behaviour from the same
:class:`~repro.resilience.policy.ExecutionPolicy` the batch layers use:
``timeout_s`` bounds each attempt, ``retries`` bounds how many transport
failures (connect refused, socket timeout, reset) are absorbed, and
attempts are spaced by capped exponential backoff with full jitter —
``backoff_s * 2**(attempt-1)``, capped at ``max_backoff_s``, scaled by a
uniform factor in ``[0.5, 1.0]`` so a fleet of clients reconnecting to a
restarted (or sharded) service spreads out instead of stampeding in
lock-step.  ``queue_full`` backpressure responses are also retried,
honouring the server's ``retry_after_s`` hint — so a saturated service
slows its clients down instead of failing them.

Responses to ``simulate`` carry a lossless
:meth:`~repro.engine.stats.SimulationResult.snapshot`; the SDK rehydrates
it into a full :class:`~repro.engine.stats.SimulationResult`, so served
stats are bit-identical to a local run.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import socket
import time
import uuid
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..engine.stats import SimulationResult
from ..obs.tracing import SpanRecorder, TraceContext
from ..resilience.policy import ExecutionPolicy
from . import protocol
from .protocol import (
    ErrorCode,
    ProtocolError,
    Request,
    ServiceBusyError,
    ServiceError,
    SimulateParams,
)

__all__ = [
    "ServiceClient",
    "AsyncServiceClient",
    "ServedResult",
    "SweepFrame",
    "ServiceError",
    "ServiceBusyError",
]

#: Attempt ceiling when the caller passes no policy: one retry, matching
#: ``ExecutionPolicy()``'s default.
_DEFAULT_POLICY = ExecutionPolicy()


@dataclass(frozen=True)
class ServedResult:
    """One simulate response: the result plus its service disposition."""

    result: SimulationResult
    #: True when the service answered from its fingerprint result cache.
    cached: bool
    #: Server-side end-to-end latency of this request, in milliseconds.
    elapsed_ms: float
    #: ``{"index", "pid"}`` of the worker process that served the request
    #: when it came through a sharded front-end; ``None`` single-process.
    shard: Optional[Dict[str, Any]] = None


def _decode_served(frame: Dict[str, Any]) -> ServedResult:
    protocol.raise_for_error(frame)
    shard = frame.get("shard")
    return ServedResult(
        result=SimulationResult.from_snapshot(frame["result"]),
        cached=bool(frame.get("cached", False)),
        elapsed_ms=float(frame.get("elapsed_ms", 0.0)),
        shard=shard if isinstance(shard, dict) else None,
    )


@dataclass(frozen=True)
class SweepFrame:
    """One frame of a streamed sweep (v4).

    Job frames carry ``index``/``job``/``result``; the terminal frame
    has ``done=True`` with the server's run ``summary`` instead.
    """

    done: bool
    index: Optional[int]
    #: The server's per-job identity block (index, kind, workload, seed,
    #: records, n_threads, label, config); ``None`` on the done frame.
    job: Optional[Dict[str, Any]]
    result: Optional[SimulationResult]
    cached: bool
    elapsed_ms: float
    #: Worker-process metadata when served by a sharded front-end.
    shard: Optional[Dict[str, Any]] = None
    #: Terminal-frame summary (jobs, errors, fingerprint, elapsed_ms).
    summary: Optional[Dict[str, Any]] = None


def _decode_sweep_frame(frame: Dict[str, Any]) -> SweepFrame:
    """One wire frame of a sweep stream as a :class:`SweepFrame`.

    Raises the typed service error for failed jobs and failed sweeps
    (the ``job`` block, when present, is attached to the exception's
    details so callers can tell *which* job died).
    """
    job = frame.get("job")
    if frame.get("done"):
        protocol.raise_for_error(frame)
        summary = frame.get("result") if isinstance(frame.get("result"), dict) else {}
        return SweepFrame(
            done=True,
            index=None,
            job=None,
            result=None,
            cached=False,
            elapsed_ms=float(summary.get("elapsed_ms", 0.0)),
            summary=summary,
        )
    if not frame.get("ok") and isinstance(job, dict):
        error = frame.setdefault("error", {})
        if isinstance(error, dict):
            error.setdefault("job", job)
    protocol.raise_for_error(frame)
    if not isinstance(job, dict) or "index" not in job:
        raise ProtocolError(
            ErrorCode.MALFORMED_FRAME, "sweep stream frame carries no job identity"
        )
    shard = frame.get("shard")
    return SweepFrame(
        done=False,
        index=int(job["index"]),
        job=job,
        result=SimulationResult.from_snapshot(frame["result"]),
        cached=bool(frame.get("cached", False)),
        elapsed_ms=float(frame.get("elapsed_ms", 0.0)),
        shard=shard if isinstance(shard, dict) else None,
    )


def _sweep_params(spec: Any, use_cache: bool) -> Dict[str, Any]:
    from ..spec.loader import dump_spec

    return {"spec": dump_spec(spec), "use_cache": bool(use_cache)}


class _ClientBase:
    """Retry/backoff plumbing shared by the sync and async clients."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7421,
        timeout_s: Optional[float] = 30.0,
        retries: int = 1,
        backoff_s: float = 0.25,
        max_backoff_s: float = 10.0,
        jitter: bool = True,
        recorder: Optional[SpanRecorder] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retries = max(0, retries)
        self.backoff_s = backoff_s
        self.max_backoff_s = max_backoff_s
        self.jitter = jitter
        self._rng = random.Random()
        #: When set, ``simulate`` wraps each call in a ``client:simulate``
        #: span and sends its context on the frame, so server- and
        #: worker-side spans join the client's trace.
        self.recorder = recorder
        self._ids = itertools.count(1)
        self._id_prefix = uuid.uuid4().hex[:8]

    @classmethod
    def from_policy(
        cls, host: str, port: int, policy: ExecutionPolicy
    ) -> "_ClientBase":
        """A client whose timeout/retry/backoff mirror an execution policy."""
        return cls(
            host=host,
            port=port,
            timeout_s=policy.timeout_s if policy.timeout_s is not None else 30.0,
            retries=policy.retries,
            backoff_s=policy.backoff_s,
        )

    # ------------------------------------------------------------------
    def _next_id(self) -> str:
        return f"{self._id_prefix}-{next(self._ids)}"

    def _backoff_for(self, attempt: int) -> float:
        """Delay before retry ``attempt``: capped exponential, jittered.

        The jitter factor is uniform in ``[0.5, 1.0]`` — it only ever
        *shortens* the deterministic delay, so existing timeout budgets
        still hold, while reconnecting clients desynchronise instead of
        hammering a restarted service in phase.
        """
        if attempt <= 0 or self.backoff_s <= 0:
            return 0.0
        delay = min(self.backoff_s * (2.0 ** (attempt - 1)), self.max_backoff_s)
        if self.jitter:
            delay *= 0.5 + 0.5 * self._rng.random()
        return delay

    def _frame_for(
        self,
        request_type: str,
        params: Optional[Dict[str, Any]],
        trace: Optional[TraceContext] = None,
    ) -> bytes:
        request = Request(
            type=request_type,
            id=self._next_id(),
            params=params or {},
            trace=trace.to_wire() if trace is not None else None,
        )
        return protocol.encode_frame(request.to_dict())


class ServiceClient(_ClientBase):
    """Synchronous client over one persistent, auto-reconnecting socket."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._sock: Optional[socket.socket] = None
        self._rfile = None

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def _connect(self) -> None:
        if self._sock is not None:
            return
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout_s
        )
        self._sock = sock
        self._rfile = sock.makefile("rb")

    def close(self) -> None:
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------
    def _roundtrip(self, frame: bytes) -> Dict[str, Any]:
        """One request/response over the live socket (no retry here)."""
        self._connect()
        assert self._sock is not None and self._rfile is not None
        self._sock.settimeout(self.timeout_s)
        self._sock.sendall(frame)
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        return protocol.decode_frame(line)

    def _request(
        self,
        request_type: str,
        params: Optional[Dict[str, Any]] = None,
        trace: Optional[TraceContext] = None,
    ) -> Dict[str, Any]:
        """Send one request with the client's retry/backoff budget.

        Transport failures (refused connection, timeout, reset) and
        ``queue_full`` responses are retried up to ``retries`` times;
        protocol-level errors raise immediately as
        :class:`~repro.service.protocol.ServiceError`.
        """
        attempts = 0
        while True:
            frame = self._frame_for(request_type, params, trace=trace)
            try:
                # raise_for_error turns a queue_full response into
                # ServiceBusyError *inside* the retry loop; other error
                # codes raise ServiceError straight through to the caller.
                return protocol.raise_for_error(self._roundtrip(frame))
            except ServiceBusyError as exc:
                attempts += 1
                if attempts > self.retries:
                    raise
                time.sleep(max(exc.retry_after_s, self._backoff_for(attempts)))
            except (OSError, ConnectionError, ProtocolError):
                # OSError covers socket.timeout and refused connections;
                # a half-read stream is unusable, so always reconnect.
                self.close()
                attempts += 1
                if attempts > self.retries:
                    raise
                time.sleep(self._backoff_for(attempts))

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        """Liveness + version/protocol discovery."""
        frame = protocol.raise_for_error(self._request("ping"))
        return frame["result"]

    def simulate(
        self,
        workload: str,
        prefetcher: str = "none",
        records: int = 280_000,
        seed: int = 7,
        warmup_records: Optional[int] = None,
        use_cache: bool = True,
        trace: Optional[TraceContext] = None,
    ) -> ServedResult:
        """Run (or fetch) one simulation on the service.

        With a ``recorder`` attached the call is wrapped in a
        ``client:simulate`` span whose context rides on the frame;
        passing ``trace`` instead (or additionally, as the span's
        parent) joins an existing trace.
        """
        params = SimulateParams(
            workload=workload,
            prefetcher=prefetcher,
            records=records,
            seed=seed,
            warmup_records=warmup_records,
            use_cache=use_cache,
        )
        if self.recorder is not None:
            with self.recorder.span(
                "client:simulate",
                parent=trace,
                workload=workload,
                prefetcher=prefetcher,
            ) as span:
                served = _decode_served(
                    self._request("simulate", params.to_dict(), trace=span.context)
                )
                span.set(cached=served.cached)
                return served
        return _decode_served(self._request("simulate", params.to_dict(), trace=trace))

    def iter_sweep(self, spec: Any, use_cache: bool = True):
        """Submit a :class:`~repro.spec.SweepSpec` and stream its frames.

        Yields one :class:`SweepFrame` per job *as shards finish them*
        (arrival order, not index order — each frame carries its job
        index), then the terminal ``done`` frame.  The stream is one
        long-lived exchange on the persistent socket, so there is no
        mid-stream retry: a transport failure raises and closes the
        connection (re-submitting re-streams; completed jobs answer
        from the result cache).
        """
        frame_bytes = self._frame_for("sweep", _sweep_params(spec, use_cache))
        try:
            self._connect()
            assert self._sock is not None and self._rfile is not None
            self._sock.settimeout(self.timeout_s)
            self._sock.sendall(frame_bytes)
            while True:
                line = self._rfile.readline()
                if not line:
                    raise ConnectionError("service closed the connection mid-sweep")
                parsed = _decode_sweep_frame(protocol.decode_frame(line))
                yield parsed
                if parsed.done:
                    return
        except BaseException:
            # A half-consumed stream is not line-synchronised; the next
            # request must start on a fresh connection.
            self.close()
            raise

    def sweep(self, spec: Any, use_cache: bool = True) -> "list[SweepFrame]":
        """Submit a sweep and collect its job frames, ordered by index."""
        frames = [f for f in self.iter_sweep(spec, use_cache=use_cache) if not f.done]
        return sorted(frames, key=lambda f: f.index or 0)

    def stats(self) -> Dict[str, Any]:
        """The service's metrics-registry snapshot plus queue/cache state."""
        frame = protocol.raise_for_error(self._request("stats"))
        return frame["result"]

    def metrics(self) -> str:
        """The merged service registry as Prometheus text exposition."""
        frame = protocol.raise_for_error(self._request("metrics"))
        return frame["result"]["text"]

    def telemetry(self, drain: bool = False) -> Dict[str, Any]:
        """The service's spans and metric registries (v3+).

        Against a sharded front-end this is the whole fleet's telemetry;
        ``drain=True`` removes the spans server-side after reading.
        """
        frame = protocol.raise_for_error(self._request("telemetry", {"drain": drain}))
        return frame["result"]

    def admin(self, command: str, **arguments: Any) -> Dict[str, Any]:
        """Issue one fleet-control command (protocol v5, sharded only)."""
        frame = protocol.raise_for_error(
            self._request("admin", {"command": command, **arguments})
        )
        return frame["result"]

    def resize(self, workers: int) -> Dict[str, Any]:
        """Resize a sharded fleet to ``workers`` shards, live.

        Returns the supervisor's resize report (``workers``,
        ``previous_workers``, ``added``, ``removed``, per-shard rows).
        Only the added/removed shards' key ranges remap; a shrink drains
        its victims before they exit.
        """
        return self.admin("resize", workers=workers)

    def shutdown(self) -> Dict[str, Any]:
        """Ask the service to drain and exit (in-flight work completes)."""
        frame = protocol.raise_for_error(self._request("shutdown"))
        return frame["result"]


class AsyncServiceClient(_ClientBase):
    """Asyncio client; each request uses its own connection.

    Separate connections are what let concurrent ``simulate`` calls be
    admitted independently — and therefore coalesce into one server-side
    micro-batch.
    """

    async def _roundtrip(self, frame: bytes) -> Dict[str, Any]:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(
                self.host, self.port, limit=protocol.MAX_FRAME_BYTES
            ),
            self.timeout_s,
        )
        try:
            writer.write(frame)
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), self.timeout_s)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        if not line:
            raise ConnectionError("service closed the connection")
        return protocol.decode_frame(line)

    async def _request(
        self,
        request_type: str,
        params: Optional[Dict[str, Any]] = None,
        trace: Optional[TraceContext] = None,
    ) -> Dict[str, Any]:
        attempts = 0
        while True:
            frame = self._frame_for(request_type, params, trace=trace)
            try:
                return protocol.raise_for_error(await self._roundtrip(frame))
            except ServiceBusyError as exc:
                attempts += 1
                if attempts > self.retries:
                    raise
                await asyncio.sleep(max(exc.retry_after_s, self._backoff_for(attempts)))
            except (OSError, ConnectionError, ProtocolError, asyncio.TimeoutError):
                attempts += 1
                if attempts > self.retries:
                    raise
                await asyncio.sleep(self._backoff_for(attempts))

    # ------------------------------------------------------------------
    async def ping(self) -> Dict[str, Any]:
        frame = protocol.raise_for_error(await self._request("ping"))
        return frame["result"]

    async def simulate(
        self,
        workload: str,
        prefetcher: str = "none",
        records: int = 280_000,
        seed: int = 7,
        warmup_records: Optional[int] = None,
        use_cache: bool = True,
        trace: Optional[TraceContext] = None,
    ) -> ServedResult:
        params = SimulateParams(
            workload=workload,
            prefetcher=prefetcher,
            records=records,
            seed=seed,
            warmup_records=warmup_records,
            use_cache=use_cache,
        )
        if self.recorder is not None:
            with self.recorder.span(
                "client:simulate",
                parent=trace,
                workload=workload,
                prefetcher=prefetcher,
            ) as span:
                served = _decode_served(
                    await self._request(
                        "simulate", params.to_dict(), trace=span.context
                    )
                )
                span.set(cached=served.cached)
                return served
        return _decode_served(
            await self._request("simulate", params.to_dict(), trace=trace)
        )

    async def iter_sweep(self, spec: Any, use_cache: bool = True):
        """Async counterpart of :meth:`ServiceClient.iter_sweep`.

        Opens one dedicated connection for the stream; yields
        :class:`SweepFrame` objects and finishes after the ``done``
        frame.  No mid-stream retry.
        """
        frame_bytes = self._frame_for("sweep", _sweep_params(spec, use_cache))
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(
                self.host, self.port, limit=protocol.MAX_FRAME_BYTES
            ),
            self.timeout_s,
        )
        try:
            writer.write(frame_bytes)
            await writer.drain()
            while True:
                line = await asyncio.wait_for(reader.readline(), self.timeout_s)
                if not line:
                    raise ConnectionError("service closed the connection mid-sweep")
                parsed = _decode_sweep_frame(protocol.decode_frame(line))
                yield parsed
                if parsed.done:
                    return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def sweep(self, spec: Any, use_cache: bool = True) -> "list[SweepFrame]":
        """Submit a sweep and collect its job frames, ordered by index."""
        frames = [
            f async for f in self.iter_sweep(spec, use_cache=use_cache) if not f.done
        ]
        return sorted(frames, key=lambda f: f.index or 0)

    async def stats(self) -> Dict[str, Any]:
        frame = protocol.raise_for_error(await self._request("stats"))
        return frame["result"]

    async def metrics(self) -> str:
        """The merged service registry as Prometheus text exposition."""
        frame = protocol.raise_for_error(await self._request("metrics"))
        return frame["result"]["text"]

    async def telemetry(self, drain: bool = False) -> Dict[str, Any]:
        """The service's spans and metric registries (v3+)."""
        frame = protocol.raise_for_error(
            await self._request("telemetry", {"drain": drain})
        )
        return frame["result"]

    async def admin(self, command: str, **arguments: Any) -> Dict[str, Any]:
        """Issue one fleet-control command (protocol v5, sharded only)."""
        frame = protocol.raise_for_error(
            await self._request("admin", {"command": command, **arguments})
        )
        return frame["result"]

    async def resize(self, workers: int) -> Dict[str, Any]:
        """Resize a sharded fleet to ``workers`` shards, live."""
        return await self.admin("resize", workers=workers)

    async def shutdown(self) -> Dict[str, Any]:
        frame = protocol.raise_for_error(await self._request("shutdown"))
        return frame["result"]
