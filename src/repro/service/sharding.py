"""Consistent-hash routing for the sharded service tier.

The front-end (:mod:`repro.service.router`) routes every simulate
request to one of N shard processes, each owning its own persistent
pool, micro-batcher and result cache.  The routing goal is *locality*:
the same logical run must always land on the same shard, so that
shard's trace memo, filter planes and result cache stay hot — the
server-prefetching argument (keep correlation state close to the
requests that reuse it) applied to the service tier itself.

Two pieces deliver that:

* :func:`routing_key` — the deterministic string identity of a request.
  It is the *preimage* of the cache key: ``(workload, records, seed)``
  plus the processor-config fingerprint.  The prefetcher is deliberately
  excluded, so every prefetcher variant of one trace shares a shard and
  therefore one warmed trace/filter-plane memo.
* :class:`HashRing` — classic consistent hashing with virtual nodes.
  Each shard owns ``replicas`` pseudo-random points on a 64-bit ring;
  a key routes to the first point clockwise from its own hash.  Adding
  or removing a shard remaps only the keys adjacent to that shard's
  points (~1/N of the keyspace), so a resize keeps most caches warm —
  the property the Hypothesis suite in ``tests/test_sharding.py`` pins.

Hashes are :func:`hashlib.blake2b` digests, not Python ``hash()`` —
stable across processes and ``PYTHONHASHSEED``, which is what makes the
routing reproducible enough to assert on in CI.
"""

from __future__ import annotations

import bisect
import hashlib
import json
from typing import Any, Iterable, List, Tuple

__all__ = ["HashRing", "routing_key"]

#: Virtual nodes per shard.  64 keeps the per-shard keyspace share
#: within a few percent of 1/N for small N while the ring stays tiny
#: (N * 64 points, bisected in ~log2(256) steps for 4 shards).
DEFAULT_REPLICAS = 64


def _hash64(data: str) -> int:
    """Stable 64-bit position on the ring (process-independent)."""
    return int.from_bytes(
        hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest(), "big"
    )


def routing_key(
    workload: str, records: int, seed: int, config_fingerprint: Any
) -> str:
    """The shard-routing identity of one simulate request.

    Matches the result-cache key's preimage minus the prefetcher: the
    trace fingerprint is fully determined by ``(workload, records,
    seed)``, so routing on the generation parameters gives the same
    placement without generating the trace in the front-end.
    """
    return json.dumps(
        [workload, records, seed, config_fingerprint],
        separators=(",", ":"),
        sort_keys=True,
        default=list,  # fingerprints are (nested) tuples
    )


class HashRing:
    """Consistent-hash ring with virtual nodes over string shard names."""

    def __init__(
        self, shards: Iterable[str] = (), replicas: int = DEFAULT_REPLICAS
    ) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._points: List[Tuple[int, str]] = []  # sorted (position, shard)
        self._shards: set = set()
        for shard in shards:
            self.add(shard)

    # ------------------------------------------------------------------
    def add(self, shard: str) -> None:
        """Insert ``shard``'s virtual nodes (idempotent)."""
        if not shard:
            raise ValueError("shard name must be non-empty")
        if shard in self._shards:
            return
        self._shards.add(shard)
        for replica in range(self.replicas):
            point = (_hash64(f"{shard}#{replica}"), shard)
            bisect.insort(self._points, point)

    def remove(self, shard: str) -> None:
        """Remove ``shard``'s virtual nodes (idempotent)."""
        if shard not in self._shards:
            return
        self._shards.discard(shard)
        self._points = [p for p in self._points if p[1] != shard]

    # ------------------------------------------------------------------
    def route(self, key: str) -> str:
        """The shard owning ``key``: first ring point clockwise."""
        if not self._points:
            raise LookupError("hash ring has no shards")
        position = _hash64(key)
        index = bisect.bisect_right(self._points, (position, "￿"))
        if index == len(self._points):
            index = 0  # wrap around the ring
        return self._points[index][1]

    # ------------------------------------------------------------------
    def shards(self) -> Tuple[str, ...]:
        return tuple(sorted(self._shards))

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard: str) -> bool:
        return shard in self._shards
