"""Parallel (workload x configuration) sweep execution.

:class:`ParallelSweepRunner` mirrors the sequential
:class:`repro.analysis.sweep.SweepRunner` API but fans the grid's
simulator runs out over worker processes via :func:`repro.parallel.run_jobs`:

* **Baseline dedup** — every (workload, configuration) pair needs the
  no-prefetching baseline exactly once, however many labels share it.
  Baselines are keyed by ``(workload, config.fingerprint())`` — exact and
  stable across processes, unlike ``hash()`` — and simulated as their own
  jobs alongside the candidates.
* **Deterministic merge** — results come back in submission order and
  points are assembled workload-major, label-minor, so the returned grid
  is ordered exactly like the sequential runner's and the contained
  results are bit-for-bit identical.
* **Graceful degradation** — ``jobs=1`` (or an unusable pool) runs
  everything in-process through the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

from ..analysis.sweep import SweepPoint
from ..engine.config import ProcessorConfig
from ..engine.stats import SimulationResult
from ..prefetchers.base import Prefetcher
from ..workloads.registry import COMMERCIAL_WORKLOADS
from .jobs import JobSpec, run_jobs

if TYPE_CHECKING:  # pragma: no cover - avoids an import cycle at runtime
    from ..resilience.policy import ExecutionPolicy

__all__ = ["ParallelSweepRunner"]

#: Baseline memo key: (workload, config fingerprint).
BaselineKey = Tuple[str, tuple]


@dataclass
class ParallelSweepRunner:
    """Runs (workload x configuration) grids with process-level fan-out."""

    records: int = 280_000
    seed: int = 7
    workloads: tuple = COMMERCIAL_WORKLOADS
    jobs: Optional[int] = None
    #: Compressed execution over precomputed L1 filter planes; ``None``
    #: defers to ``$REPRO_COMPRESSED`` (on by default, bit-identical).
    compressed: Optional[bool] = None
    #: Execution policy (timeouts, retries, checkpointing, fault spec).
    #: ``None`` builds one from ``jobs``/``compressed``; an explicit
    #: policy wins, with ``jobs``/``compressed`` filling unset fields.
    policy: "Optional[ExecutionPolicy]" = None
    #: Shared baseline results; the sequential SweepRunner passes its own
    #: memo here so repeated sweeps never re-simulate a baseline.
    baseline_memo: Dict[BaselineKey, SimulationResult] = field(default_factory=dict)

    def effective_policy(self) -> "ExecutionPolicy":
        """The policy this runner executes under (legacy knobs folded in)."""
        from ..resilience.policy import ExecutionPolicy

        policy = self.policy if self.policy is not None else ExecutionPolicy()
        if policy.jobs is None and self.jobs is not None:
            policy = policy.replace(jobs=self.jobs)
        if policy.compressed is None and self.compressed is not None:
            policy = policy.replace(compressed=self.compressed)
        return policy

    def sweep(
        self,
        labels: "list[str]",
        prefetcher_factory: Callable[[str], Prefetcher],
        config_factory: "Callable[[str], ProcessorConfig] | None" = None,
        config: "ProcessorConfig | None" = None,
    ) -> "dict[str, list[SweepPoint]]":
        """Run every (workload, label) combination; see SweepRunner.sweep."""
        if (config is None) == (config_factory is None):
            raise ValueError("provide exactly one of config / config_factory")

        # Enumerate the grid: candidate jobs plus deduplicated baselines.
        baseline_specs: Dict[BaselineKey, JobSpec] = {}
        candidates: "list[tuple[str, str, BaselineKey]]" = []
        candidate_specs: "list[JobSpec]" = []
        for workload in self.workloads:
            for label in labels:
                cfg = config if config is not None else config_factory(label)  # type: ignore[misc]
                key: BaselineKey = (workload, cfg.fingerprint())
                if key not in self.baseline_memo and key not in baseline_specs:
                    baseline_specs[key] = JobSpec(
                        workload=workload,
                        records=self.records,
                        seed=self.seed,
                        config=cfg,
                        prefetcher=None,
                        label="baseline",
                        compressed=self.compressed,
                    )
                candidates.append((workload, label, key))
                candidate_specs.append(
                    JobSpec(
                        workload=workload,
                        records=self.records,
                        seed=self.seed,
                        config=cfg,
                        prefetcher=prefetcher_factory(label),
                        label=label,
                        compressed=self.compressed,
                    )
                )

        specs = list(baseline_specs.values()) + candidate_specs
        results = run_jobs(specs, policy=self.effective_policy())

        n_baselines = len(baseline_specs)
        for key, result in zip(baseline_specs.keys(), results[:n_baselines]):
            self.baseline_memo[key] = result

        grid: "dict[str, list[SweepPoint]]" = {w: [] for w in self.workloads}
        for (workload, label, key), result in zip(candidates, results[n_baselines:]):
            grid[workload].append(
                SweepPoint(
                    workload=workload,
                    label=label,
                    result=result,
                    baseline=self.baseline_memo[key],
                )
            )
        return grid
