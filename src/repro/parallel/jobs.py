"""Picklable simulation jobs and the process-pool execution primitive.

A :class:`JobSpec` fully describes one simulator run — workload generation
parameters, processor configuration and a *fresh* prefetcher instance —
using only picklable state, so it can be shipped to a
``ProcessPoolExecutor`` worker.  Traces are deliberately **not** part of
the spec: workers rebuild them from the parameters, hitting the on-disk
``.npz`` cache (:mod:`repro.workloads.cache`) or, under the default
``fork`` start method, the in-process memo inherited from the parent, so
the expensive generation happens once.

Determinism
-----------
A job's result depends only on its spec: traces are deterministic in
``(workload, records, seed, scale)``, prefetcher state is never shared
between runs, and the simulator is single-threaded.  ``run_jobs`` returns
results in input order regardless of completion order, so parallel and
sequential execution are bit-for-bit identical.
"""

from __future__ import annotations

import copy
import logging
import os
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from ..engine.config import ProcessorConfig
from ..engine.filter_plane import (
    compressed_enabled,
    get_epoch_segments,
    get_filter_plane,
    kernel_enabled,
)
from ..engine.simulator import EpochSimulator
from ..engine.stats import SimulationResult
from ..prefetchers.base import Prefetcher
from ..workloads.registry import make_workload
from ..workloads.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - cycle: resilience.executor imports us
    from ..obs.bus import EventBus
    from ..resilience.policy import ExecutionPolicy

__all__ = [
    "JobSpec",
    "run_job",
    "run_jobs",
    "resolve_jobs",
    "warm_trace_cache",
    "reset_warm_registry",
]

log = logging.getLogger(__name__)


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: explicit value, else ``$REPRO_JOBS``, else 1.

    ``0`` (explicit or from the environment) means "all cores".
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            log.warning("ignoring non-integer REPRO_JOBS=%r", env)
            return 1
    if jobs == 0:
        return os.cpu_count() or 1
    return max(1, jobs)


@dataclass
class JobSpec:
    """One simulator run, described by picklable state only.

    ``prefetcher`` must be a freshly constructed instance (its initial
    state is part of the job's identity); ``None`` runs the
    no-prefetching baseline.  ``n_threads > 0`` requests the CMP
    interleaving of :mod:`repro.workloads.multithread`, with ``records``
    then counting per thread.
    """

    workload: str
    records: int
    seed: int
    config: ProcessorConfig
    prefetcher: Optional[Prefetcher] = None
    label: str = ""
    scale: float = 1.0
    n_threads: int = 0
    warmup_records: Optional[int] = None
    #: Compressed execution over the precomputed L1 filter plane
    #: (:mod:`repro.engine.filter_plane`); ``None`` defers to
    #: ``$REPRO_COMPRESSED`` (on by default).  Results are bit-identical
    #: either way — this exists for benchmarking the legacy path.
    compressed: Optional[bool] = None

    def build_trace(self) -> Trace:
        if self.n_threads > 0:
            from ..workloads.multithread import make_cmp_workload

            return make_cmp_workload(
                self.workload,
                n_threads=self.n_threads,
                records_per_thread=self.records,
                seed=self.seed,
            )
        return make_workload(
            self.workload, records=self.records, seed=self.seed, scale=self.scale
        )

    def run(self, bus: "Optional[EventBus]" = None) -> SimulationResult:
        trace = self.build_trace()
        # Simulate a *copy* of the prefetcher: running warms its tables, and
        # an idempotent spec is what makes in-process fallback (and re-runs)
        # bit-identical to shipping the spec through the pickle boundary.
        # An attached bus observes the run (worker-side telemetry); it never
        # alters simulation state, so results stay bit-identical with or
        # without one.
        sim = EpochSimulator(
            self.config,
            copy.deepcopy(self.prefetcher),
            cpi_perf=trace.meta.cpi_perf,
            overlap=trace.meta.overlap,
            bus=bus,
        )
        return sim.run(
            trace, warmup_records=self.warmup_records, compressed=self.compressed
        )

    def wants_compressed(self) -> bool:
        """Whether running this spec will consult the filter plane."""
        return self.compressed if self.compressed is not None else compressed_enabled()

    def l1_geometry_keys(self) -> "tuple[tuple, tuple]":
        """The (L1I, L1D) geometry keys this spec's hierarchy will use."""
        cfg = self.config
        return (
            (cfg.l1i.size_bytes, cfg.l1i.ways, cfg.line_size),
            (cfg.l1d.size_bytes, cfg.l1d.ways, cfg.line_size),
        )

    def wants_kernel(self) -> bool:
        """Whether running this spec can take the epoch-batched kernel."""
        return (
            self.wants_compressed()
            and kernel_enabled()
            and getattr(self.prefetcher, "supports_epoch_batch", False)
        )

    def segment_geometry_key(self) -> "tuple[tuple, int]":
        """The (L2 geometry, ROB size) key of this spec's epoch segments."""
        cfg = self.config
        return ((cfg.l2.size_bytes, cfg.l2.ways, cfg.line_size), cfg.rob_size)


def run_job(spec: JobSpec) -> SimulationResult:
    """Process-pool entry point (must be a module-level callable)."""
    return spec.run()


#: Process-wide registry of already-warmed content keys.  A spec-expanded
#: grid reaches :func:`execute` (and hence the warmer) in several calls —
#: checkpoint-resumed retries, micro-batches inside the service, one call
#: per panel in multi-panel experiments — and the registry is what makes
#: each distinct (trace, L1 geometry, L2/ROB segment) warm exactly once
#: across the whole sweep instead of once per call.
_WARM_REGISTRY: set = set()
_WARM_LOCK = threading.Lock()


def reset_warm_registry() -> None:
    """Forget every recorded warm (tests; cache-eviction escape hatch)."""
    with _WARM_LOCK:
        _WARM_REGISTRY.clear()


def _warm_trace_cache(
    specs: Sequence[JobSpec], bus: "Optional[EventBus]" = None
) -> None:
    """Generate each distinct trace — and its filter planes — once in the
    parent before fanning out.

    Workers then either inherit the in-process memo (``fork``) or load the
    ``.npz`` from the on-disk cache (``spawn``), instead of all
    regenerating the same trace concurrently.  Filter planes are warmed
    per distinct ``(trace, L1 geometry)`` pair, so a sweep of many L2 /
    prefetcher configurations over one workload computes each plane once
    rather than once per job — and the process-wide :data:`_WARM_REGISTRY`
    extends that guarantee across *calls*, so the many ``execute`` batches
    of one spec-expanded sweep never re-warm a key.  Emits one
    :class:`~repro.obs.events.TraceCacheWarmed` event per call that did
    new work.
    """
    new_traces = 0
    new_planes = 0
    new_segments = 0
    for spec in specs:
        if spec.n_threads > 0:
            continue  # CMP composites are built from cached per-thread traces
        key = (spec.workload, spec.records, spec.seed, spec.scale)
        geometry = spec.l1_geometry_keys() if spec.wants_compressed() else None
        plane_key = None if geometry is None else key + geometry
        segment_key = (
            plane_key + spec.segment_geometry_key()
            if plane_key is not None and spec.wants_kernel()
            else None
        )
        with _WARM_LOCK:
            want_trace = ("trace",) + key not in _WARM_REGISTRY
            want_plane = (
                plane_key is not None
                and ("plane",) + plane_key not in _WARM_REGISTRY
            )
            want_segment = (
                segment_key is not None
                and ("segment",) + segment_key not in _WARM_REGISTRY
            )
        if not (want_trace or want_plane or want_segment):
            continue
        try:
            # Memoised by the registry: a repeat call is a dict lookup.
            trace = make_workload(
                spec.workload, records=spec.records, seed=spec.seed, scale=spec.scale
            )
        except KeyError:
            continue  # unknown name: let the worker raise the real error
        if want_trace:
            new_traces += 1
        with _WARM_LOCK:
            _WARM_REGISTRY.add(("trace",) + key)
        if plane_key is not None:
            plane = get_filter_plane(trace, *geometry)
            if want_plane:
                new_planes += 1
            with _WARM_LOCK:
                _WARM_REGISTRY.add(("plane",) + plane_key)
            if want_segment:
                # Kernel-eligible jobs also consult the epoch-segment plane
                # (per distinct L2 geometry + ROB size) — warm it alongside.
                l2_geometry, rob_size = spec.segment_geometry_key()
                get_epoch_segments(trace, plane, l2_geometry, rob_size)
                new_segments += 1
                with _WARM_LOCK:
                    _WARM_REGISTRY.add(("segment",) + segment_key)
    if new_traces or new_planes or new_segments:
        from ..obs.bus import peek_global_bus
        from ..obs.events import TraceCacheWarmed

        event = TraceCacheWarmed(
            traces=new_traces,
            planes=new_planes,
            segments=new_segments,
            total_specs=len(specs),
        )
        target = bus if bus is not None else peek_global_bus()
        if target is not None and target.wants(TraceCacheWarmed):
            target.emit(event)


def warm_trace_cache(
    specs: Sequence[JobSpec], bus: "Optional[EventBus]" = None
) -> None:
    """Public pre-warming entry point (what shard start-up calls).

    A shard that knows its expected working set (``serve --prewarm``)
    generates those traces, filter planes and epoch-segment planes
    before reporting ready, so its first real request is answered from
    warm state instead of paying generation cost under traffic.
    """
    _warm_trace_cache(specs, bus=bus)


def run_jobs(
    specs: Iterable[JobSpec],
    jobs: Optional[int] = None,
    policy: "Optional[ExecutionPolicy]" = None,
    bus: "Optional[EventBus]" = None,
) -> "list[SimulationResult]":
    """Run every job under ``policy`` and return results in input order.

    This is a thin facade over :func:`repro.resilience.executor.execute`,
    which owns pool management, bounded retry, per-job timeouts,
    ``BrokenProcessPool`` recovery and checkpoint resume.  With the
    default policy the behaviour matches the historical primitive:
    ``policy.jobs > 1`` fans out over a ``ProcessPoolExecutor``, and
    anything that prevents parallel execution — unpicklable specs, a pool
    that cannot start — degrades to in-process execution with a warning
    (and an :class:`~repro.obs.events.ExecutionDegraded` event) rather
    than failing the run.  Genuine simulation errors propagate unchanged
    in both modes.

    ``jobs`` is a convenience for the one-knob callers; it is folded into
    the policy (an explicit ``policy.jobs`` wins).  On a single-core
    machine a pool is pure overhead, so specs run in-process even when
    more workers were requested; ``$REPRO_FORCE_POOL=1`` forces the pool
    anyway (e.g. to exercise the pickle boundary in tests).
    """
    from ..resilience.executor import execute
    from ..resilience.policy import ExecutionPolicy

    if policy is None:
        policy = ExecutionPolicy(jobs=jobs)
    elif policy.jobs is None and jobs is not None:
        policy = policy.replace(jobs=jobs)
    return execute(list(specs), policy, bus=bus)
