"""Process-level parallel execution for sweeps and benches.

The paper's evaluation is a pile of embarrassingly parallel
(workload x configuration) grid points; this package fans them out over a
``ProcessPoolExecutor`` while guaranteeing results bit-identical to
sequential execution.  Worker count comes from the ``-j/--jobs`` CLI
flag, the ``jobs`` field of the :class:`~repro.resilience.ExecutionPolicy`
passed to the experiment entry points, or the ``REPRO_JOBS`` environment
variable (``0`` = all cores; default 1).  Execution itself — retries,
timeouts, checkpoints, fault injection — lives in
:mod:`repro.resilience`; ``run_jobs`` is a thin policy-applying wrapper
over its executor.

>>> from repro.parallel import ParallelSweepRunner
>>> grid = ParallelSweepRunner(records=40_000, jobs=4).sweep(
...     labels=["4", "8"],
...     prefetcher_factory=lambda label: make_sweep_ebcp(int(label)),
...     config=idealized_config(),
... )  # doctest: +SKIP
"""

from .jobs import JobSpec, resolve_jobs, run_job, run_jobs, warm_trace_cache
from .runner import ParallelSweepRunner

__all__ = [
    "JobSpec",
    "ParallelSweepRunner",
    "resolve_jobs",
    "run_job",
    "run_jobs",
    "warm_trace_cache",
]
