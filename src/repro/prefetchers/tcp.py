"""Tag Correlating Prefetcher (Hu, Martonosi & Kaxiras, HPCA 2003).

TCP exploits correlation among cache *tags* instead of full addresses,
betting that tag sequences repeat across different sets and thus need a
smaller table.  Two levels:

* **THT** (Tag History Table) — one entry per L1 cache set holding the
  last two miss tags of that set.
* **PHT** (Pattern History Table) — set-associative table mapping a
  (tag₁, tag₂) history pair to the predicted next tag.

On a load miss to set ``s`` with tag ``t``: the PHT entry for the set's
previous tag pair is updated to predict ``t``; then the updated history
``(t_prev, t)`` probes the PHT and the predicted tag chain is followed to
issue up to ``degree`` prefetches to ``(predicted_tag, s)``.

Both levels are on-chip (ready one epoch after the trigger); only load
misses are observed.  Paper configurations: *TCP small* — 2048 PHT sets x
16 ways (~256 KB); *TCP large* — 32 K PHT sets x 16 ways (~4 MB); THT of
128 entries matching the L1 sets.
"""

from __future__ import annotations

from ..memory.request import Access, AccessKind, PrefetchRequest
from .base import Prefetcher

__all__ = ["TagCorrelatingPrefetcher", "make_tcp_small", "make_tcp_large"]

_HASH_MULT = 0x9E3779B97F4A7C15
_HASH_MASK = (1 << 64) - 1


class TagCorrelatingPrefetcher(Prefetcher):
    """Two-level tag-correlation prefetcher."""

    name = "tcp"
    targets_instructions = False

    def __init__(
        self,
        pht_sets: int = 2048,
        pht_ways: int = 16,
        l1_sets: int = 128,
        degree: int = 6,
        label: str | None = None,
    ) -> None:
        super().__init__()
        if pht_sets <= 0 or pht_ways <= 0 or l1_sets <= 0:
            raise ValueError("table geometry must be positive")
        if l1_sets & (l1_sets - 1):
            raise ValueError("l1_sets must be a power of two")
        self.pht_sets = pht_sets
        self.pht_ways = pht_ways
        self.l1_sets = l1_sets
        self._set_bits = l1_sets.bit_length() - 1
        self.degree = degree
        if label:
            self.name = label
        # THT: per L1 set, the last two miss tags (older, newer).
        self._tht: list[tuple[int, int]] = [(-1, -1)] * l1_sets
        # PHT: per set, an LRU dict (tag1, tag2) -> predicted next tag.
        self._pht: list[dict[tuple[int, int], tuple[int, int]]] = [
            dict() for _ in range(pht_sets)
        ]
        self._stamp = 0

    # ------------------------------------------------------------------
    def observe_access(self, access: Access, line: int, epoch_index: int) -> list[PrefetchRequest]:
        # TCP is an L1-side scheme: it observes the L1 load-miss stream
        # (i.e. every L2 load access), not just L2 misses.
        if access.kind is not AccessKind.LOAD:
            return []
        return self._miss(line)

    # ------------------------------------------------------------------
    def _split(self, line: int) -> tuple[int, int]:
        return line & (self.l1_sets - 1), line >> self._set_bits

    def _pht_index(self, history: tuple[int, int]) -> int:
        mixed = ((history[0] * _HASH_MULT) ^ (history[1] * 0x2545F4914F6CDD1D)) & _HASH_MASK
        return mixed % self.pht_sets

    def _pht_update(self, history: tuple[int, int], next_tag: int) -> None:
        bucket = self._pht[self._pht_index(history)]
        self._stamp += 1
        if history in bucket:
            bucket[history] = (next_tag, self._stamp)
            return
        if len(bucket) >= self.pht_ways:
            victim = min(bucket, key=lambda k: bucket[k][1])
            del bucket[victim]
        bucket[history] = (next_tag, self._stamp)

    def _pht_lookup(self, history: tuple[int, int]) -> int | None:
        bucket = self._pht[self._pht_index(history)]
        hit = bucket.get(history)
        if hit is None:
            return None
        self._stamp += 1
        bucket[history] = (hit[0], self._stamp)
        return hit[0]

    def _miss(self, line: int) -> list[PrefetchRequest]:
        cache_set, tag = self._split(line)
        older, newer = self._tht[cache_set]
        if older >= 0 and newer >= 0:
            self._pht_update((older, newer), tag)
        self._tht[cache_set] = (newer, tag)
        if newer < 0:
            return []
        # Follow the predicted tag chain from the fresh history.
        requests = []
        history = (newer, tag)
        seen: set[int] = set()
        for _ in range(self.degree):
            predicted = self._pht_lookup(history)
            if predicted is None or predicted in seen:
                break
            seen.add(predicted)
            requests.append(
                self.make_request(
                    (predicted << self._set_bits) | cache_set, epochs_until_ready=1
                )
            )
            history = (history[1], predicted)
        return requests

    # ------------------------------------------------------------------
    @property
    def onchip_storage_bytes(self) -> int:
        # ~8 B per PHT way (two-tag key compressed + predicted tag),
        # giving ~256 KB for the small and ~4 MB for the large config.
        return self.pht_sets * self.pht_ways * 8 + self.l1_sets * 12


def make_tcp_small(degree: int = 6, l1_sets: int = 128, scale: int = 8) -> TagCorrelatingPrefetcher:
    """TCP small: the paper's 2048 PHT sets x 16 ways (~256 KB), divided
    by the evaluation's capacity scale factor (DESIGN.md Sec 2)."""
    return TagCorrelatingPrefetcher(2048 // scale, 16, l1_sets, degree, label="tcp_small")


def make_tcp_large(degree: int = 6, l1_sets: int = 128, scale: int = 8) -> TagCorrelatingPrefetcher:
    """TCP large: the paper's 32 K PHT sets x 16 ways (~4 MB), divided by
    the evaluation's capacity scale factor."""
    return TagCorrelatingPrefetcher(32 * 1024 // scale, 16, l1_sets, degree, label="tcp_large")
