"""Prefetcher factory.

``build_prefetcher(name, **overrides)`` constructs any scheme evaluated in
the paper by its Figure 9 label.  Overrides are passed to the underlying
constructor/factory, so e.g. ``build_prefetcher("ebcp", prefetch_degree=32)``
builds the idealized sweep point.
"""

from __future__ import annotations

from typing import Callable

from .base import Prefetcher
from .ghb import make_ghb_large, make_ghb_small
from .none import NoPrefetcher
from .sms import SpatialMemoryStreaming
from .solihin import make_solihin_3_2, make_solihin_6_1
from .stream import StreamPrefetcher
from .tcp import make_tcp_large, make_tcp_small

__all__ = ["PREFETCHERS", "build_prefetcher"]


# The EBCP factories live in repro.core, which subclasses this package's
# Prefetcher base — import them lazily to keep the package graph acyclic.
def _ebcp(**kwargs: object) -> Prefetcher:
    from ..core.variants import make_ebcp

    return make_ebcp(**kwargs)  # type: ignore[arg-type]


def _ebcp_minus(**kwargs: object) -> Prefetcher:
    from ..core.variants import make_ebcp_minus

    return make_ebcp_minus(**kwargs)  # type: ignore[arg-type]


def _ebcp_onchip(**kwargs: object) -> Prefetcher:
    from ..core.variants import make_ebcp_onchip

    return make_ebcp_onchip(**kwargs)  # type: ignore[arg-type]


def _ebcp_cmp(**kwargs: object) -> Prefetcher:
    from ..core.cmp import CMPEBCPConfig, PerThreadEpochPrefetcher
    from ..core.prefetcher import EBCPConfig

    return PerThreadEpochPrefetcher(CMPEBCPConfig(EBCPConfig(**kwargs)))  # type: ignore[arg-type]


def _ebcp_interleaved(**kwargs: object) -> Prefetcher:
    from ..core.cmp import CMPEBCPConfig, InterleavedStreamEBCP
    from ..core.prefetcher import EBCPConfig

    return InterleavedStreamEBCP(CMPEBCPConfig(EBCPConfig(**kwargs)))  # type: ignore[arg-type]


_FACTORIES: dict[str, Callable[..., Prefetcher]] = {
    "none": NoPrefetcher,
    "stream": StreamPrefetcher,
    "ghb_small": make_ghb_small,
    "ghb_large": make_ghb_large,
    "tcp_small": make_tcp_small,
    "tcp_large": make_tcp_large,
    "sms": SpatialMemoryStreaming,
    "solihin_3_2": make_solihin_3_2,
    "solihin_6_1": make_solihin_6_1,
    "ebcp": _ebcp,
    "ebcp_minus": _ebcp_minus,
    "ebcp_onchip": _ebcp_onchip,
    "ebcp_cmp": _ebcp_cmp,
    "ebcp_interleaved": _ebcp_interleaved,
}

#: All registered prefetcher names (Figure 9's x-axis plus variants).
PREFETCHERS: tuple[str, ...] = tuple(_FACTORIES)


def build_prefetcher(name: str, **overrides: object) -> Prefetcher:
    """Construct a prefetcher by its evaluation label."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(f"unknown prefetcher '{name}'; choose from {PREFETCHERS}") from None
    return factory(**overrides)
