"""Global History Buffer PC/DC prefetcher (Nesbit & Smith, HPCA 2004).

The GHB decouples table indexing from history storage: an *index table*
maps a load PC to the head of that PC's chain inside a circular *global
history buffer* of recent miss addresses; each buffer entry links to the
previous miss by the same PC.  The PC/DC (program counter / delta
correlation) variant — the best performer in Perez et al's comparison,
hence the paper's chosen on-chip baseline — works on the *delta* stream
of each PC:

1. the PC's chain is walked to recover its recent miss addresses,
2. the two most recent deltas form a correlation key,
3. the most recent earlier occurrence of that delta pair is located in
   the PC's delta history, and
4. the deltas that *followed* it are replayed from the current address to
   generate up to ``degree`` prefetches (depth prefetching).

Both tables are on-chip SRAM, so prefetches are ready one epoch after the
trigger.  Two configurations from the paper: *GHB small* (16 K-entry
index table + 16 K-entry buffer, ~256 KB) and *GHB large* (256 K + 256 K,
~4 MB).  Instruction misses are prefetched too (keyed by fetch PC).
"""

from __future__ import annotations

from collections import OrderedDict

from ..engine.epoch import Epoch
from ..memory.request import Access, PrefetchRequest
from .base import Prefetcher

__all__ = ["GHBPrefetcher", "make_ghb_small", "make_ghb_large"]


class GHBPrefetcher(Prefetcher):
    """GHB PC/DC with depth prefetching."""

    name = "ghb"
    targets_instructions = True

    #: Maximum chain length walked when reconstructing a PC's history.
    MAX_HISTORY = 64

    def __init__(
        self,
        index_entries: int = 16 * 1024,
        buffer_entries: int = 16 * 1024,
        degree: int = 6,
        label: str | None = None,
    ) -> None:
        super().__init__()
        if index_entries <= 0 or buffer_entries <= 0:
            raise ValueError("table sizes must be positive")
        self.index_entries = index_entries
        self.buffer_entries = buffer_entries
        self.degree = degree
        if label:
            self.name = label
        # Index table: PC -> absolute position of its newest GHB entry.
        self._index: OrderedDict[int, int] = OrderedDict()
        # Circular GHB: position % buffer_entries -> (line, prev_abs_pos).
        self._ghb: list[tuple[int, int]] = [(-1, -1)] * buffer_entries
        self._head = 0  # absolute position of the next insert

    # ------------------------------------------------------------------
    def observe_offchip_miss(
        self,
        access: Access,
        line: int,
        epoch: Epoch,
        is_trigger: bool,
    ) -> list[PrefetchRequest]:
        return self._miss(access.pc, line)

    def observe_prefetch_hit(
        self,
        access: Access,
        line: int,
        table_index: int | None,
        epoch_index: int,
        first_in_epoch: bool,
    ) -> list[PrefetchRequest]:
        # Averted misses keep training the history (the GHB sees the
        # prefetch-buffer hit stream just like the L2 miss stream).
        return self._miss(access.pc, line)

    # ------------------------------------------------------------------
    def _miss(self, pc: int, line: int) -> list[PrefetchRequest]:
        prev = self._index.get(pc, -1)
        self._ghb[self._head % self.buffer_entries] = (line, prev)
        self._index[pc] = self._head
        self._index.move_to_end(pc)
        self._head += 1
        if len(self._index) > self.index_entries:
            self._index.popitem(last=False)
        history = self._walk_chain(pc)
        if len(history) < 4:
            return []
        return self._delta_correlate(history)

    def _walk_chain(self, pc: int) -> list[int]:
        """Recent miss lines of ``pc``, newest first."""
        history: list[int] = []
        pos = self._index.get(pc, -1)
        oldest_valid = self._head - self.buffer_entries
        while pos >= 0 and pos >= oldest_valid and len(history) < self.MAX_HISTORY:
            entry_line, prev = self._ghb[pos % self.buffer_entries]
            history.append(entry_line)
            if prev >= pos:  # corrupted link after wrap-around
                break
            pos = prev
        return history

    def _delta_correlate(self, history: list[int]) -> list[PrefetchRequest]:
        # history is newest-first; build the delta stream oldest-first.
        addrs = history[::-1]
        deltas = [addrs[i + 1] - addrs[i] for i in range(len(addrs) - 1)]
        if len(deltas) < 3:
            return []
        key = (deltas[-2], deltas[-1])
        # Find the most recent earlier occurrence of the delta pair.
        match = -1
        for i in range(len(deltas) - 3, 0, -1):
            if (deltas[i - 1], deltas[i]) == key:
                match = i
                break
        if match < 0:
            return []
        requests = []
        current = addrs[-1]
        for delta in deltas[match + 1 : match + 1 + self.degree]:
            current += delta
            if current < 0:
                break
            requests.append(self.make_request(current, epochs_until_ready=1))
        return requests

    # ------------------------------------------------------------------
    @property
    def onchip_storage_bytes(self) -> int:
        # ~8 B per index-table entry (PC tag + pointer) and ~8 B per GHB
        # entry (compressed address + link) — the paper's 256 KB / 4 MB
        # estimates for the small and large configurations.
        return 8 * (self.index_entries + self.buffer_entries)


def make_ghb_small(degree: int = 6, scale: int = 8) -> GHBPrefetcher:
    """GHB small: the paper's 16 K + 16 K entries (~256 KB of SRAM),
    divided by the evaluation's capacity scale factor (DESIGN.md Sec 2)."""
    n = 16 * 1024 // scale
    return GHBPrefetcher(n, n, degree=degree, label="ghb_small")


def make_ghb_large(degree: int = 6, scale: int = 8) -> GHBPrefetcher:
    """GHB large: the paper's 256 K + 256 K entries (~4 MB of SRAM),
    divided by the evaluation's capacity scale factor."""
    n = 256 * 1024 // scale
    return GHBPrefetcher(n, n, degree=degree, label="ghb_large")
