"""Solihin's memory-side correlation prefetcher (ISCA 2002).

The scheme conceptually closest to EBCP: the correlation table also lives
in main memory, but the prefetching engine sits *near memory* (a
user-level thread on a core in the North Bridge or DRAM chip) and the
table records plain miss *successors*: for a miss M, the next misses at
each level (depth) after M, with ``width`` alternatives per level kept in
LRU order.

On every off-chip miss the table entry for the miss address is read and
all recorded successors (up to ``depth x width``, capped at ``degree``)
are prefetched.  Because the table read occupies the triggering epoch and
the prefetch transfer the next one, the prefetched data arrives two
epochs after the trigger — while the recorded successor misses mostly
belong to the *same or next* epoch.  This timeliness gap is exactly the
paper's Section 3.3.1 argument, and this model reproduces its worked
example miss-for-miss.

Two configurations from the comparison: *Solihin 3,2* (depth 3, width 2 —
the original paper's tuning) and *Solihin 6,1* (depth 6, width 1 — the
depth-enhanced variant).  Both use the same number of main-memory table
entries as EBCP.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..engine.epoch import Epoch
from ..memory.hierarchy import CacheHierarchy
from ..memory.main_memory import OutOfMemoryError
from ..memory.request import Access, PrefetchRequest
from .base import Prefetcher

__all__ = ["SolihinPrefetcher", "make_solihin_3_2", "make_solihin_6_1"]

_HASH_MULT = 0x9E3779B97F4A7C15
_HASH_MASK = (1 << 64) - 1


@dataclass
class _Entry:
    tag: int
    #: levels[d] holds up to ``width`` successor lines, MRU first.
    levels: list[list[int]] = field(default_factory=list)


class SolihinPrefetcher(Prefetcher):
    """Memory-side successor-correlation prefetching."""

    name = "solihin"
    targets_instructions = True
    # The near-memory engine trains on the raw memory request stream:
    # store misses are interleaved into it and dilute the successor
    # correlations — one of the placement penalties Section 3.3.1 argues.
    observes_stores = True

    def __init__(
        self,
        depth: int = 3,
        width: int = 2,
        table_entries: int = 128 * 1024,
        degree: int | None = None,
        entry_bytes: int = 64,
        label: str | None = None,
    ) -> None:
        super().__init__()
        if depth <= 0 or width <= 0:
            raise ValueError("depth and width must be positive")
        self.depth = depth
        self.width = width
        self.table_entries = table_entries
        self.degree = degree if degree is not None else depth * width
        self.entry_bytes = entry_bytes
        if label:
            self.name = label
        else:
            self.name = f"solihin_{depth}_{width}"
        self._table: list[_Entry | None] = [None] * table_entries
        #: The last ``depth`` miss lines, newest last.
        self._recent: deque[int] = deque(maxlen=depth)
        self._resident = False

    # ------------------------------------------------------------------
    def bind(self, hierarchy: CacheHierarchy) -> None:
        try:
            hierarchy.memory.allocate(self.memory_table_bytes)
        except OutOfMemoryError:
            self._resident = False
        else:
            self._resident = True

    # ------------------------------------------------------------------
    def _index(self, line: int) -> int:
        return ((line * _HASH_MULT) & _HASH_MASK) % self.table_entries

    def observe_offchip_miss(
        self,
        access: Access,
        line: int,
        epoch: Epoch,
        is_trigger: bool,
    ) -> list[PrefetchRequest]:
        if not self._resident:
            return []
        return self._miss(line)

    # NOTE: no ``observe_prefetch_hit`` override.  The engine lives near
    # memory; a prefetch-buffer hit is an on-chip event that generates no
    # memory request, so averted misses vanish from the stream the engine
    # can observe — they neither train the table nor key lookups.  This
    # self-limiting feedback is one of the structural disadvantages of
    # memory-side prefetching that Section 3.3.1 argues (alongside
    # interleaved per-thread streams on multicores), and it is part of
    # why EBCP — whose control sits in front of the core-to-L2 crossbar
    # and explicitly substitutes prefetch-buffer hits for misses
    # (Section 3.4.3) — outperforms it.

    # ------------------------------------------------------------------
    def _miss(self, line: int) -> list[PrefetchRequest]:
        # Train: ``line`` is the d-th successor of the d-th previous miss.
        for d, predecessor in enumerate(reversed(self._recent)):
            self._train(predecessor, level=d, successor=line)
        self._recent.append(line)
        # One table read + one write per miss for training, plus the
        # prediction read below.
        self.traffic.add_update_read(self.entry_bytes)
        self.traffic.add_update_write(self.entry_bytes)

        # Predict: read the entry for this miss and prefetch successors.
        self.traffic.add_lookup_read(self.entry_bytes)
        index = self._index(line)
        entry = self._table[index]
        if entry is None or entry.tag != line:
            return []
        requests = []
        for level in entry.levels:
            for successor in level:
                if len(requests) >= self.degree:
                    return requests
                requests.append(
                    self.make_request(
                        successor, epochs_until_ready=2, table_index=index
                    )
                )
        return requests

    def _train(self, predecessor: int, level: int, successor: int) -> None:
        index = self._index(predecessor)
        entry = self._table[index]
        if entry is None or entry.tag != predecessor:
            entry = _Entry(tag=predecessor)
            self._table[index] = entry
        while len(entry.levels) <= level:
            entry.levels.append([])
        slot = entry.levels[level]
        if successor in slot:
            slot.remove(successor)
        slot.insert(0, successor)  # MRU first
        del slot[self.width :]

    # ------------------------------------------------------------------
    @property
    def memory_table_bytes(self) -> int:
        return self.table_entries * self.entry_bytes

    @property
    def onchip_storage_bytes(self) -> int:
        # The engine itself is a processor near memory; the on-chip cost
        # to the main CPU is essentially zero.
        return 0


def make_solihin_3_2(table_entries: int = 128 * 1024, degree: int = 6) -> SolihinPrefetcher:
    """The original tuning: depth 3, width 2."""
    return SolihinPrefetcher(depth=3, width=2, table_entries=table_entries, degree=degree)


def make_solihin_6_1(table_entries: int = 128 * 1024, degree: int = 6) -> SolihinPrefetcher:
    """The depth-enhanced variant: depth 6, width 1."""
    return SolihinPrefetcher(depth=6, width=1, table_entries=table_entries, degree=degree)
