"""The no-prefetching baseline."""

from __future__ import annotations

from .base import Prefetcher

__all__ = ["NoPrefetcher"]


class NoPrefetcher(Prefetcher):
    """Observes nothing, issues nothing: the Table 1 baseline.

    Running the simulator with ``prefetcher=None`` is equivalent; this
    class exists so the registry can hand back a uniform object.
    """

    name = "none"
    targets_instructions = False
