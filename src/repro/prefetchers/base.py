"""Prefetcher interface shared by EBCP and every baseline.

The epoch engine drives prefetchers through a small set of callbacks and
collects :class:`~repro.memory.request.PrefetchRequest` objects from them.
The engine owns timeliness (epoch-granular readiness) and bandwidth
(issue, drop); prefetchers own prediction state and training.

Callback contract
-----------------
``observe_access``
    Called for every L1 miss (== L2 access), hit or miss, *before* the
    outcome is known to the prefetcher.  Used by prefetchers that train on
    the L2-access stream (SMS accumulates spatial patterns here).
``observe_offchip_miss``
    Called for every genuine off-chip miss with its epoch context.
``observe_prefetch_hit``
    Called when a demand access hits a ready line in the prefetch buffer.
    EBCP updates its correlation-entry LRU here; it also substitutes for a
    miss as an epoch-lookup key (Section 3.4.3).
``on_epoch_boundary``
    Called when an epoch closes (outstanding misses drained).  EBCP does
    its EMAB-driven training here.

Traffic accounting
------------------
Prefetchers whose tables live in main memory report the table reads and
writes they generate through :class:`TrafficMeter`; the engine charges
them against the epoch's bus budgets at the appropriate priorities.
On-chip prefetchers leave the meter untouched and instead report their
SRAM cost via :attr:`Prefetcher.onchip_storage_bytes`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..engine.epoch import Epoch
from ..memory.request import Access, PrefetchRequest
from ..obs.events import PrefetchIssued, TableRead, TableWrite

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.bus import EventBus

__all__ = ["TrafficMeter", "Prefetcher"]


@dataclass
class TrafficMeter:
    """Main-memory table traffic generated since the last drain."""

    lookup_read_bytes: int = 0
    update_read_bytes: int = 0
    update_write_bytes: int = 0
    lru_write_bytes: int = 0
    # Lifetime totals (never reset), for reporting.
    total_read_bytes: int = 0
    total_write_bytes: int = 0
    #: Optional observability bus; every add_* publishes a table event.
    bus: "EventBus | None" = field(default=None, repr=False, compare=False)

    def _emit_read(self, nbytes: int, purpose: str) -> None:
        if self.bus is not None and self.bus.wants(TableRead):
            self.bus.emit(TableRead(nbytes=nbytes, purpose=purpose))

    def _emit_write(self, nbytes: int, purpose: str) -> None:
        if self.bus is not None and self.bus.wants(TableWrite):
            self.bus.emit(TableWrite(nbytes=nbytes, purpose=purpose))

    def add_lookup_read(self, nbytes: int) -> None:
        self.lookup_read_bytes += nbytes
        self.total_read_bytes += nbytes
        self._emit_read(nbytes, "lookup")

    def add_update_read(self, nbytes: int) -> None:
        self.update_read_bytes += nbytes
        self.total_read_bytes += nbytes
        self._emit_read(nbytes, "update")

    def add_update_write(self, nbytes: int) -> None:
        self.update_write_bytes += nbytes
        self.total_write_bytes += nbytes
        self._emit_write(nbytes, "update")

    def add_lru_write(self, nbytes: int) -> None:
        self.lru_write_bytes += nbytes
        self.total_write_bytes += nbytes
        self._emit_write(nbytes, "lru")

    def drain(self) -> tuple[int, int, int, int]:
        """Return and clear (lookup_r, update_r, update_w, lru_w) bytes."""
        out = (
            self.lookup_read_bytes,
            self.update_read_bytes,
            self.update_write_bytes,
            self.lru_write_bytes,
        )
        self.lookup_read_bytes = 0
        self.update_read_bytes = 0
        self.update_write_bytes = 0
        self.lru_write_bytes = 0
        return out


class Prefetcher(abc.ABC):
    """Base class for all prefetching schemes."""

    #: Short identifier used in reports ("ebcp", "ghb_large", ...).
    name: str = "base"
    #: Whether the scheme prefetches instruction misses too.  TCP, the
    #: stream prefetcher and SMS only target load misses (Section 5.3).
    targets_instructions: bool = True
    #: Whether the scheme observes store misses.  EBCP's control sits in
    #: front of the core-to-L2 crossbar and deliberately excludes stores
    #: (weak consistency, Section 3.4.2); a memory-side engine (Solihin)
    #: sees every request that reaches memory, stores included.
    observes_stores: bool = False

    def __init__(self) -> None:
        self.traffic = TrafficMeter()
        self.issued_requests = 0
        #: Optional observability bus (see :meth:`attach_bus`).
        self.bus: "EventBus | None" = None

    def attach_bus(self, bus: "EventBus | None") -> None:
        """Attach an observability bus to this prefetcher and its meter."""
        self.bus = bus
        self.traffic.bus = bus

    # ------------------------------------------------------------------
    # Engine callbacks (default: no-ops returning no requests)
    # ------------------------------------------------------------------
    def bind(self, hierarchy: object) -> None:
        """Called once before simulation starts.

        Prefetchers with main-memory tables use this to request their
        physical region from the simulated OS (Section 3.4.1).
        """


    def observe_access(self, access: Access, line: int, epoch_index: int) -> list[PrefetchRequest]:
        return []

    def observe_offchip_miss(
        self,
        access: Access,
        line: int,
        epoch: Epoch,
        is_trigger: bool,
    ) -> list[PrefetchRequest]:
        return []

    def observe_prefetch_hit(
        self,
        access: Access,
        line: int,
        table_index: int | None,
        epoch_index: int,
        first_in_epoch: bool,
    ) -> list[PrefetchRequest]:
        return []

    def on_epoch_boundary(self, closed: Epoch | None) -> list[PrefetchRequest]:
        """Called at each (would-be) epoch boundary.

        ``closed`` is the real epoch still open at the boundary, if any —
        at high coverage, boundaries are driven by prefetch-buffer hits
        and no real epoch may exist.
        """
        return []

    # ------------------------------------------------------------------
    # Cost reporting
    # ------------------------------------------------------------------
    @property
    def onchip_storage_bytes(self) -> int:
        """SRAM the scheme needs on chip (tables, buffers it owns)."""
        return 0

    @property
    def memory_table_bytes(self) -> int:
        """Main-memory footprint of an off-chip correlation table."""
        return 0

    # ------------------------------------------------------------------
    def make_request(self, line: int, **kwargs: object) -> PrefetchRequest:
        """Helper stamping the request with this prefetcher's name."""
        req = PrefetchRequest(line_addr=line, source=self.name, **kwargs)  # type: ignore[arg-type]
        self.issued_requests += 1
        if self.bus is not None and self.bus.wants(PrefetchIssued):
            self.bus.emit(
                PrefetchIssued(
                    line=req.line_addr,
                    source=req.source,
                    priority=int(req.priority),
                    epochs_until_ready=req.epochs_until_ready,
                    table_index=req.table_index,
                )
            )
        return req
