"""Hardware stream prefetcher.

Models the stream prefetchers shipped in contemporary processors (IBM
POWER5, Fujitsu SPARC64-VI, AMD Opteron, Intel Pentium 4 — paper
Section 5.3): up to 32 concurrent streams, positive/negative and non-unit
strides, confirmation before issue, and a configurable run-ahead distance.

On the detection and confirmation of a stream it issues ``degree``
prefetch requests and then attempts to stay ``ahead`` strides in front of
the demand stream.  Only load misses are observed (no instruction
prefetching), matching the paper's comparison setup.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memory.request import Access, AccessKind, PrefetchRequest
from .base import Prefetcher

__all__ = ["StreamPrefetcher"]


@dataclass
class _StreamTracker:
    last_line: int
    stride: int = 0
    confidence: int = 0
    #: How far (in strides) the tracker has prefetched beyond last_line.
    issued_ahead: int = 0
    last_use: int = 0


class StreamPrefetcher(Prefetcher):
    """32-entry stride/stream detector with confirmation."""

    name = "stream"
    targets_instructions = False

    #: A new miss within this many lines of a tracker can retrain it.
    MATCH_WINDOW = 16
    #: Maximum absolute stride (in lines) considered a stream.
    MAX_STRIDE = 8

    def __init__(
        self,
        n_streams: int = 32,
        degree: int = 6,
        ahead: int = 6,
        confirm: int = 2,
    ) -> None:
        super().__init__()
        if n_streams <= 0 or degree <= 0:
            raise ValueError("n_streams and degree must be positive")
        self.n_streams = n_streams
        self.degree = degree
        self.ahead = ahead
        self.confirm = confirm
        self._trackers: list[_StreamTracker] = []
        self._stamp = 0

    # ------------------------------------------------------------------
    def observe_access(self, access: Access, line: int, epoch_index: int) -> list[PrefetchRequest]:
        # Stream prefetchers in commercial processors watch the L1
        # load-miss stream (every L2 load access), not just L2 misses.
        if access.kind is not AccessKind.LOAD:
            return []
        return self._train(line)

    # ------------------------------------------------------------------
    def _train(self, line: int) -> list[PrefetchRequest]:
        self._stamp += 1
        # 1. Exact continuation of a confirmed or forming stream?
        for tracker in self._trackers:
            if tracker.stride and line == tracker.last_line + tracker.stride:
                tracker.confidence += 1
                tracker.last_line = line
                tracker.issued_ahead = max(0, tracker.issued_ahead - 1)
                tracker.last_use = self._stamp
                if tracker.confidence >= self.confirm:
                    return self._issue(tracker)
                return []
        # 2. Near-miss: retrain the stride of a nearby tracker.
        for tracker in self._trackers:
            delta = line - tracker.last_line
            if delta and abs(delta) <= self.MATCH_WINDOW:
                if abs(delta) <= self.MAX_STRIDE:
                    tracker.stride = delta
                    tracker.confidence = 1
                    tracker.issued_ahead = 0
                tracker.last_line = line
                tracker.last_use = self._stamp
                return []
        # 3. Allocate a fresh tracker (LRU replacement).
        if len(self._trackers) >= self.n_streams:
            victim = min(self._trackers, key=lambda t: t.last_use)
            self._trackers.remove(victim)
        self._trackers.append(_StreamTracker(last_line=line, last_use=self._stamp))
        return []

    def _issue(self, tracker: _StreamTracker) -> list[PrefetchRequest]:
        requests = []
        start = tracker.issued_ahead + 1
        stop = min(self.ahead, start + self.degree - 1)
        for k in range(start, stop + 1):
            target = tracker.last_line + k * tracker.stride
            if target < 0:
                break
            requests.append(self.make_request(target, epochs_until_ready=1))
        tracker.issued_ahead = max(tracker.issued_ahead, stop)
        return requests

    # ------------------------------------------------------------------
    @property
    def onchip_storage_bytes(self) -> int:
        # ~16 B of state per stream tracker.
        return self.n_streams * 16
