"""Spatial Memory Streaming (Somogyi et al, ISCA 2006).

SMS predicts which lines of a fixed-size *spatial region* (2 KB in the
paper's comparison) a code path will touch, keyed by the PC+offset of the
first access to the region (the *trigger*).  Structures:

* an **active generation table** (the paper's combined Accumulation +
  Filter table, 128 entries): while a region's generation is live, it
  accumulates a bit vector of the lines accessed;
* a **pattern history table** (PHT, 16 K entries, 16-way): when a
  generation ends, the accumulated pattern is stored under the
  generation's (trigger PC, trigger offset) key.  Unlike the
  capacity-class address tables (GHB, TCP, the correlation tables), the
  PHT is NOT scaled down with the footprint scale factor: its key count
  tracks static code-site diversity, which the scaled workloads preserve.

On a trigger access (first access of a new generation) the PHT is probed
and every line set in the recorded pattern is prefetched — up to 32
prefetches per match, the one scheme in the comparison allowed more than
degree 6.  SMS trains on the L2-access (L1-miss) stream, targets load
misses only, and does not prefetch instructions — which is exactly why
the paper finds it weak on TPC-W and SPECjAppServer2004.
"""

from __future__ import annotations

from collections import OrderedDict

from ..memory.request import Access, AccessKind, PrefetchRequest
from .base import Prefetcher

__all__ = ["SpatialMemoryStreaming"]

_HASH_MULT = 0x9E3779B97F4A7C15
_HASH_MASK = (1 << 64) - 1


def _mix(key: int) -> int:
    """Spread structured trigger keys across the PHT sets."""
    return ((key * _HASH_MULT) & _HASH_MASK) >> 16


class SpatialMemoryStreaming(Prefetcher):
    """SMS with a combined accumulation/filter table and on-chip PHT."""

    name = "sms"
    targets_instructions = False

    def __init__(
        self,
        region_bytes: int = 2048,
        line_bytes: int = 64,
        agt_entries: int = 128,
        pht_entries: int = 16 * 1024,
        pht_ways: int = 16,
    ) -> None:
        super().__init__()
        if region_bytes % line_bytes:
            raise ValueError("region size must be a multiple of the line size")
        self.region_bytes = region_bytes
        self.line_bytes = line_bytes
        self.lines_per_region = region_bytes // line_bytes
        self._region_shift = (self.lines_per_region).bit_length() - 1
        self.agt_entries = agt_entries
        self.pht_sets = pht_entries // pht_ways
        self.pht_ways = pht_ways
        # Active generations: region_id -> (trigger_key, pattern_bits).
        self._agt: OrderedDict[int, tuple[int, int]] = OrderedDict()
        # PHT: per set, LRU dict trigger_key -> (pattern_bits, stamp).
        self._pht: list[dict[int, tuple[int, int]]] = [dict() for _ in range(self.pht_sets)]
        self._stamp = 0

    # ------------------------------------------------------------------
    def observe_access(self, access: Access, line: int, epoch_index: int) -> list[PrefetchRequest]:
        """Train on every L2 access (the L1-miss stream)."""
        if access.kind is not AccessKind.LOAD:
            return []
        region = line >> self._region_shift
        offset = line & (self.lines_per_region - 1)
        live = self._agt.get(region)
        if live is not None:
            key, pattern = live
            self._agt[region] = (key, pattern | (1 << offset))
            self._agt.move_to_end(region)
            return []
        # First access to the region: a new generation begins.
        trigger_key = (access.pc << self._region_shift) | offset
        if len(self._agt) >= self.agt_entries:
            self._end_generation(*self._agt.popitem(last=False))
        self._agt[region] = (trigger_key, 1 << offset)
        # Probe the PHT with the trigger and stream the learned pattern.
        pattern = self._pht_lookup(trigger_key)
        if pattern is None:
            return []
        requests = []
        region_base_line = region << self._region_shift
        for bit in range(self.lines_per_region):
            if bit == offset or not (pattern >> bit) & 1:
                continue
            requests.append(
                self.make_request(region_base_line + bit, epochs_until_ready=1)
            )
        return requests

    # ------------------------------------------------------------------
    def _end_generation(self, region: int, state: tuple[int, int]) -> None:
        key, pattern = state
        bucket = self._pht[_mix(key) % self.pht_sets]
        self._stamp += 1
        if key not in bucket and len(bucket) >= self.pht_ways:
            victim = min(bucket, key=lambda k: bucket[k][1])
            del bucket[victim]
        bucket[key] = (pattern, self._stamp)

    def _pht_lookup(self, key: int) -> int | None:
        bucket = self._pht[_mix(key) % self.pht_sets]
        hit = bucket.get(key)
        if hit is None:
            return None
        self._stamp += 1
        bucket[key] = (hit[0], self._stamp)
        return hit[0]

    def flush_generations(self) -> None:
        """End all live generations (used by tests)."""
        while self._agt:
            self._end_generation(*self._agt.popitem(last=False))

    # ------------------------------------------------------------------
    @property
    def onchip_storage_bytes(self) -> int:
        # 4 B pattern + ~4 B compressed tag per PHT entry (the paper's
        # 128 KB estimate), plus the small AGT.
        return self.pht_sets * self.pht_ways * 8 + self.agt_entries * 12
