"""Baseline prefetchers evaluated against EBCP (paper Section 5.3)."""

from .base import Prefetcher, TrafficMeter
from .ghb import GHBPrefetcher, make_ghb_large, make_ghb_small
from .none import NoPrefetcher
from .registry import PREFETCHERS, build_prefetcher
from .sms import SpatialMemoryStreaming
from .solihin import SolihinPrefetcher, make_solihin_3_2, make_solihin_6_1
from .stream import StreamPrefetcher
from .tcp import TagCorrelatingPrefetcher, make_tcp_large, make_tcp_small

__all__ = [
    "GHBPrefetcher",
    "NoPrefetcher",
    "PREFETCHERS",
    "Prefetcher",
    "SolihinPrefetcher",
    "SpatialMemoryStreaming",
    "StreamPrefetcher",
    "TagCorrelatingPrefetcher",
    "TrafficMeter",
    "build_prefetcher",
    "make_ghb_large",
    "make_ghb_small",
    "make_solihin_3_2",
    "make_solihin_6_1",
    "make_tcp_large",
    "make_tcp_small",
]
