"""Command-line interface: ``python -m repro`` / ``repro-ebcp``.

Subcommands
-----------
``experiments``      list the available experiments
``run <experiment>`` regenerate one paper table/figure and print it
``workloads``        summarise the synthetic workload traces
``simulate``         run one (workload, prefetcher) pair and print metrics
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from .analysis.reporting import banner, format_table
from .engine.config import ProcessorConfig
from .engine.simulator import EpochSimulator
from .experiments import EXPERIMENTS
from .prefetchers.registry import PREFETCHERS, build_prefetcher
from .workloads.registry import COMMERCIAL_WORKLOADS, WORKLOADS, make_workload

__all__ = ["main"]


def _cmd_experiments(_: argparse.Namespace) -> int:
    print("Available experiments (paper tables/figures):")
    for name in EXPERIMENTS:
        print(f"  {name}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    module = EXPERIMENTS.get(args.experiment)
    if module is None:
        print(f"unknown experiment '{args.experiment}'", file=sys.stderr)
        return 2
    started = time.time()
    result = module.run(records=args.records, seed=args.seed)
    print(banner(f"{args.experiment} ({args.records} records, seed {args.seed})"))
    print(result.render())
    print(f"\n[{time.time() - started:.1f} s]")
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    rows = []
    for name in COMMERCIAL_WORKLOADS:
        trace = make_workload(name, records=args.records, seed=args.seed)
        counts = trace.kind_counts()
        rows.append(
            [
                name,
                len(trace),
                trace.instructions,
                trace.unique_lines(),
                counts[min(counts)],  # ifetch count (AccessKind.IFETCH == 0)
                f"{trace.meta.cpi_perf:.2f}",
            ]
        )
    print(
        format_table(
            ["workload", "records", "instructions", "unique lines", "ifetches", "cpi_perf"],
            rows,
            title="Synthetic commercial workloads",
        )
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    trace = make_workload(args.workload, records=args.records, seed=args.seed)
    config = ProcessorConfig.scaled()
    kwargs = {"cpi_perf": trace.meta.cpi_perf, "overlap": trace.meta.overlap}
    baseline = EpochSimulator(config, None, **kwargs).run(trace)
    if args.prefetcher == "none":
        sim = EpochSimulator(config, None, **kwargs)
        result = sim.run(trace)
    else:
        sim = EpochSimulator(config, build_prefetcher(args.prefetcher), **kwargs)
        result = sim.run(trace)
    print(banner(f"{args.workload} / {args.prefetcher}"))
    for key, value in result.to_dict().items():
        print(f"  {key:26s} {value}")
    if args.prefetcher != "none":
        print(f"  {'improvement':26s} {result.improvement_over(baseline) * 100:+.1f} %")
    if args.diagnose:
        from .analysis.diagnostics import render_diagnostics

        print()
        print(render_diagnostics(result, sim.bandwidth))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ebcp",
        description="Epoch-Based Correlation Prefetching (MICRO 2007) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list available experiments").set_defaults(
        func=_cmd_experiments
    )

    p_run = sub.add_parser("run", help="regenerate one paper table/figure")
    p_run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    p_run.add_argument("--records", type=int, default=280_000)
    p_run.add_argument("--seed", type=int, default=7)
    p_run.set_defaults(func=_cmd_run)

    p_wl = sub.add_parser("workloads", help="summarise the synthetic workloads")
    p_wl.add_argument("--records", type=int, default=280_000)
    p_wl.add_argument("--seed", type=int, default=7)
    p_wl.set_defaults(func=_cmd_workloads)

    p_sim = sub.add_parser("simulate", help="run one workload/prefetcher pair")
    p_sim.add_argument("workload", choices=sorted(WORKLOADS))
    p_sim.add_argument("prefetcher", choices=sorted(PREFETCHERS))
    p_sim.add_argument("--records", type=int, default=280_000)
    p_sim.add_argument("--seed", type=int, default=7)
    p_sim.add_argument(
        "--diagnose",
        action="store_true",
        help="print the full diagnostic breakdown (termination census, "
        "miss mix, prefetch lifecycle, bus traffic)",
    )
    p_sim.set_defaults(func=_cmd_simulate)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
