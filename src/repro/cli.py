"""Command-line interface: ``python -m repro`` / ``repro-ebcp``.

Subcommands
-----------
``experiments``      list the available experiments
``run <experiment>`` regenerate one paper table/figure and print it
``workloads``        summarise the synthetic workload traces
``simulate``         run one (workload, prefetcher) pair and print metrics
``trace``            run one pair with the observability bus attached and
                     export a Chrome trace-event epoch timeline (open in
                     ui.perfetto.dev), plus optional JSONL / manifest /
                     metrics files
``serve``            run the resident simulation service (async TCP,
                     micro-batching, result cache; drains on SIGTERM);
                     ``--workers N`` shards it over N worker processes
                     behind a consistent-hash front-end, ``--cache-dir``
                     adds the restart-surviving disk cache tier, and
                     ``--prewarm`` pre-generates traces per shard;
                     ``--metrics-out`` / ``--trace-out`` dump the merged
                     registry and the request-span trace on shutdown
``call``             send one request to a running service: a simulate
                     round-trip, or ``--ping`` / ``--stats`` /
                     ``--metrics`` / ``--telemetry`` / ``--shutdown``;
                     ``--traced`` wraps the call in a client span
                     (``--trace-out`` exports it as a Chrome trace);
                     against a sharded service the serving shard's
                     index/pid is printed
``top``              live refreshing terminal view of a running service
                     (req/s, queue depth, batches, cache hit ratio,
                     latency quantiles, per-prefetcher epoch MLP; a
                     sharded service additionally gets per-shard rows
                     and the disk cache tier)
``sweep``            declarative sweep specs (``specs/*.toml``):
                     ``validate`` checks schema + expansion and prints
                     the job grid, ``run`` executes a spec locally
                     through the parallel runner, ``submit`` streams it
                     through a running service (protocol v4) with
                     per-job results arriving as they settle.  The
                     spec's ``[execution]`` block supplies execution
                     defaults; explicit CLI flags override it.

Global flags ``-v``/``-q`` raise/lower the stdlib-logging verbosity of
the ``repro`` logger (repeatable: ``-vv`` for debug); ``--version``
prints the package version.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Sequence

from . import __version__
from .analysis.reporting import banner, format_table
from .engine.config import ProcessorConfig
from .engine.simulator import EpochSimulator
from .experiments import EXPERIMENTS
from .obs import (
    ChromeTraceExporter,
    EventBus,
    JsonlTraceWriter,
    MetricsRegistry,
    RunManifest,
    SimulationMetrics,
    configure_logging,
)
from .prefetchers.registry import PREFETCHERS, build_prefetcher
from .workloads.registry import COMMERCIAL_WORKLOADS, WORKLOADS, make_workload

__all__ = ["main"]


def _write_json(path: str, payload: dict) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _cmd_experiments(_: argparse.Namespace) -> int:
    print("Available experiments (paper tables/figures):")
    for name in EXPERIMENTS:
        print(f"  {name}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment '{args.experiment}'", file=sys.stderr)
        return 2
    # Straight to the spec-driven path: the committed specs/*.toml file
    # is the experiment definition; the imperative module.run() entry
    # points are deprecated shims over the same call.
    from .experiments.from_spec import run_experiment

    started = time.time()
    result = run_experiment(
        args.experiment, records=args.records, seed=args.seed,
        policy=_policy_from_args(args),
    )
    print(banner(f"{args.experiment} ({args.records} records, seed {args.seed})"))
    print(result.render())
    print(f"\n[{time.time() - started:.1f} s]")
    if args.metrics_out:
        payload = result.to_dict()
        payload["records"] = args.records
        payload["seed"] = args.seed
        _write_json(args.metrics_out, payload)
        print(f"metrics written to {args.metrics_out}")
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    rows = []
    for name in COMMERCIAL_WORKLOADS:
        trace = make_workload(name, records=args.records, seed=args.seed)
        counts = trace.kind_counts()
        rows.append(
            [
                name,
                len(trace),
                trace.instructions,
                trace.unique_lines(),
                counts[min(counts)],  # ifetch count (AccessKind.IFETCH == 0)
                f"{trace.meta.cpi_perf:.2f}",
            ]
        )
    print(
        format_table(
            ["workload", "records", "instructions", "unique lines", "ifetches", "cpi_perf"],
            rows,
            title="Synthetic commercial workloads",
        )
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .parallel import JobSpec, run_jobs

    config = ProcessorConfig.scaled()
    registry = None
    policy = _policy_from_args(args)
    # The baseline and the candidate are independent runs; fan them out
    # unless the user asked for in-process introspection (--metrics-out
    # attaches an event bus, --diagnose needs the simulator object).
    if (
        policy.resolved_jobs() > 1
        and not args.metrics_out
        and not args.diagnose
        and args.prefetcher != "none"
    ):
        specs = [
            JobSpec(args.workload, args.records, args.seed, config, None, "baseline"),
            JobSpec(
                args.workload,
                args.records,
                args.seed,
                config,
                build_prefetcher(args.prefetcher),
                args.prefetcher,
            ),
        ]
        baseline, result = run_jobs(specs, policy=policy)
    else:
        trace = make_workload(args.workload, records=args.records, seed=args.seed)
        kwargs = {"cpi_perf": trace.meta.cpi_perf, "overlap": trace.meta.overlap}
        baseline = EpochSimulator(config, None, **kwargs).run(trace)
        bus = None
        if args.metrics_out:
            bus = EventBus()
            registry = MetricsRegistry()
            SimulationMetrics(bus, registry)
        if args.prefetcher == "none":
            sim = EpochSimulator(config, None, bus=bus, **kwargs)
            result = sim.run(trace)
        else:
            sim = EpochSimulator(config, build_prefetcher(args.prefetcher), bus=bus, **kwargs)
            result = sim.run(trace)
    print(banner(f"{args.workload} / {args.prefetcher}"))
    for key, value in result.to_dict().items():
        print(f"  {key:26s} {value}")
    if args.prefetcher != "none":
        print(f"  {'improvement':26s} {result.improvement_over(baseline) * 100:+.1f} %")
    if args.diagnose:
        from .analysis.diagnostics import render_diagnostics

        print()
        print(render_diagnostics(result, sim.bandwidth))
    if registry is not None:
        _write_json(args.metrics_out, registry.to_dict())
        print(f"\nmetrics written to {args.metrics_out}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run one pair fully observed and export the epoch timeline."""
    bus = EventBus()
    manifest = RunManifest(args.workload, args.prefetcher, args.records, args.seed)
    manifest.count_events(bus)
    exporter = ChromeTraceExporter(bus)
    registry = None
    if args.metrics_out:
        registry = MetricsRegistry()
        SimulationMetrics(bus, registry)
    jsonl = JsonlTraceWriter(args.jsonl, bus) if args.jsonl else None

    with manifest.phase("workload"):
        trace = make_workload(args.workload, records=args.records, seed=args.seed)
    prefetcher = None if args.prefetcher == "none" else build_prefetcher(args.prefetcher)
    sim = EpochSimulator(
        ProcessorConfig.scaled(),
        prefetcher,
        cpi_perf=trace.meta.cpi_perf,
        overlap=trace.meta.overlap,
        bus=bus,
    )
    with manifest.phase("simulate"):
        result = sim.run(trace, warmup_records=args.warmup)
    if jsonl is not None:
        jsonl.close()

    manifest.config_summary = dict(result.config_summary)
    manifest.record_result(result.to_dict())
    with manifest.phase("export"):
        out = exporter.write(args.out)
        if args.manifest:
            manifest.write(args.manifest)
        if registry is not None:
            _write_json(args.metrics_out, registry.to_dict())

    epochs = manifest.event_counts.get("EpochClosed", 0)
    print(f"traced {args.workload}/{args.prefetcher}: {epochs} epochs, "
          f"{sum(manifest.event_counts.values())} events")
    print(f"chrome trace: {out} ({len(exporter.trace_events)} trace events) "
          f"-- open in ui.perfetto.dev")
    if jsonl is not None:
        print(f"jsonl trace:  {args.jsonl} ({jsonl.events_written} events)")
    if args.manifest:
        print(f"manifest:     {args.manifest}")
    if registry is not None:
        print(f"metrics:      {args.metrics_out}")
    return 0


def _parse_prewarm(specs: "list[str] | None") -> "tuple[tuple[str, int, int], ...]":
    """Parse ``--prewarm WORKLOAD[:RECORDS[:SEED]]`` occurrences."""
    parsed = []
    for spec in specs or ():
        parts = spec.split(":")
        if len(parts) > 3 or not parts[0]:
            raise SystemExit(f"bad --prewarm spec '{spec}' (WORKLOAD[:RECORDS[:SEED]])")
        if parts[0] not in WORKLOADS:
            raise SystemExit(f"bad --prewarm spec '{spec}': unknown workload '{parts[0]}'")
        try:
            records = int(parts[1]) if len(parts) > 1 else 280_000
            seed = int(parts[2]) if len(parts) > 2 else 7
        except ValueError:
            raise SystemExit(f"bad --prewarm spec '{spec}' (WORKLOAD[:RECORDS[:SEED]])")
        parsed.append((parts[0], records, seed))
    return tuple(parsed)


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the resident simulation service until it drains."""
    import asyncio

    from .service import ServiceConfig, serve

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        queue_size=args.queue_size,
        max_batch=args.max_batch,
        batch_window_s=args.batch_window_ms / 1000.0,
        cache_entries=args.cache_entries,
        cache_dir=args.cache_dir,
        max_disk_entries=args.max_disk_entries,
        prewarm=_parse_prewarm(args.prewarm),
        worker_metrics=not args.no_worker_metrics,
    )
    return asyncio.run(
        serve(
            config,
            _policy_from_args(args),
            metrics_out=args.metrics_out,
            trace_out=args.trace_out,
            workers=args.workers,
            heartbeat_s=args.heartbeat_s,
            max_restarts=args.max_restarts,
        )
    )


def _cmd_call(args: argparse.Namespace) -> int:
    """One request against a running service (the smoke-test verb)."""
    from .obs import SpanRecorder, write_chrome_trace
    from .service import ServiceClient, ServiceError

    recorder = SpanRecorder("client") if (args.traced or args.trace_out) else None
    client = ServiceClient(
        host=args.host,
        port=args.port,
        timeout_s=args.timeout if args.timeout is not None else 30.0,
        retries=args.retries if args.retries is not None else 1,
        backoff_s=args.backoff if args.backoff is not None else 0.25,
        recorder=recorder,
    )
    try:
        with client:
            if args.ping:
                payload = client.ping()
                print(json.dumps(payload, indent=2, sort_keys=True))
                return 0
            if args.stats:
                print(json.dumps(client.stats(), indent=2, sort_keys=True))
                return 0
            if args.metrics:
                print(client.metrics(), end="")
                return 0
            if args.telemetry:
                payload = client.telemetry()
                spans = payload.get("spans", [])
                print(json.dumps(payload, indent=2, sort_keys=True))
                print(f"# {len(spans)} spans from pid {payload.get('pid')}",
                      file=sys.stderr)
                return 0
            if args.resize is not None:
                report = client.resize(args.resize)
                print(json.dumps(report, indent=2, sort_keys=True))
                print(
                    f"# fleet resized {report.get('previous_workers')} -> "
                    f"{report.get('workers')} workers"
                    f" (added {list(report.get('added', []))},"
                    f" removed {list(report.get('removed', []))})",
                    file=sys.stderr,
                )
                return 0
            if args.shutdown:
                print(json.dumps(client.shutdown(), indent=2, sort_keys=True))
                return 0
            if not args.workload or not args.prefetcher:
                print(
                    "call requires WORKLOAD and PREFETCHER (or one of "
                    "--ping/--stats/--metrics/--telemetry/--resize/"
                    "--shutdown)",
                    file=sys.stderr,
                )
                return 2
            served = client.simulate(
                args.workload,
                args.prefetcher,
                records=args.records,
                seed=args.seed,
                use_cache=not args.no_cache,
            )
            merged = None
            if args.metrics_out:
                # The server's view: its own instruments plus the worker
                # registries it merged — the same snapshot `serve
                # --metrics-out` dumps on shutdown.
                stats = client.stats()
                merged = dict(stats.get("metrics", {}))
                merged.update(stats.get("simulation", {}))
    except ServiceError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(
            f"cannot reach service at {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 1
    # Same rendering as `simulate`, so served and local runs diff cleanly.
    print(banner(f"{args.workload} / {args.prefetcher} (served)"))
    for key, value in served.result.to_dict().items():
        print(f"  {key:26s} {value}")
    print(f"  {'cached':26s} {served.cached}")
    print(f"  {'server_elapsed_ms':26s} {served.elapsed_ms:.1f}")
    if served.shard is not None:
        print(
            f"  {'shard':26s} {served.shard.get('index')} "
            f"(pid {served.shard.get('pid')})"
        )
    if recorder is not None and recorder.spans:
        print(f"  {'trace_id':26s} {recorder.spans[0]['trace_id']}")
    if merged is not None:
        _write_json(args.metrics_out, merged)
        print(f"merged metrics written to {args.metrics_out}")
    if args.trace_out and recorder is not None:
        write_chrome_trace(recorder.spans, args.trace_out)
        print(f"client trace written to {args.trace_out}")
    return 0


def _render_top(stats: dict, req_per_s: float) -> str:
    """One frame of the live service view, from a ``stats`` payload."""
    lines = [banner("repro-ebcp top")]
    queue = stats.get("queue", {})
    cache = stats.get("cache", {})
    pool = stats.get("pool", {})
    latency = stats.get("latency_ms", {})
    metrics = stats.get("metrics", {})
    received = metrics.get("requests_received", {}).get("value", 0)
    completed = metrics.get("requests_completed", {}).get("value", 0)
    failed = metrics.get("requests_failed", {}).get("value", 0)
    hits = cache.get("hits", 0)
    misses = cache.get("misses", 0)
    lookups = hits + misses
    hit_ratio = (hits / lookups) if lookups else 0.0
    batch = metrics.get("batch_size", {})
    lines.append(
        f"  uptime {stats.get('uptime_s', 0.0):8.1f} s"
        f"    requests {received} ({req_per_s:.1f}/s)"
        f"    ok {completed}  failed {failed}"
        f"    {'DRAINING' if stats.get('draining') else 'serving'}"
    )
    lines.append(
        f"  queue {queue.get('depth', 0)}/{queue.get('limit', 0)}"
        f"    pool {pool.get('workers', 0)}w gen{pool.get('generation', 0)}"
        f"    batch mean {batch.get('mean', 0.0):.1f} max {batch.get('max', 0)}"
    )
    lines.append(
        f"  cache {cache.get('entries', 0)} entries"
        f"    hit ratio {hit_ratio * 100:5.1f} % ({hits}/{lookups})"
    )
    disk = cache.get("disk")
    if disk:
        lines.append(
            f"  disk tier {disk.get('entries', 0)} entries"
            f"    hits {disk.get('hits', 0)}"
            f"    spilled {disk.get('spilled', 0)}"
            f"    quarantined {disk.get('quarantined', 0)}"
        )
    lines.append(
        f"  latency p50 {latency.get('p50', 0.0):8.1f} ms"
        f"    p90 {latency.get('p90', 0.0):8.1f} ms"
        f"    p99 {latency.get('p99', 0.0):8.1f} ms"
        f"    n={latency.get('count', 0)}"
    )
    if stats.get("sharded"):
        lines.append(
            f"  shards ({stats.get('workers', 0)} workers, consistent-hash routed):"
        )
        lines.append(
            f"    {'shard':>5s} {'pid':>8s} {'state':>10s} {'up s':>7s}"
            f" {'rst':>3s} {'requests':>9s} {'routed':>7s}"
            f" {'cache hit%':>10s} {'queue':>6s} {'p50 ms':>9s}"
        )
        for shard in stats.get("shards", []):
            if shard.get("unreachable"):
                lines.append(
                    f"    {shard.get('index', '?'):>5} {'-':>8s}"
                    f" {shard.get('state', 'unreachable'):>10s} {'-':>7s}"
                    f" {shard.get('restarts', 0):>3d} UNREACHABLE"
                )
                continue
            shard_cache = shard.get("cache", {})
            shard_hits = shard_cache.get("hits", 0)
            shard_lookups = shard_hits + shard_cache.get("misses", 0)
            shard_ratio = (shard_hits / shard_lookups * 100) if shard_lookups else 0.0
            lines.append(
                f"    {shard.get('index', 0):>5d} {shard.get('pid', 0):>8d}"
                f" {shard.get('state', 'ready'):>10s}"
                f" {shard.get('uptime_s', 0.0):>7.1f}"
                f" {shard.get('restarts', 0):>3d}"
                f" {shard.get('requests', 0):>9d} {shard.get('routed', 0):>7d}"
                f" {shard_ratio:>9.1f}%"
                f" {shard.get('queue', {}).get('depth', 0):>6d}"
                f" {shard.get('latency_ms', {}).get('p50', 0.0):>9.1f}"
            )
    sim_metrics = stats.get("simulation", {})
    fallbacks = sum(
        payload.get("value", 0)
        for name, payload in sim_metrics.items()
        if name.endswith(".kernel_fallbacks") or name == "kernel_fallbacks"
    )
    if fallbacks:
        causes = sorted(
            (name.rsplit("kernel_fallbacks.", 1)[1], payload.get("value", 0))
            for name, payload in sim_metrics.items()
            if "kernel_fallbacks." in name
        )
        detail = ", ".join(f"{cause} {count}" for cause, count in causes)
        lines.append(
            f"  kernel fallbacks {fallbacks}" + (f"  ({detail})" if detail else "")
        )
    mlp_rows = [
        (name[: -len(".epoch_mlp")], payload)
        for name, payload in sorted(stats.get("simulation", {}).items())
        if name.endswith(".epoch_mlp") and payload.get("type") == "histogram"
    ]
    if mlp_rows:
        lines.append("  epoch MLP by prefetcher:")
        for label, payload in mlp_rows:
            lines.append(
                f"    {label:16s} mean {payload.get('mean', 0.0):5.2f}"
                f"  max {payload.get('max', 0.0):5.1f}"
                f"  epochs {payload.get('total', 0)}"
            )
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    """Poll ``stats`` and render a live refreshing terminal view."""
    from .service import ServiceClient, ServiceError

    client = ServiceClient(
        host=args.host, port=args.port, timeout_s=args.timeout or 10.0, retries=0
    )
    previous_received: float | None = None
    previous_at = time.monotonic()
    iterations = 0
    try:
        with client:
            while True:
                try:
                    stats = client.stats()
                except (ServiceError, OSError) as exc:
                    print(f"cannot poll service at {args.host}:{args.port}: {exc}",
                          file=sys.stderr)
                    return 1
                now = time.monotonic()
                received = stats.get("metrics", {}).get(
                    "requests_received", {}
                ).get("value", 0)
                req_per_s = 0.0
                if previous_received is not None and now > previous_at:
                    req_per_s = max(0.0, received - previous_received) / (
                        now - previous_at
                    )
                previous_received, previous_at = received, now
                frame = _render_top(stats, req_per_s)
                if not args.no_clear:
                    # ANSI clear + home keeps the view in place like top(1).
                    print("\x1b[2J\x1b[H", end="")
                print(frame, flush=True)
                iterations += 1
                if args.iterations and iterations >= args.iterations:
                    return 0
                time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _render_sweep(result) -> str:
    """The per-job table both sweep execution verbs print."""
    summary = result.summary()
    streamed = result.shards is not None
    headers = ["#", "kind", "workload", "config", "prefetcher", "thr", "cpi"]
    headers.append("improvement")
    if streamed:
        headers += ["cached", "shard"]
    rows = []
    for row in summary["points"]:
        cells = [
            row["index"],
            row["kind"],
            row["workload"],
            row["config"],
            row["label"],
            row["n_threads"] or "-",
            f"{row['cpi']:.4f}",
            f"{row['improvement'] * 100:+.1f} %" if "improvement" in row else "-",
        ]
        if streamed:
            shard = row.get("shard") or {}
            cells.append("hit" if row.get("cached") else "miss")
            cells.append(shard.get("index", "-"))
        rows.append(cells)
    title = (
        f"sweep '{summary['name']}' -- {summary['jobs']} jobs "
        f"({summary['baselines']} baselines), "
        f"fingerprint {summary['fingerprint'][:12]}"
    )
    return format_table(headers, rows, title=title)


def _cmd_sweep_validate(args: argparse.Namespace) -> int:
    """Parse + expand each spec; exit non-zero if any is invalid."""
    from .spec import SpecError, expand, load_spec

    failures = 0
    for path in args.spec:
        try:
            spec = load_spec(path)
            plan = expand(spec)
        except SpecError as exc:
            print(f"{path}: INVALID -- {exc}", file=sys.stderr)
            failures += 1
            continue
        except OSError as exc:
            print(f"{path}: unreadable -- {exc}", file=sys.stderr)
            failures += 1
            continue
        print(
            f"{path}: ok -- '{spec.name}' v{spec.version}, "
            f"{len(plan.jobs)} jobs ({plan.n_baselines} baselines after "
            f"dedup), fingerprint {spec.fingerprint()[:12]}"
        )
        if args.print_plan:
            for meta in plan.meta:
                print(
                    f"  [{meta.index:3d}] {meta.kind:9s} {meta.workload:14s}"
                    f" cfg={meta.config_label} pf={meta.label}"
                    f" records={meta.records} seed={meta.seed}"
                    + (f" threads={meta.n_threads}" if meta.n_threads else "")
                )
    return 1 if failures else 0


def _cmd_sweep_run(args: argparse.Namespace) -> int:
    """Expand a spec and execute it locally through the parallel runner."""
    from .spec import SpecError, load_spec, run_spec

    try:
        spec = load_spec(args.spec)
    except (SpecError, OSError) as exc:
        print(f"{args.spec}: {exc}", file=sys.stderr)
        return 2
    if args.no_kernel and spec.execution.kernel:
        # The spec pins the kernel on; the explicit flag still wins.
        import dataclasses

        spec = spec.replace(
            execution=dataclasses.replace(spec.execution, kernel=False)
        )
    policy = _policy_from_args(args, execution=spec.execution)
    started = time.time()
    result = run_spec(spec, policy=policy)
    print(_render_sweep(result))
    print(f"\n[{time.time() - started:.1f} s]")
    if args.out:
        _write_json(args.out, result.summary())
        print(f"sweep summary written to {args.out}")
    return 0


def _cmd_sweep_submit(args: argparse.Namespace) -> int:
    """Submit a spec to a running service; results stream back per job."""
    from .service import ServiceError
    from .spec import SpecError, load_spec, submit_spec

    try:
        spec = load_spec(args.spec)
    except (SpecError, OSError) as exc:
        print(f"{args.spec}: {exc}", file=sys.stderr)
        return 2
    started = time.time()
    try:
        result = submit_spec(
            spec,
            host=args.host,
            port=args.port,
            use_cache=not args.no_cache,
            timeout_s=args.timeout if args.timeout is not None else 600.0,
            retries=args.retries if args.retries is not None else 1,
            backoff_s=args.backoff if args.backoff is not None else 0.25,
        )
    except ServiceError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(
            f"cannot reach service at {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 1
    print(_render_sweep(result))
    hits = sum(result.cached or ())
    shards = sorted(
        {s["index"] for s in (result.shards or ()) if s and "index" in s}
    )
    print(
        f"\n[{time.time() - started:.1f} s client"
        + (f", {result.elapsed_ms / 1000.0:.1f} s service" if result.elapsed_ms else "")
        + f"; {hits}/{len(result)} cache hits"
        + (f"; shards {shards}" if shards else "")
        + "]"
    )
    if args.out:
        _write_json(args.out, result.summary())
        print(f"sweep summary written to {args.out}")
    return 0


def _add_execution_flags(parser: argparse.ArgumentParser) -> None:
    """Flags that map one-to-one onto :class:`repro.resilience.ExecutionPolicy`."""
    group = parser.add_argument_group("execution policy")
    group.add_argument(
        "-j", "--jobs", type=int, default=None, metavar="N",
        help="worker processes for independent simulator runs (0 = all "
        "cores; default: $REPRO_JOBS or 1; results are bit-identical "
        "either way)",
    )
    group.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock budget; a pooled job exceeding it is "
        "killed and retried (default: no timeout)",
    )
    group.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retries per failed job attempt before the error propagates "
        "(default: spec [execution] block, else 1)",
    )
    group.add_argument(
        "--backoff", type=float, default=None, metavar="SECONDS",
        help="base delay before a retry, doubling per attempt "
        "(default: spec [execution] block, else 0.25)",
    )
    group.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="journal completed jobs under DIR so an interrupted run "
        "resumes from where it stopped (bit-identical results)",
    )


def _add_client_flags(
    parser: argparse.ArgumentParser, default_timeout: float = 30.0
) -> None:
    """Connection flags shared by every verb that talks to a service."""
    group = parser.add_argument_group("service connection")
    group.add_argument("--host", default="127.0.0.1")
    group.add_argument("--port", type=int, default=7421)
    group.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help=f"per-attempt client timeout (default: {default_timeout:g})",
    )
    group.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="transport/backpressure retries before giving up (default: 1)",
    )
    group.add_argument(
        "--backoff", type=float, default=None, metavar="SECONDS",
        help="base retry delay, doubling per attempt (default: 0.25)",
    )


def _policy_from_args(
    args: argparse.Namespace, execution: "object | None" = None
) -> "ExecutionPolicy":
    """Build the execution policy: explicit flag > spec block > default.

    ``execution`` is a spec's :class:`repro.spec.ExecutionSpec`; without
    one the built-in defaults stand in, so the merge is uniform across
    imperative and spec-driven subcommands.
    """
    from .resilience import ExecutionPolicy, FaultSpec
    from .spec.schema import ExecutionSpec

    base = execution if execution is not None else ExecutionSpec()

    def pick(flag, spec_value, fallback=None):
        if flag is not None:
            return flag
        return spec_value if spec_value is not None else fallback

    return ExecutionPolicy(
        jobs=pick(args.jobs, base.jobs),
        compressed=False if args.no_compressed else base.compressed,
        timeout_s=pick(args.timeout, base.timeout_s),
        retries=pick(args.retries, base.retries, 1),
        backoff_s=pick(args.backoff, base.backoff_s, 0.25),
        checkpoint_dir=pick(args.checkpoint_dir, base.checkpoint_dir),
        fault_spec=FaultSpec.from_env(),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ebcp",
        description="Epoch-Based Correlation Prefetching (MICRO 2007) reproduction",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}",
        help="print the package version and exit",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="increase logging verbosity (-v info, -vv debug)",
    )
    parser.add_argument(
        "-q", "--quiet", action="count", default=0,
        help="decrease logging verbosity (errors only)",
    )
    parser.add_argument(
        "--no-compressed", action="store_true",
        help="disable compressed execution over precomputed L1 filter "
        "planes and walk every trace record (bit-identical, slower; "
        "equivalent to REPRO_COMPRESSED=0)",
    )
    parser.add_argument(
        "--no-kernel", action="store_true",
        help="disable the epoch-batched EBCP execution kernel and use the "
        "scalar reference path (bit-identical, slower; equivalent to "
        "REPRO_KERNEL=off)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list available experiments").set_defaults(
        func=_cmd_experiments
    )

    p_run = sub.add_parser("run", help="regenerate one paper table/figure")
    p_run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    p_run.add_argument("--records", type=int, default=280_000)
    p_run.add_argument("--seed", type=int, default=7)
    p_run.add_argument(
        "--metrics-out", metavar="PATH",
        help="also write the table/figure data as machine-readable JSON",
    )
    _add_execution_flags(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_wl = sub.add_parser("workloads", help="summarise the synthetic workloads")
    p_wl.add_argument("--records", type=int, default=280_000)
    p_wl.add_argument("--seed", type=int, default=7)
    p_wl.set_defaults(func=_cmd_workloads)

    p_sim = sub.add_parser("simulate", help="run one workload/prefetcher pair")
    p_sim.add_argument("workload", choices=sorted(WORKLOADS))
    p_sim.add_argument("prefetcher", choices=sorted(PREFETCHERS))
    p_sim.add_argument("--records", type=int, default=280_000)
    p_sim.add_argument("--seed", type=int, default=7)
    p_sim.add_argument(
        "--diagnose",
        action="store_true",
        help="print the full diagnostic breakdown (termination census, "
        "miss mix, prefetch lifecycle, bus traffic)",
    )
    p_sim.add_argument(
        "--metrics-out", metavar="PATH",
        help="collect a metrics registry (histograms, counters) over the "
        "run and write it as JSON",
    )
    _add_execution_flags(p_sim)
    p_sim.set_defaults(func=_cmd_simulate)

    p_tr = sub.add_parser(
        "trace",
        help="run one pair with observability on and export the epoch timeline",
    )
    p_tr.add_argument("workload", choices=sorted(WORKLOADS))
    p_tr.add_argument("prefetcher", choices=sorted(PREFETCHERS))
    p_tr.add_argument(
        "--out", metavar="PATH", default="trace.json",
        help="Chrome trace-event JSON output (default: trace.json)",
    )
    p_tr.add_argument(
        "--jsonl", metavar="PATH",
        help="also stream every event to a JSONL file",
    )
    p_tr.add_argument(
        "--manifest", metavar="PATH",
        help="also write a per-run manifest (config, result, event counts, "
        "wall time per phase)",
    )
    p_tr.add_argument(
        "--metrics-out", metavar="PATH",
        help="also write the metrics registry as JSON",
    )
    p_tr.add_argument("--records", type=int, default=50_000)
    p_tr.add_argument("--seed", type=int, default=7)
    p_tr.add_argument(
        "--warmup", type=int, default=0,
        help="warm-up records excluded from measured stats; the trace "
        "itself covers the whole run (default: 0, so event counts match "
        "the reported stats)",
    )
    _add_execution_flags(p_tr)  # single observed run; accepted for interface parity
    p_tr.set_defaults(func=_cmd_trace)

    p_srv = sub.add_parser(
        "serve",
        help="run the resident simulation service (drains on SIGTERM)",
    )
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=7421,
                       help="TCP port (0 = ephemeral; default: 7421)")
    p_srv.add_argument(
        "--queue-size", type=int, default=64, metavar="N",
        help="request-queue capacity; a full queue answers queue_full "
        "instead of buffering (default: 64)",
    )
    p_srv.add_argument(
        "--max-batch", type=int, default=8, metavar="N",
        help="most simulate requests dispatched as one executor batch "
        "(default: 8)",
    )
    p_srv.add_argument(
        "--batch-window-ms", type=float, default=5.0, metavar="MS",
        help="how long the dispatcher waits for a micro-batch to fill "
        "(default: 5 ms)",
    )
    p_srv.add_argument(
        "--cache-entries", type=int, default=256, metavar="N",
        help="result-cache capacity; 0 disables caching (default: 256)",
    )
    p_srv.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="shard the service over N worker processes behind a "
        "consistent-hash front-end; each shard owns its own queue, "
        "micro-batcher, pool and result cache (default: 1 = single "
        "process, no front-end)",
    )
    p_srv.add_argument(
        "--heartbeat-s", type=float, default=2.0, metavar="SECONDS",
        help="sharded only: seconds between supervisor health probes of "
        "each shard; 0 disables supervision (default: 2.0)",
    )
    p_srv.add_argument(
        "--max-restarts", type=int, default=5, metavar="N",
        help="sharded only: how many times the supervisor respawns a "
        "crashed shard before retiring it from the ring (default: 5)",
    )
    p_srv.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="spill result-cache entries to DIR as checksummed JSON so "
        "warm results survive restarts; shards share the directory "
        "(default: memory only)",
    )
    p_srv.add_argument(
        "--max-disk-entries", type=int, default=4096, metavar="N",
        help="disk-tier capacity before oldest entries are pruned "
        "(default: 4096)",
    )
    p_srv.add_argument(
        "--prewarm", action="append", metavar="WORKLOAD[:RECORDS[:SEED]]",
        help="pre-generate this trace (and its filter planes) before "
        "reporting ready; repeatable; sharded serves partition the list "
        "by routing shard (e.g. --prewarm tpcw:50000:7)",
    )
    p_srv.add_argument(
        "--metrics-out", metavar="PATH",
        help="write the merged registry (service + aggregated worker "
        "metrics) as JSON when the service drains",
    )
    p_srv.add_argument(
        "--trace-out", metavar="PATH",
        help="write every request span the service recorded (including "
        "worker-side spans) as a Chrome trace on shutdown",
    )
    p_srv.add_argument(
        "--no-worker-metrics", action="store_true",
        help="skip per-job worker metric collection (smaller job results, "
        "no per-prefetcher aggregates)",
    )
    _add_execution_flags(p_srv)
    p_srv.set_defaults(func=_cmd_serve)

    p_call = sub.add_parser(
        "call",
        help="send one request to a running service",
    )
    p_call.add_argument("workload", nargs="?", choices=sorted(WORKLOADS))
    p_call.add_argument("prefetcher", nargs="?", choices=sorted(PREFETCHERS))
    _add_client_flags(p_call)
    p_call.add_argument("--records", type=int, default=280_000)
    p_call.add_argument("--seed", type=int, default=7)
    p_call.add_argument(
        "--no-cache", action="store_true",
        help="bypass the service's result cache for this request",
    )
    p_call.add_argument(
        "--traced", action="store_true",
        help="wrap the call in a client span and send its trace context, "
        "so server/worker spans join the client's trace",
    )
    p_call.add_argument(
        "--trace-out", metavar="PATH",
        help="write the client-side spans as a Chrome trace (implies "
        "--traced)",
    )
    p_call.add_argument(
        "--metrics-out", metavar="PATH",
        help="after the call, fetch the service's merged registry "
        "(service + aggregated worker metrics) and write it as JSON",
    )
    group = p_call.add_mutually_exclusive_group()
    group.add_argument("--ping", action="store_true",
                       help="liveness/version check instead of a simulation")
    group.add_argument("--stats", action="store_true",
                       help="fetch the service metrics snapshot")
    group.add_argument("--metrics", action="store_true",
                       help="fetch the merged registry as Prometheus text")
    group.add_argument("--telemetry", action="store_true",
                       help="fetch the service's spans and metric registries "
                       "as JSON (a sharded service answers for the whole "
                       "fleet)")
    group.add_argument("--resize", type=int, metavar="N",
                       help="resize a sharded service to N worker shards "
                       "(grows warm from the disk tier; shrinks drain "
                       "in-flight work before retiring)")
    group.add_argument("--shutdown", action="store_true",
                       help="ask the service to drain and exit")
    p_call.set_defaults(func=_cmd_call)

    p_top = sub.add_parser(
        "top",
        help="live refreshing view of a running service (poll stats)",
    )
    p_top.add_argument("--host", default="127.0.0.1")
    p_top.add_argument("--port", type=int, default=7421)
    p_top.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="seconds between polls (default: 1.0)",
    )
    p_top.add_argument(
        "--iterations", type=int, default=0, metavar="N",
        help="stop after N frames (default: 0 = until interrupted)",
    )
    p_top.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of clearing the screen (logs, CI)",
    )
    p_top.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-poll client timeout (default: 10)",
    )
    p_top.set_defaults(func=_cmd_top)

    p_sweep = sub.add_parser(
        "sweep",
        help="validate / run / submit declarative sweep specs (specs/*.toml)",
    )
    sweep_sub = p_sweep.add_subparsers(dest="sweep_command", required=True)

    p_sv = sweep_sub.add_parser(
        "validate", help="check spec files parse, validate and expand"
    )
    p_sv.add_argument("spec", nargs="+", metavar="SPEC",
                      help="spec file (.toml or .json)")
    p_sv.add_argument(
        "--print-plan", action="store_true",
        help="also print every expanded job (index, kind, workload, "
        "config, prefetcher)",
    )
    p_sv.set_defaults(func=_cmd_sweep_validate)

    p_sr = sweep_sub.add_parser(
        "run",
        help="expand a spec and run it locally (bit-identical to the "
        "imperative runners)",
    )
    p_sr.add_argument("spec", metavar="SPEC", help="spec file (.toml or .json)")
    p_sr.add_argument(
        "--out", metavar="PATH",
        help="write the per-job sweep summary as JSON",
    )
    _add_execution_flags(p_sr)
    p_sr.set_defaults(func=_cmd_sweep_run)

    p_ss = sweep_sub.add_parser(
        "submit",
        help="submit a spec to a running service; per-job results stream "
        "back as they settle (a sharded service fans jobs out per shard)",
    )
    p_ss.add_argument("spec", metavar="SPEC", help="spec file (.toml or .json)")
    _add_client_flags(p_ss, default_timeout=600.0)
    p_ss.add_argument(
        "--no-cache", action="store_true",
        help="bypass the service's result cache for every job",
    )
    p_ss.add_argument(
        "--out", metavar="PATH",
        help="write the per-job sweep summary as JSON",
    )
    p_ss.set_defaults(func=_cmd_sweep_submit)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(args.verbose - args.quiet)
    if args.no_compressed:
        # The env var is the single switch every layer (simulator, job
        # specs, pool workers) already consults, so setting it here turns
        # the whole run — including forked workers — legacy.
        os.environ["REPRO_COMPRESSED"] = "0"
    if args.no_kernel:
        os.environ["REPRO_KERNEL"] = "off"
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
