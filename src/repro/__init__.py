"""repro — reproduction of "Low-Cost Epoch-Based Correlation Prefetching
for Commercial Applications" (Yuan Chou, MICRO 2007).

Public API tour
---------------
>>> from repro import make_workload, EpochSimulator, build_prefetcher, ProcessorConfig
>>> trace = make_workload("database", records=50_000)
>>> config = ProcessorConfig.scaled()
>>> base = EpochSimulator(config, prefetcher=None,
...                       cpi_perf=trace.meta.cpi_perf).run(trace)
>>> ebcp = EpochSimulator(config, build_prefetcher("ebcp"),
...                       cpi_perf=trace.meta.cpi_perf).run(trace)
>>> ebcp.improvement_over(base) > 0
True

Packages
--------
``repro.core``         the EBCP itself (EMAB, correlation table, control)
``repro.engine``       the epoch-model timing simulator
``repro.memory``       caches, MSHRs, prefetch buffer, DRAM, buses
``repro.prefetchers``  GHB PC/DC, TCP, stream, SMS, Solihin baselines
``repro.workloads``    synthetic commercial workload traces
``repro.analysis``     metrics, sweeps, report rendering
``repro.experiments``  one module per paper table/figure
``repro.obs``          event bus, metrics registry, trace exporters
``repro.parallel``     process-level fan-out of independent runs
``repro.resilience``   execution policy, retries, checkpoints, faults
``repro.service``      resident TCP simulation service + client SDK
``repro.api``          the one-stop stable facade over all of the above
"""

from .core import (
    EBCPConfig,
    EpochBasedCorrelationPrefetcher,
    make_ebcp,
    make_ebcp_minus,
    make_ebcp_onchip,
)
from .engine import (
    CacheConfig,
    EpochSimulator,
    ProcessorConfig,
    SCALE_FACTOR,
    SimulationResult,
    SimulationStats,
)
from .obs import EventBus, MetricsRegistry, SimulationMetrics
from .prefetchers import PREFETCHERS, Prefetcher, build_prefetcher
from .resilience import ExecutionPolicy
from .workloads import COMMERCIAL_WORKLOADS, WORKLOADS, Trace, make_workload

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "COMMERCIAL_WORKLOADS",
    "EBCPConfig",
    "EpochBasedCorrelationPrefetcher",
    "EpochSimulator",
    "EventBus",
    "ExecutionPolicy",
    "MetricsRegistry",
    "PREFETCHERS",
    "Prefetcher",
    "ProcessorConfig",
    "SCALE_FACTOR",
    "SimulationMetrics",
    "SimulationResult",
    "SimulationStats",
    "Trace",
    "WORKLOADS",
    "build_prefetcher",
    "make_ebcp",
    "make_ebcp_minus",
    "make_ebcp_onchip",
    "make_workload",
    "__version__",
]
