"""Miss Status Holding Register (MSHR) file.

MSHRs bound how many distinct outstanding off-chip misses the core can
sustain.  In the epoch model this limits how many misses can *join* one
epoch: once the MSHR file is full, the next miss cannot issue until the
epoch resolves, so it becomes the trigger of a new epoch (a window
termination condition from [26]).

The epoch engine drains the MSHR file at every epoch boundary — in the
epoch MLP model all overlapped misses of an epoch complete together.
Secondary misses to a line that already has an MSHR allocated merge into
it and do not consume a new entry.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MSHRStats", "MSHRFile"]


@dataclass
class MSHRStats:
    allocations: int = 0
    merges: int = 0
    full_stalls: int = 0


class MSHRFile:
    """A fixed-capacity set of outstanding miss lines."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("MSHR capacity must be positive")
        self.capacity = capacity
        self._lines: set[int] = set()
        self.stats = MSHRStats()

    @property
    def outstanding(self) -> int:
        return len(self._lines)

    @property
    def is_full(self) -> bool:
        return len(self._lines) >= self.capacity

    def has(self, line: int) -> bool:
        return line in self._lines

    def allocate(self, line: int) -> bool:
        """Try to track a miss to ``line``.

        Returns True if the miss is tracked (newly allocated or merged
        into an existing entry); False if the file is full and the miss
        must stall (new epoch).
        """
        if line in self._lines:
            self.stats.merges += 1
            return True
        if self.is_full:
            self.stats.full_stalls += 1
            return False
        self._lines.add(line)
        self.stats.allocations += 1
        return True

    def drain(self) -> int:
        """Complete all outstanding misses (epoch boundary).

        Returns the number of entries released.
        """
        released = len(self._lines)
        self._lines.clear()
        return released
