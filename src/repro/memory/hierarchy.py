"""Cache hierarchy composition.

``CacheHierarchy`` wires together the split L1 caches, the shared L2, the
prefetch buffer and the main-memory model, and classifies each demand
access into one of the :class:`AccessOutcome` levels.  The epoch engine
consumes these outcomes; prefetchers observe the L1-miss (== L2-access)
stream, matching Figure 2's placement of the prefetcher control in front
of the core-to-L2 crossbar.

A demand miss that hits a *ready* line in the prefetch buffer promotes the
line into the L2 and the appropriate L1 (the paper copies prefetched lines
into the regular caches only when used) and counts as an averted off-chip
access.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..obs.events import AccessResolved
from .cache import SetAssociativeCache
from .main_memory import MainMemory
from .prefetch_buffer import PrefetchBuffer
from .request import Access, AccessKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine.config import ProcessorConfig
    from ..obs.bus import EventBus

__all__ = ["AccessOutcome", "HierarchyResult", "CacheHierarchy"]


class AccessOutcome(enum.Enum):
    """Where a demand access was satisfied."""

    L1_HIT = "l1_hit"
    L2_HIT = "l2_hit"
    PREFETCH_HIT = "prefetch_hit"
    OFFCHIP_MISS = "offchip_miss"


@dataclass(frozen=True, slots=True)
class HierarchyResult:
    outcome: AccessOutcome
    line: int
    #: True when the prefetch buffer held the line but it was not ready yet.
    late_prefetch: bool = False
    #: Correlation-table entry index recorded in the hitting buffer entry.
    table_index: int | None = None
    #: Name of the prefetcher that staged the hitting line.
    prefetch_source: str = ""
    #: Line number of a dirty L2 victim written back to memory, if any.
    writeback_line: int | None = None
    #: Epoch in which the hitting prefetch was issued (-1 if unknown or
    #: not a prefetch hit); used for lead-time observability.
    prefetch_issue_epoch: int = -1


class CacheHierarchy:
    """L1I + L1D + shared L2 + prefetch buffer + DRAM."""

    def __init__(self, config: "ProcessorConfig") -> None:
        config.validate()
        self.config = config
        ls = config.line_size
        self.l1i = SetAssociativeCache(config.l1i.size_bytes, config.l1i.ways, ls, "L1I")
        self.l1d = SetAssociativeCache(config.l1d.size_bytes, config.l1d.ways, ls, "L1D")
        self.l2 = SetAssociativeCache(config.l2.size_bytes, config.l2.ways, ls, "L2")
        self.prefetch_buffer = PrefetchBuffer(
            config.prefetch_buffer_entries, config.prefetch_buffer_ways
        )
        self.memory = MainMemory(latency_cycles=config.memory_latency)
        self.line_shift = ls.bit_length() - 1
        #: Optional observability bus (attached by the simulator).
        self.bus: "EventBus | None" = None

    # ------------------------------------------------------------------
    def l1_for(self, kind: AccessKind) -> SetAssociativeCache:
        return self.l1i if kind is AccessKind.IFETCH else self.l1d

    def access(self, access: Access, current_cycle: float) -> HierarchyResult:
        """Run one demand access through the hierarchy.

        Fill policy is inclusive-on-demand: a miss that is ultimately
        satisfied off-chip (or from the prefetch buffer) installs the line
        in both the L2 and the requesting L1.
        """
        line = access.addr >> self.line_shift
        l1 = self.l1_for(access.kind)
        if l1.lookup(line):
            return HierarchyResult(AccessOutcome.L1_HIT, line)
        return self.access_after_l1_miss(access, line, l1, current_cycle)

    def access_after_l1_miss(
        self,
        access: Access,
        line: int,
        l1: SetAssociativeCache | None,
        current_cycle: float,
        l2_missed: bool = False,
    ) -> HierarchyResult:
        """As :meth:`access`, for a caller that already probed ``l1``.

        The epoch simulator filters the trace through the L1s itself on
        its hot path; re-probing here would only burn time and double the
        L1 miss counters.  ``l1`` may be ``None`` when the caller resolved
        the L1 filter ahead of time (compressed execution over a
        precomputed filter plane, :mod:`repro.engine.filter_plane`): the
        L1 fill is then skipped entirely, which is safe because nothing
        downstream ever reads L1 contents the filter plane did not
        already account for.  ``l2_missed=True`` means the caller already
        probed the L2 too (its inline L2-hit fast path) and saw a miss —
        re-probing would double the L2 miss counter.
        """
        # L1 miss -> L2 access (this is the stream prefetchers observe).
        if not l2_missed and self.l2.lookup(line):
            if l1 is not None:
                l1.insert(line)
            result = HierarchyResult(AccessOutcome.L2_HIT, line)
        else:
            # L2 miss -> probe the prefetch buffer (searched in parallel).
            probe = self.prefetch_buffer.lookup(line, current_cycle)
            if probe.hit:
                entry = probe.entry
                assert entry is not None
                writeback = self._install_l2(line, access)
                if l1 is not None:
                    l1.insert(line)
                result = HierarchyResult(
                    AccessOutcome.PREFETCH_HIT,
                    line,
                    table_index=entry.table_index,
                    prefetch_source=entry.source,
                    writeback_line=writeback,
                    prefetch_issue_epoch=entry.issue_epoch,
                )
            else:
                # Genuine off-chip access.
                writeback = self._install_l2(line, access)
                if l1 is not None:
                    l1.insert(line)
                result = HierarchyResult(
                    AccessOutcome.OFFCHIP_MISS,
                    line,
                    late_prefetch=probe.late,
                    writeback_line=writeback,
                )
        # Every non-L1 outcome is an L2 access — the observable stream.
        if self.bus is not None and self.bus.wants(AccessResolved):
            self.bus.emit(
                AccessResolved(access=access, line=line, result=result, cycle=current_cycle)
            )
        return result

    def _install_l2(self, line: int, access: Access) -> int | None:
        """Fill the L2, tracking dirtiness; returns a dirty victim line."""
        victim = self.l2.insert(line)
        if access.kind is AccessKind.STORE:
            self.l2.mark_dirty(line)
        if victim is not None and self.l2.pop_dirty(victim):
            return victim
        return None

    # ------------------------------------------------------------------
    def fill_prefetch(
        self,
        line: int,
        ready_cycle: float,
        table_index: int | None = None,
        source: str = "",
        issue_epoch: int = -1,
    ) -> bool:
        """Stage a prefetched line unless it is already on-chip.

        Returns True if the buffer accepted the fill (i.e. the prefetch
        actually consumed bandwidth usefully); redundant prefetches to
        lines already in the L2 or buffer are filtered here.
        """
        if self.l2.contains(line):
            return False
        self.prefetch_buffer.fill(line, ready_cycle, table_index, source, issue_epoch)
        return True

    def flush(self) -> None:
        self.l1i.flush()
        self.l1d.flush()
        self.l2.flush()
        self.prefetch_buffer.flush()
