"""Request and access types shared across the memory hierarchy.

The simulator operates on two kinds of objects:

* :class:`Access` — a demand access from the processor core (an L1-level
  trace record after decoding).  Accesses flow *down* the hierarchy.
* :class:`PrefetchRequest` — a request emitted by a prefetcher.  Prefetch
  requests flow into the bandwidth model and, if not dropped, fill the
  prefetch buffer.

Addresses everywhere in this package are *byte* addresses held in Python
ints.  Helper functions convert to line addresses (the unit tracked by
caches, prefetch buffers and correlation tables).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = [
    "AccessKind",
    "Priority",
    "Access",
    "PrefetchRequest",
    "line_address",
    "line_number",
]


class AccessKind(enum.IntEnum):
    """The three access kinds carried by a workload trace.

    The integer values match the encoding used in the packed numpy trace
    representation (:mod:`repro.workloads.trace`).
    """

    IFETCH = 0
    LOAD = 1
    STORE = 2

    @property
    def is_instruction(self) -> bool:
        return self is AccessKind.IFETCH

    @property
    def is_data(self) -> bool:
        return self is not AccessKind.IFETCH


class Priority(enum.IntEnum):
    """Memory-request service priority, highest first.

    The paper requires that prefetches and correlation-table traffic are
    *always* lower priority than demand accesses so that they never delay
    demand misses (Section 3.4.4).  Within the low-priority traffic, the
    timing-critical table lookup read outranks the prefetch fills, which
    outrank training (update) traffic.
    """

    DEMAND = 0
    TABLE_LOOKUP = 1
    PREFETCH = 2
    TABLE_UPDATE = 3
    LRU_WRITEBACK = 4


@dataclass(frozen=True, slots=True)
class Access:
    """A single demand access from the core.

    Attributes
    ----------
    kind:
        Instruction fetch, load or store.
    pc:
        Program counter of the access (byte address).  Used by PC-indexed
        prefetchers (GHB PC/DC, SMS).
    addr:
        Byte address touched.
    serial:
        True when the access is data-dependent on the previous off-chip
        miss (e.g. the next hop of a pointer chase) and therefore cannot
        overlap with it.  Serial misses always open a new epoch.
    inst_index:
        Cumulative retired-instruction count at this access; used for the
        ROB-window epoch-membership rule.
    tid:
        Hardware thread that issued the access (0 on single-threaded
        traces).  Prefetchers that track per-thread streams — the CMP
        extension of the paper's Section 6 — key their state on it.
    """

    kind: AccessKind
    pc: int
    addr: int
    serial: bool = False
    inst_index: int = 0
    tid: int = 0


@dataclass
class PrefetchRequest:
    """A prefetch emitted by a prefetcher.

    Attributes
    ----------
    line_addr:
        Line-aligned byte address to fetch.
    kind:
        Whether the prefetch targets instruction or data lines; only used
        for statistics (the prefetch buffer is unified).
    epochs_until_ready:
        Number of epoch boundaries after the *triggering* epoch before the
        prefetched line can satisfy a demand access.  1 for on-chip
        correlation tables (prefetch issues in the triggering epoch and
        completes under it), 2 when the table lives in main memory (one
        epoch to read the table, one for the prefetch itself) — the
        paper's Section 3.2 timing.
    priority:
        Service priority on the memory read bus.
    table_index:
        For correlation prefetchers, the correlation-table entry that
        generated this prefetch.  Stored in the prefetch buffer so a hit
        can update that entry's internal LRU (Section 3.4.3).
    source:
        Short name of the emitting prefetcher, for statistics.
    """

    line_addr: int
    kind: AccessKind = AccessKind.LOAD
    epochs_until_ready: int = 1
    priority: Priority = Priority.PREFETCH
    table_index: int | None = None
    source: str = ""
    # Filled in by the simulator when the request is accepted.
    issue_epoch: int = field(default=-1, compare=False)


def line_address(addr: int, line_shift: int) -> int:
    """Return the line-aligned byte address containing ``addr``."""
    return (addr >> line_shift) << line_shift


def line_number(addr: int, line_shift: int) -> int:
    """Return the line index (byte address divided by line size)."""
    return addr >> line_shift
