"""Memory-hierarchy substrate: caches, MSHRs, prefetch buffer, DRAM, buses."""

from .bandwidth import BandwidthModel, BusStats, EpochBudget
from .cache import CacheStats, SetAssociativeCache
from .hierarchy import AccessOutcome, CacheHierarchy, HierarchyResult
from .main_memory import Allocation, MainMemory, OutOfMemoryError
from .mshr import MSHRFile, MSHRStats
from .prefetch_buffer import BufferEntry, LookupResult, PrefetchBuffer, PrefetchBufferStats
from .request import Access, AccessKind, PrefetchRequest, Priority, line_address, line_number

__all__ = [
    "Access",
    "AccessKind",
    "AccessOutcome",
    "Allocation",
    "BandwidthModel",
    "BufferEntry",
    "BusStats",
    "CacheHierarchy",
    "CacheStats",
    "EpochBudget",
    "HierarchyResult",
    "LookupResult",
    "MSHRFile",
    "MSHRStats",
    "MainMemory",
    "OutOfMemoryError",
    "PrefetchBuffer",
    "PrefetchBufferStats",
    "PrefetchRequest",
    "Priority",
    "SetAssociativeCache",
    "line_address",
    "line_number",
]
