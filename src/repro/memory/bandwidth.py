"""Bandwidth-constrained memory interconnect model.

The paper's default interconnect is a split-transaction bus pair: a 16 B
wide read bus and an 8 B wide write bus at 600 MHz — 9.6 GB/s of read
bandwidth and 4.8 GB/s of write bandwidth against a 3 GHz core
(Section 4.4).  Expressed in core cycles that is 3.2 read bytes/cycle and
1.6 write bytes/cycle.

The epoch engine accounts for bandwidth *per epoch*: when an epoch closes,
its duration defines a byte budget on each bus, and the epoch's traffic is
charged against the budget in strict priority order (demand fills, then
correlation-table lookup reads, then prefetch fills, then table-update
traffic).  Traffic past the read budget is dropped — exactly the paper's
behaviour that "prefetches may sometimes be dropped when the available
memory bandwidth is saturated" (Section 5.2.1).  Low-priority writes past
the write budget are skipped.

Saturation also feeds back into timing: a heavily utilised read bus adds a
queueing term to the *next* epoch's effective miss penalty.  Demand
requests are never reordered behind prefetches, but a bus occupied by an
in-flight lower-priority transfer still delays them — this is what makes
over-aggressive prefetching lose performance at low bandwidth (Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..obs.events import BudgetExhausted
from .request import Priority

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.bus import EventBus

__all__ = ["BusStats", "EpochBudget", "BandwidthModel"]


@dataclass
class BusStats:
    """Aggregate per-bus accounting across the whole simulation."""

    bytes_by_priority: dict[int, int] = field(default_factory=dict)
    dropped_by_priority: dict[int, int] = field(default_factory=dict)
    budget_bytes: int = 0
    used_bytes: int = 0

    def charge(self, priority: Priority, nbytes: int) -> None:
        key = int(priority)
        self.bytes_by_priority[key] = self.bytes_by_priority.get(key, 0) + nbytes
        self.used_bytes += nbytes

    def drop(self, priority: Priority, nbytes: int) -> None:
        self.dropped_by_priority[int(priority)] = (
            self.dropped_by_priority.get(int(priority), 0) + nbytes
        )

    @property
    def utilization(self) -> float:
        return self.used_bytes / self.budget_bytes if self.budget_bytes else 0.0


class EpochBudget:
    """Byte budgets for one epoch window on the read and write buses."""

    def __init__(self, model: "BandwidthModel", duration_cycles: float) -> None:
        self._model = model
        self.duration_cycles = duration_cycles
        self.read_budget = duration_cycles * model.read_bytes_per_cycle
        self.write_budget = duration_cycles * model.write_bytes_per_cycle
        self.read_used = 0.0
        self.write_used = 0.0
        model.read_stats.budget_bytes += int(self.read_budget)
        model.write_stats.budget_bytes += int(self.write_budget)

    # ------------------------------------------------------------------
    def charge_read(self, priority: Priority, nbytes: int, droppable: bool = False) -> bool:
        """Charge a read transfer; returns False if it was dropped.

        Demand traffic (and anything with ``droppable=False``) always
        proceeds — saturation shows up as queueing delay instead of a
        functional drop.  Droppable traffic (prefetches, training reads)
        is dropped once the budget is exhausted.
        """
        if droppable and self.read_used + nbytes > self.read_budget:
            self._model.read_stats.drop(priority, nbytes)
            self._model.notify_exhausted("read", priority, nbytes, self.read_utilization)
            return False
        self.read_used += nbytes
        self._model.read_stats.charge(priority, nbytes)
        return True

    def charge_write(self, priority: Priority, nbytes: int, droppable: bool = True) -> bool:
        if droppable and self.write_used + nbytes > self.write_budget:
            self._model.write_stats.drop(priority, nbytes)
            utilization = self.write_used / self.write_budget if self.write_budget else 0.0
            self._model.notify_exhausted("write", priority, nbytes, utilization)
            return False
        self.write_used += nbytes
        self._model.write_stats.charge(priority, nbytes)
        return True

    # ------------------------------------------------------------------
    @property
    def read_utilization(self) -> float:
        return self.read_used / self.read_budget if self.read_budget else 0.0

    @property
    def read_headroom_bytes(self) -> float:
        return max(0.0, self.read_budget - self.read_used)


class BandwidthModel:
    """Dual-bus bandwidth model with utilisation-driven queueing delay.

    Parameters
    ----------
    read_bytes_per_cycle / write_bytes_per_cycle:
        Bus widths expressed in bytes per *core* cycle.
    queue_threshold:
        Read-bus utilisation above which queueing delay starts to accrue.
    queue_penalty_factor:
        Maximum fractional increase of the miss penalty at 100 %
        over-subscription beyond the threshold.
    """

    #: Exponential smoothing factor for the utilisation estimate: queueing
    #: responds to sustained saturation, not to one bursty window.
    EMA_ALPHA = 0.08

    def __init__(
        self,
        read_bytes_per_cycle: float,
        write_bytes_per_cycle: float,
        queue_threshold: float = 0.75,
        queue_penalty_factor: float = 0.6,
    ) -> None:
        if read_bytes_per_cycle <= 0 or write_bytes_per_cycle <= 0:
            raise ValueError("bus widths must be positive")
        self.read_bytes_per_cycle = read_bytes_per_cycle
        self.write_bytes_per_cycle = write_bytes_per_cycle
        self.queue_threshold = queue_threshold
        self.queue_penalty_factor = queue_penalty_factor
        self.read_stats = BusStats()
        self.write_stats = BusStats()
        self._last_read_utilization = 0.0
        self._ema_read_utilization = 0.0
        #: Optional observability bus (attached by the simulator).
        self.bus: "EventBus | None" = None

    def notify_exhausted(
        self, bus_name: str, priority: Priority, nbytes: int, utilization: float
    ) -> None:
        """Publish a :class:`BudgetExhausted` event for a refused charge."""
        if self.bus is not None and self.bus.wants(BudgetExhausted):
            self.bus.emit(
                BudgetExhausted(
                    bus=bus_name,
                    priority=int(priority),
                    nbytes=nbytes,
                    utilization=utilization,
                )
            )

    @classmethod
    def from_gbps(
        cls,
        read_gb_per_s: float,
        write_gb_per_s: float,
        core_ghz: float = 3.0,
        **kwargs: float,
    ) -> "BandwidthModel":
        """Build from the paper's GB/s figures and core frequency."""
        return cls(
            read_bytes_per_cycle=read_gb_per_s / core_ghz,
            write_bytes_per_cycle=write_gb_per_s / core_ghz,
            **kwargs,
        )

    def open_epoch(self, duration_cycles: float) -> EpochBudget:
        return EpochBudget(self, duration_cycles)

    def close_epoch(self, budget: EpochBudget) -> None:
        """Record the window's utilisation for queueing feedback."""
        # Over-subscription is possible because non-droppable demand
        # traffic is always charged; utilisation > 1 means demand alone
        # exceeded the bus and queues hard.
        self._last_read_utilization = budget.read_utilization
        self._ema_read_utilization += self.EMA_ALPHA * (
            budget.read_utilization - self._ema_read_utilization
        )

    def queueing_delay(self, base_penalty: float) -> float:
        """Extra cycles added to the epoch's effective miss penalty.

        Driven by the *smoothed* read-bus utilisation: a bus that is
        persistently saturated queues every requester, demand included —
        the mechanism behind Figure 8's performance decline when the
        prefetch degree outgrows the available bandwidth.
        """
        over = self._ema_read_utilization - self.queue_threshold
        if over <= 0:
            return 0.0
        span = max(1e-9, 1.0 - self.queue_threshold)
        return base_penalty * self.queue_penalty_factor * min(2.0, over / span)

    @property
    def last_read_utilization(self) -> float:
        return self._last_read_utilization

    @property
    def smoothed_read_utilization(self) -> float:
        return self._ema_read_utilization
