"""Set-associative cache with true-LRU replacement.

This is the functional cache model used for the L1 instruction cache, the
L1 data cache and the shared L2 cache.  It tracks hits, misses and
evictions but carries no timing — timing is the job of the epoch engine
(:mod:`repro.engine.simulator`).

Design notes
------------
* The cache operates on *line numbers* (byte address >> line_shift); the
  caller is responsible for the shift so the hot path avoids repeated
  masking.
* Each set is a ``dict[tag -> last_use]``; LRU eviction scans the set,
  which is cheap for the small associativities (4-16 ways) used here and
  avoids per-access ``OrderedDict`` churn.
* ``insert`` returns the evicted line number (or ``None``), letting
  callers model dirty writebacks or feed eviction-driven prefetchers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CacheStats", "SetAssociativeCache"]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    insertions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.insertions = 0


class SetAssociativeCache:
    """A set-associative cache of lines with true-LRU replacement.

    Parameters
    ----------
    size_bytes:
        Total capacity in bytes.
    ways:
        Associativity.  ``size_bytes / (ways * line_size)`` must be a
        power of two (the set index is taken by masking).
    line_size:
        Line size in bytes (must be a power of two).
    name:
        Label used in statistics and error messages.
    """

    def __init__(self, size_bytes: int, ways: int, line_size: int, name: str = "cache") -> None:
        if size_bytes <= 0 or ways <= 0 or line_size <= 0:
            raise ValueError("cache geometry must be positive")
        if line_size & (line_size - 1):
            raise ValueError(f"line_size must be a power of two, got {line_size}")
        n_lines = size_bytes // line_size
        if n_lines % ways:
            raise ValueError(
                f"{name}: {size_bytes} bytes / {line_size} B lines not divisible by {ways} ways"
            )
        n_sets = n_lines // ways
        if n_sets == 0 or n_sets & (n_sets - 1):
            raise ValueError(f"{name}: number of sets ({n_sets}) must be a power of two")
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_size = line_size
        self.line_shift = line_size.bit_length() - 1
        self.n_sets = n_sets
        self._set_mask = n_sets - 1
        #: Bits of set index below the tag (hoisted: bit_length() per probe
        #: was a measurable share of simulator time).
        self._tag_shift = n_sets.bit_length() - 1
        # Per-set mapping: tag -> last-use stamp.
        self._sets: list[dict[int, int]] = [dict() for _ in range(n_sets)]
        self._stamp = 0
        #: Lines written since fill; their eviction is a memory writeback.
        self._dirty: set[int] = set()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Geometry identity
    # ------------------------------------------------------------------
    def geometry_key(self) -> tuple[int, int, int]:
        """``(size_bytes, ways, line_size)`` — the exportable geometry.

        Two caches with equal keys are behaviourally identical filters:
        same set count, same tag split, same LRU victim sequence for any
        access stream.  The filter-plane cache
        (:mod:`repro.engine.filter_plane`) keys on this tuple.
        """
        return (self.size_bytes, self.ways, self.line_size)

    # ------------------------------------------------------------------
    # Line-number helpers
    # ------------------------------------------------------------------
    def line_of(self, byte_addr: int) -> int:
        """Line number containing a byte address."""
        return byte_addr >> self.line_shift

    def _index_tag(self, line: int) -> tuple[int, int]:
        return line & self._set_mask, line >> self._tag_shift

    # ------------------------------------------------------------------
    # Core operations (all take line numbers)
    # ------------------------------------------------------------------
    # lookup/contains/insert inline the index/tag split rather than call
    # _index_tag: they are the simulator's innermost operations.
    def lookup(self, line: int, update_lru: bool = True) -> bool:
        """Probe for ``line``; returns True on hit.  Counts a hit/miss."""
        cache_set = self._sets[line & self._set_mask]
        tag = line >> self._tag_shift
        if tag in cache_set:
            if update_lru:
                self._stamp += 1
                cache_set[tag] = self._stamp
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def contains(self, line: int) -> bool:
        """Probe without disturbing LRU state or statistics."""
        return (line >> self._tag_shift) in self._sets[line & self._set_mask]

    def insert(self, line: int) -> int | None:
        """Install ``line``; returns the evicted line number, if any.

        Inserting a line already present simply refreshes its LRU stamp.
        """
        index = line & self._set_mask
        tag = line >> self._tag_shift
        cache_set = self._sets[index]
        self._stamp += 1
        if tag in cache_set:
            cache_set[tag] = self._stamp
            return None
        victim_line: int | None = None
        if len(cache_set) >= self.ways:
            victim_tag = min(cache_set, key=cache_set.__getitem__)
            del cache_set[victim_tag]
            victim_line = (victim_tag << self._tag_shift) | index
            self.stats.evictions += 1
        cache_set[tag] = self._stamp
        self.stats.insertions += 1
        return victim_line

    # ------------------------------------------------------------------
    # Dirty-line tracking (for writeback modelling)
    # ------------------------------------------------------------------
    def mark_dirty(self, line: int) -> None:
        """Mark a resident line as written."""
        self._dirty.add(line)

    def pop_dirty(self, line: int) -> bool:
        """Consume a line's dirty status (call when it leaves the cache)."""
        if line in self._dirty:
            self._dirty.discard(line)
            return True
        return False

    def is_dirty(self, line: int) -> bool:
        return line in self._dirty

    def access(self, line: int) -> bool:
        """Lookup and, on miss, insert.  Returns True on hit."""
        if self.lookup(line):
            return True
        self.insert(line)
        return False

    def invalidate(self, line: int) -> bool:
        """Remove ``line`` if present; returns True if it was present."""
        index, tag = self._index_tag(line)
        self._dirty.discard(line)
        return self._sets[index].pop(tag, None) is not None

    def flush(self) -> None:
        """Empty the cache (statistics are preserved)."""
        for cache_set in self._sets:
            cache_set.clear()
        self._dirty.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(s) for s in self._sets)

    def resident_lines(self) -> list[int]:
        """All resident line numbers (test/diagnostic helper)."""
        shift = self._tag_shift
        lines = []
        for index, cache_set in enumerate(self._sets):
            for tag in cache_set:
                lines.append((tag << shift) | index)
        return lines

    def set_occupancy(self, index: int) -> int:
        return len(self._sets[index])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetAssociativeCache({self.name}: {self.size_bytes}B, "
            f"{self.ways}-way, {self.line_size}B lines, {self.n_sets} sets)"
        )
