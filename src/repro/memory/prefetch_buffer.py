"""The on-chip prefetch buffer.

All prefetchers evaluated in the paper bring their prefetched lines into a
small set-associative prefetch buffer that is searched in parallel with
the L2 cache (Section 5.2.3: 64 entries, 4-way, 512 B of on-chip storage
for the tuned design).  Lines are copied into the regular caches only when
they satisfy a demand request — useless prefetches therefore never pollute
the caches.

Timeliness is tracked on the engine's cycle clock: each staged line
carries ``ready_cycle``, the wall-clock cycle at which its transfer
completes — for a prefetcher with an on-chip table that is one miss
penalty after the triggering event (the prefetch itself), and for a
main-memory correlation table it is two (table read, then prefetch;
paper Section 3.2).  Because an epoch's stall is exactly one miss
penalty of wall time, this cycle rule reproduces the paper's
epoch-granular worked examples miss-for-miss (verified by the
integration tests), while also behaving correctly when prefetching
eliminates the stalls entirely.

A demand access that finds a line still in flight records a *late*
prefetch: the miss is not averted, matching the paper's examples where
e.g. prefetch B issued in epoch i does not avert miss B in the same
epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..obs.events import PrefetchDropped

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.bus import EventBus

__all__ = ["PrefetchBufferStats", "BufferEntry", "PrefetchBuffer", "LookupResult"]


@dataclass
class PrefetchBufferStats:
    fills: int = 0
    hits: int = 0
    late_hits: int = 0
    evictions: int = 0
    evicted_unused: int = 0

    def reset(self) -> None:
        self.fills = 0
        self.hits = 0
        self.late_hits = 0
        self.evictions = 0
        self.evicted_unused = 0


@dataclass
class BufferEntry:
    """One prefetched line resident in the buffer."""

    line: int
    ready_cycle: float
    table_index: int | None = None
    source: str = ""
    used: bool = False
    last_use: int = 0
    #: Epoch index during which the prefetch was issued (-1 if unknown);
    #: lets a later hit compute its lead time in epochs.
    issue_epoch: int = -1

    def is_ready(self, current_cycle: float) -> bool:
        return self.ready_cycle <= current_cycle


@dataclass(frozen=True, slots=True)
class LookupResult:
    """Outcome of probing the prefetch buffer for a demand miss."""

    hit: bool
    late: bool
    entry: BufferEntry | None


#: The overwhelmingly common probe outcome (buffer miss) is immutable —
#: share one instance instead of allocating it per demand miss.
_MISS_RESULT = LookupResult(hit=False, late=False, entry=None)


class PrefetchBuffer:
    """Set-associative buffer of prefetched lines with LRU replacement."""

    def __init__(self, entries: int, ways: int = 4, name: str = "pbuf") -> None:
        if entries <= 0:
            raise ValueError("prefetch buffer needs at least one entry")
        ways = min(ways, entries)
        if entries % ways:
            raise ValueError(f"entries ({entries}) must be divisible by ways ({ways})")
        n_sets = entries // ways
        if n_sets & (n_sets - 1):
            raise ValueError(f"number of sets ({n_sets}) must be a power of two")
        self.name = name
        self.entries = entries
        self.ways = ways
        self.n_sets = n_sets
        self._set_mask = n_sets - 1
        self._sets: list[dict[int, BufferEntry]] = [dict() for _ in range(n_sets)]
        self._stamp = 0
        self.stats = PrefetchBufferStats()
        #: Optional observability bus (attached by the simulator).
        self.bus: EventBus | None = None

    def _set_for(self, line: int) -> dict[int, BufferEntry]:
        return self._sets[line & self._set_mask]

    # ------------------------------------------------------------------
    def fill(
        self,
        line: int,
        ready_cycle: float,
        table_index: int | None = None,
        source: str = "",
        issue_epoch: int = -1,
    ) -> BufferEntry | None:
        """Install a prefetched line; returns the evicted entry, if any.

        Re-filling a resident line refreshes it but never *delays* an
        already-staged line (the earliest readiness wins).
        """
        bucket = self._set_for(line)
        self._stamp += 1
        existing = bucket.get(line)
        if existing is not None:
            existing.ready_cycle = min(existing.ready_cycle, ready_cycle)
            existing.last_use = self._stamp
            return None
        victim: BufferEntry | None = None
        if len(bucket) >= self.ways:
            victim_line = min(bucket, key=lambda ln: bucket[ln].last_use)
            victim = bucket.pop(victim_line)
            self.stats.evictions += 1
            if not victim.used:
                self.stats.evicted_unused += 1
                if self.bus is not None and self.bus.wants(PrefetchDropped):
                    self.bus.emit(
                        PrefetchDropped(
                            line=victim.line,
                            reason="evicted_unused",
                            source=victim.source,
                        )
                    )
        entry = BufferEntry(
            line=line,
            ready_cycle=ready_cycle,
            table_index=table_index,
            source=source,
            last_use=self._stamp,
            issue_epoch=issue_epoch,
        )
        bucket[line] = entry
        self.stats.fills += 1
        return victim

    def lookup(self, line: int, current_cycle: float) -> LookupResult:
        """Probe for a demand miss at wall-clock ``current_cycle``.

        A ready entry is a hit and is *removed* (the line is promoted into
        the regular caches by the caller).  A present-but-late entry is
        left in place (it will be ready for a later access) and reported
        as ``late``.
        """
        bucket = self._sets[line & self._set_mask]
        entry = bucket.get(line)
        if entry is None:
            return _MISS_RESULT
        if not entry.is_ready(current_cycle):
            self.stats.late_hits += 1
            return LookupResult(hit=False, late=True, entry=entry)
        entry.used = True
        del bucket[line]
        self.stats.hits += 1
        return LookupResult(hit=True, late=False, entry=entry)

    def contains(self, line: int) -> bool:
        return line in self._set_for(line)

    def peek(self, line: int) -> BufferEntry | None:
        """Inspect an entry without LRU/statistics side effects."""
        return self._set_for(line).get(line)

    def invalidate(self, line: int) -> bool:
        """Drop an entry (e.g. its bus transfer was cancelled)."""
        return self._set_for(line).pop(line, None) is not None

    def flush(self) -> None:
        for bucket in self._sets:
            bucket.clear()

    @property
    def occupancy(self) -> int:
        return sum(len(bucket) for bucket in self._sets)
