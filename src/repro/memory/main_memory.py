"""Main memory (DRAM) model.

Beyond providing the unloaded miss penalty, this module models the part of
the paper that makes EBCP "low-cost": the correlation table is an ordinary
region of physical memory handed out by the operating system
(Section 3.4.1).  ``MainMemory`` therefore exposes a tiny physical-page
allocator; the prefetcher control requests a contiguous region at start-up
and enters the *active* state on success.  If the OS reclaims the region
(memory pressure), the prefetcher goes *inactive* until a re-request
succeeds.

The data contents of DRAM are not simulated — caches and the prefetch
buffer track line presence only — but the table region's base address and
size are, because table reads/updates are generated as physical-address
memory requests that bypass the cache hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Allocation", "OutOfMemoryError", "MainMemory"]


class OutOfMemoryError(Exception):
    """The OS could not supply a contiguous region of the requested size."""


@dataclass(frozen=True)
class Allocation:
    """A contiguous physical region returned by the OS."""

    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


@dataclass
class MainMemory:
    """DRAM with an unloaded access latency and a bump page allocator.

    Parameters
    ----------
    latency_cycles:
        Unloaded access latency in core cycles (500 in the paper's default
        configuration).
    size_bytes:
        Total physical memory.  Server-class defaults are generous; the
        correlation table is a small fraction of it.
    page_bytes:
        OS page granularity for allocations.
    """

    latency_cycles: int = 500
    size_bytes: int = 4 << 30
    page_bytes: int = 8192
    _next_free: int = field(default=0, init=False)
    _allocations: list[Allocation] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if self.latency_cycles <= 0:
            raise ValueError("memory latency must be positive")
        if self.page_bytes <= 0 or self.page_bytes & (self.page_bytes - 1):
            raise ValueError("page size must be a positive power of two")

    # ------------------------------------------------------------------
    # OS allocation interface (Section 3.4.1)
    # ------------------------------------------------------------------
    def allocate(self, size_bytes: int) -> Allocation:
        """Allocate a series of contiguous physical pages.

        Returns the base physical address and rounded-up size, as the
        paper's OS trap does.  Raises :class:`OutOfMemoryError` when the
        request cannot be satisfied.
        """
        if size_bytes <= 0:
            raise ValueError("allocation size must be positive")
        pages = -(-size_bytes // self.page_bytes)
        size = pages * self.page_bytes
        if self._next_free + size > self.size_bytes:
            raise OutOfMemoryError(
                f"requested {size} B but only "
                f"{self.size_bytes - self._next_free} B remain"
            )
        alloc = Allocation(base=self._next_free, size=size)
        self._next_free += size
        self._allocations.append(alloc)
        return alloc

    def reclaim(self, alloc: Allocation) -> None:
        """OS reclaims a region (memory pressure).

        The bump allocator does not coalesce; reclamation simply removes
        the region from the live set (this models the *signal* the
        prefetcher receives, which is what matters for its state machine).
        """
        try:
            self._allocations.remove(alloc)
        except ValueError:
            raise ValueError("region was not allocated from this memory") from None

    @property
    def allocated_bytes(self) -> int:
        return sum(a.size for a in self._allocations)

    @property
    def free_bytes(self) -> int:
        return self.size_bytes - self._next_free

    def owns(self, addr: int) -> Allocation | None:
        """Return the live allocation containing ``addr``, if any."""
        for alloc in self._allocations:
            if alloc.contains(addr):
                return alloc
        return None
