"""Tests for the GHB PC/DC prefetcher."""

from __future__ import annotations

from repro.memory.request import AccessKind
from repro.prefetchers.ghb import GHBPrefetcher, make_ghb_large, make_ghb_small

from tests.helpers import make_access


def feed(pf: GHBPrefetcher, events: list[tuple[int, int]], kind=AccessKind.LOAD):
    """events = [(pc, line), ...]; returns all emitted requests."""
    requests = []
    for pc, line in events:
        access = make_access(line * 64, kind=kind, pc=pc)
        requests.extend(pf.observe_offchip_miss(access, line, None, False))
    return requests


class TestDeltaCorrelation:
    def test_repeating_delta_pattern_predicted(self):
        """Deltas per PC: +1,+2,+1,+2...; after seeing the pair (+1,+2)
        twice the following deltas are replayed."""
        pf = GHBPrefetcher(degree=3)
        pc = 0x100
        # Addresses: 10, 11, 13, 14, 16, 17 -> deltas 1,2,1,2,1.
        requests = feed(pf, [(pc, a) for a in (10, 11, 13, 14, 16, 17)])
        targets = {r.line_addr for r in requests}
        # After 17 the latest delta pair is (2,1); its prior occurrence is
        # followed by deltas 2,1 -> replay from 17 gives 19, 20.
        assert {19, 20} <= targets

    def test_constant_stride_predicted(self):
        pf = GHBPrefetcher(degree=2)
        pc = 0x200
        requests = feed(pf, [(pc, 100 + 3 * i) for i in range(5)])
        assert {r.line_addr for r in requests} >= {115, 118}

    def test_no_prediction_without_repeat(self):
        pf = GHBPrefetcher()
        assert feed(pf, [(0x1, a) for a in (10, 25, 13, 99)]) == []

    def test_streams_keyed_per_pc(self):
        pf = GHBPrefetcher(degree=1)
        mixed = []
        for i in range(6):
            mixed.append((0xA, 100 + i))
            mixed.append((0xB, 9000 - 2 * i))
        requests = feed(pf, mixed)
        targets = {r.line_addr for r in requests}
        assert 100 + 6 in targets  # PC A's next +1
        assert 9000 - 2 * 6 in targets  # PC B's next -2

    def test_prefetches_instruction_misses_too(self):
        pf = GHBPrefetcher(degree=1)
        requests = feed(pf, [(0x40 + 64 * i, 500 + i) for i in range(5)],
                        kind=AccessKind.IFETCH)
        # Each ifetch has a distinct PC here, so correlation needs a
        # shared key; use a single fetch PC stream instead:
        pf2 = GHBPrefetcher(degree=1)
        requests2 = feed(pf2, [(0x40, 500 + i) for i in range(5)],
                         kind=AccessKind.IFETCH)
        assert pf2.targets_instructions
        assert {r.line_addr for r in requests2} >= {505}
        assert requests == [] or requests  # distinct-PC case makes no claim


class TestCapacity:
    def test_index_table_eviction(self):
        pf = GHBPrefetcher(index_entries=2, buffer_entries=64, degree=1)
        feed(pf, [(0xA, 1), (0xB, 2), (0xC, 3)])  # 0xA evicted (FIFO-ish LRU)
        assert 0xA not in pf._index

    def test_history_buffer_wraparound_invalidates_links(self):
        pf = GHBPrefetcher(index_entries=64, buffer_entries=4, degree=1)
        feed(pf, [(0xA, 100 + i) for i in range(3)])
        feed(pf, [(0xB, 9000 + 7 * i) for i in range(8)])  # overwrites A's chain
        history = pf._walk_chain(0xA)
        assert len(history) <= 1  # stale links rejected

    def test_small_and_large_configs(self):
        small, large = make_ghb_small(), make_ghb_large()
        assert small.name == "ghb_small" and large.name == "ghb_large"
        # Paper sizes (256 KB / 4 MB) divided by the capacity scale (8).
        assert small.onchip_storage_bytes == 256 * 1024 // 8
        assert large.onchip_storage_bytes == 4 * 1024 * 1024 // 8
        # Unscaled (paper-size) construction is still available.
        assert make_ghb_large(scale=1).onchip_storage_bytes == 4 * 1024 * 1024

    def test_trains_on_prefetch_hits(self):
        pf = GHBPrefetcher(degree=1)
        pc = 0x9
        for i in range(5):
            pf.observe_prefetch_hit(make_access((10 + i) * 64, pc=pc), 10 + i, None, 0, False)
        requests = pf.observe_prefetch_hit(make_access(15 * 64, pc=pc), 15, None, 0, False)
        assert {r.line_addr for r in requests} == {16}
