"""Tests for the stream prefetcher."""

from __future__ import annotations

from repro.memory.request import AccessKind
from repro.prefetchers.stream import StreamPrefetcher

from tests.helpers import make_access


def feed(pf: StreamPrefetcher, lines: list[int], kind=AccessKind.LOAD):
    requests = []
    for line in lines:
        access = make_access(line * 64, kind=kind)
        requests.extend(pf.observe_access(access, line, 0))
    return requests


class TestDetection:
    def test_unit_stride_confirmed_and_issued(self):
        pf = StreamPrefetcher(degree=4, ahead=6, confirm=2)
        requests = feed(pf, [100, 101, 102])
        targets = {r.line_addr for r in requests}
        assert targets == {103, 104, 105, 106}

    def test_negative_stride(self):
        pf = StreamPrefetcher(degree=3, ahead=4)
        requests = feed(pf, [200, 199, 198])
        assert {r.line_addr for r in requests} == {197, 196, 195}

    def test_non_unit_stride(self):
        pf = StreamPrefetcher(degree=3, ahead=4)
        requests = feed(pf, [100, 104, 108])
        assert {r.line_addr for r in requests} == {112, 116, 120}

    def test_no_issue_before_confirmation(self):
        pf = StreamPrefetcher(confirm=3)
        assert feed(pf, [100, 101]) == []

    def test_random_misses_issue_nothing(self):
        pf = StreamPrefetcher()
        assert feed(pf, [100, 5000, 90, 77777, 42]) == []

    def test_stride_beyond_max_not_tracked(self):
        pf = StreamPrefetcher()
        assert feed(pf, [100, 112, 124, 136]) == []  # stride 12 > MAX_STRIDE

    def test_stays_ahead_not_reissuing(self):
        pf = StreamPrefetcher(degree=4, ahead=4)
        first = feed(pf, [100, 101, 102])
        second = feed(pf, [103])
        first_targets = {r.line_addr for r in first}
        second_targets = {r.line_addr for r in second}
        assert first_targets == {103, 104, 105, 106}
        # Advancing one line exposes exactly one new line at the horizon.
        assert second_targets == {107}

    def test_prefetch_requests_are_onchip_timed(self):
        pf = StreamPrefetcher()
        requests = feed(pf, [100, 101, 102])
        assert all(r.epochs_until_ready == 1 for r in requests)


class TestScope:
    def test_ignores_instruction_misses(self):
        pf = StreamPrefetcher()
        assert feed(pf, [100, 101, 102], kind=AccessKind.IFETCH) == []
        assert not pf.targets_instructions

    def test_trains_on_access_stream(self):
        """L1-side scheme: averted misses still appear as L2 accesses,
        so the stream keeps running."""
        pf = StreamPrefetcher(degree=2, ahead=6)
        feed(pf, [100, 101, 102])
        requests = feed(pf, [103])
        assert requests


class TestCapacity:
    def test_tracker_lru_replacement(self):
        pf = StreamPrefetcher(n_streams=2)
        feed(pf, [100])
        feed(pf, [1000])
        feed(pf, [5000])  # evicts tracker for 100
        # Restarting at 101 allocates fresh (no stride memory of 100).
        assert feed(pf, [101, 102]) == []  # needs confirmation from scratch

    def test_many_interleaved_streams(self):
        pf = StreamPrefetcher(n_streams=32, degree=2, ahead=4)
        issued = []
        for step in range(4):
            for s in range(4):
                base = s * 10_000
                issued.extend(feed(pf, [base + step]))
        assert len(issued) > 0

    def test_storage_is_small(self):
        assert StreamPrefetcher().onchip_storage_bytes <= 1024
