"""The ``repro.api`` facade: every promised name exists and works."""

from __future__ import annotations

from repro import api


def test_every_exported_name_resolves():
    for name in api.__all__:
        assert getattr(api, name) is not None


def test_facade_covers_the_core_workflow():
    trace = api.make_workload("tpcw", records=2_000, seed=7)
    sim = api.EpochSimulator(
        api.ProcessorConfig.scaled(),
        api.build_prefetcher("ebcp"),
        cpi_perf=trace.meta.cpi_perf,
    )
    result = sim.run(trace)
    assert isinstance(result, api.SimulationResult)


def test_experiments_registry_is_complete():
    assert set(api.EXPERIMENTS) == {
        "table1",
        "figure4",
        "figure5",
        "figure6",
        "figure7",
        "figure8",
        "figure9",
        "extension_cmp",
    }
    for module in api.EXPERIMENTS.values():
        assert callable(module.run)


def test_execution_policy_reaches_run_jobs():
    spec = api.JobSpec(
        workload="tpcw",
        records=2_000,
        seed=7,
        config=api.ProcessorConfig.scaled(),
        prefetcher=None,
        label="baseline",
    )
    [result] = api.run_jobs([spec], policy=api.ExecutionPolicy(retries=0))
    assert result.stats.instructions > 0
