"""Tests for the bandwidth model: budgets, priorities, drops, queueing."""

from __future__ import annotations

import pytest

from repro.memory.bandwidth import BandwidthModel
from repro.memory.request import Priority


def make_model(read=3.2, write=1.6, **kwargs):
    return BandwidthModel(read, write, **kwargs)


class TestConstruction:
    def test_from_gbps(self):
        model = BandwidthModel.from_gbps(9.6, 4.8, core_ghz=3.0)
        assert model.read_bytes_per_cycle == pytest.approx(3.2)
        assert model.write_bytes_per_cycle == pytest.approx(1.6)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            BandwidthModel(0.0, 1.0)


class TestBudgets:
    def test_budget_scales_with_duration(self):
        model = make_model()
        budget = model.open_epoch(1000.0)
        assert budget.read_budget == pytest.approx(3200.0)
        assert budget.write_budget == pytest.approx(1600.0)

    def test_droppable_traffic_dropped_past_budget(self):
        model = make_model()
        budget = model.open_epoch(100.0)  # 320 B read budget
        assert budget.charge_read(Priority.PREFETCH, 256, droppable=True)
        assert not budget.charge_read(Priority.PREFETCH, 128, droppable=True)
        assert model.read_stats.dropped_by_priority[int(Priority.PREFETCH)] == 128

    def test_demand_never_dropped(self):
        model = make_model()
        budget = model.open_epoch(10.0)  # 32 B budget
        assert budget.charge_read(Priority.DEMAND, 1024, droppable=False)
        assert budget.read_utilization > 1.0  # over-subscribed, not dropped

    def test_write_bus_independent(self):
        model = make_model()
        budget = model.open_epoch(100.0)
        budget.charge_read(Priority.DEMAND, 320, droppable=False)
        assert budget.charge_write(Priority.DEMAND, 100, droppable=False)
        assert model.write_stats.used_bytes == 100

    def test_stats_accumulate_by_priority(self):
        model = make_model()
        budget = model.open_epoch(1000.0)
        budget.charge_read(Priority.DEMAND, 128, droppable=False)
        budget.charge_read(Priority.TABLE_LOOKUP, 64, droppable=False)
        budget.charge_read(Priority.PREFETCH, 64, droppable=True)
        assert model.read_stats.bytes_by_priority[int(Priority.DEMAND)] == 128
        assert model.read_stats.bytes_by_priority[int(Priority.TABLE_LOOKUP)] == 64
        assert model.read_stats.bytes_by_priority[int(Priority.PREFETCH)] == 64

    def test_headroom(self):
        model = make_model()
        budget = model.open_epoch(100.0)
        budget.charge_read(Priority.DEMAND, 200, droppable=False)
        assert budget.read_headroom_bytes == pytest.approx(120.0)


class TestQueueing:
    def test_no_queueing_below_threshold(self):
        model = make_model(queue_threshold=0.75)
        for _ in range(50):
            budget = model.open_epoch(100.0)
            budget.charge_read(Priority.DEMAND, 100, droppable=False)  # 31 % util
            model.close_epoch(budget)
        assert model.queueing_delay(500.0) == 0.0

    def test_sustained_saturation_queues(self):
        model = make_model(queue_threshold=0.75, queue_penalty_factor=0.6)
        for _ in range(100):
            budget = model.open_epoch(100.0)
            budget.charge_read(Priority.DEMAND, 320, droppable=False)  # 100 % util
            model.close_epoch(budget)
        delay = model.queueing_delay(500.0)
        assert delay > 0.0
        # Over-subscription is capped at 2x span.
        assert delay <= 500.0 * 0.6 * 2.0

    def test_single_spike_barely_moves_ema(self):
        model = make_model(queue_threshold=0.75)
        # Many idle windows then one saturated one.
        for _ in range(50):
            budget = model.open_epoch(100.0)
            model.close_epoch(budget)
        budget = model.open_epoch(100.0)
        budget.charge_read(Priority.DEMAND, 640, droppable=False)
        model.close_epoch(budget)
        assert model.queueing_delay(500.0) == 0.0
        assert model.smoothed_read_utilization < 0.25

    def test_last_utilization_tracked(self):
        model = make_model()
        budget = model.open_epoch(100.0)
        budget.charge_read(Priority.DEMAND, 160, droppable=False)
        model.close_epoch(budget)
        assert model.last_read_utilization == pytest.approx(0.5)

    def test_monotone_in_utilization(self):
        def steady_delay(util_bytes: int) -> float:
            model = make_model()
            for _ in range(200):
                budget = model.open_epoch(100.0)
                budget.charge_read(Priority.DEMAND, util_bytes, droppable=False)
                model.close_epoch(budget)
            return model.queueing_delay(500.0)

        assert steady_delay(260) <= steady_delay(300) <= steady_delay(400)
