"""Unit tests for the EBCP control logic (via direct callback driving)."""

from __future__ import annotations

import pytest

from repro.core.prefetcher import EBCPConfig, EpochBasedCorrelationPrefetcher
from repro.engine.config import CacheConfig, ProcessorConfig
from repro.memory.hierarchy import CacheHierarchy
from repro.memory.request import AccessKind

from tests.helpers import make_access


def make_ebcp(**overrides) -> EpochBasedCorrelationPrefetcher:
    config = EBCPConfig(
        prefetch_degree=overrides.pop("prefetch_degree", 4),
        table_entries=overrides.pop("table_entries", 256),
        **overrides,
    )
    pf = EpochBasedCorrelationPrefetcher(config)
    hierarchy = CacheHierarchy(ProcessorConfig.scaled())
    pf.bind(hierarchy)
    return pf


def drive_epochs(pf: EpochBasedCorrelationPrefetcher, epochs: list[list[int]]):
    """Feed a sequence of epochs of miss lines; returns requests per epoch."""
    all_requests = []
    for i, epoch in enumerate(epochs):
        if i > 0:
            pf.on_epoch_boundary(None)
        requests = []
        for j, line in enumerate(epoch):
            access = make_access(line * 64)
            requests.extend(
                pf.observe_offchip_miss(access, line, epoch=None, is_trigger=(j == 0))
            )
        all_requests.append(requests)
    return all_requests


class TestNaming:
    def test_names_by_variant(self):
        assert make_ebcp().name == "ebcp"
        assert make_ebcp(skip_epochs=1).name == "ebcp_minus"
        assert make_ebcp(table_in_memory=False).name == "ebcp_onchip"


class TestConfig:
    def test_addrs_default_tracks_degree(self):
        assert EBCPConfig(prefetch_degree=4).effective_addrs_per_entry == 8
        assert EBCPConfig(prefetch_degree=16).effective_addrs_per_entry == 16

    def test_idealized(self):
        config = EBCPConfig.idealized()
        assert config.prefetch_degree == 32
        assert config.addrs_per_entry == 32
        assert config.table_entries == 1024 * 1024

    def test_timeliness_by_table_location(self):
        assert make_ebcp()._epochs_until_ready == 2
        assert make_ebcp(table_in_memory=False)._epochs_until_ready == 1


class TestLearningAndPrediction:
    def test_predicts_skip2_epochs(self):
        """After training on (A)(B)(C)(D), key A predicts {C, D}."""
        pf = make_ebcp()
        drive_epochs(pf, [[1], [2], [3], [4]])
        pf.on_epoch_boundary(None)  # training fires here (buffer full)
        requests = pf.observe_offchip_miss(make_access(64), 1, None, is_trigger=True)
        assert {r.line_addr for r in requests} == {3, 4}
        assert all(r.epochs_until_ready == 2 for r in requests)

    def test_minus_variant_predicts_next_epoch(self):
        pf = make_ebcp(skip_epochs=1)
        drive_epochs(pf, [[1], [2], [3]])
        pf.on_epoch_boundary(None)
        requests = pf.observe_offchip_miss(make_access(64), 1, None, is_trigger=True)
        assert {r.line_addr for r in requests} == {2, 3}

    def test_only_trigger_looks_up(self):
        pf = make_ebcp()
        drive_epochs(pf, [[1, 5], [2], [3], [4]])
        pf.on_epoch_boundary(None)
        first = pf.observe_offchip_miss(make_access(64), 1, None, is_trigger=True)
        second = pf.observe_offchip_miss(make_access(5 * 64), 5, None, is_trigger=False)
        assert first and not second
        assert pf.lookups_suppressed >= 1

    def test_degree_caps_issue(self):
        pf = make_ebcp(prefetch_degree=2, addrs_per_entry=8)
        drive_epochs(pf, [[1], [2], [10, 11, 12], [13, 14]])
        pf.on_epoch_boundary(None)
        requests = pf.observe_offchip_miss(make_access(64), 1, None, is_trigger=True)
        assert len(requests) == 2

    def test_prefetch_hit_substitutes_as_key(self):
        """Section 3.4.3: a pb hit keys the lookup for a new epoch."""
        pf = make_ebcp()
        drive_epochs(pf, [[1], [2], [3], [4]])
        pf.on_epoch_boundary(None)
        requests = pf.observe_prefetch_hit(
            make_access(64), 1, table_index=None, epoch_index=0, first_in_epoch=True
        )
        assert {r.line_addr for r in requests} == {3, 4}

    def test_stores_not_recorded(self):
        pf = make_ebcp()
        store = make_access(64, kind=AccessKind.STORE)
        pf.observe_offchip_miss(store, 1, None, is_trigger=False)
        assert pf.emab.current_entry == []

    def test_loads_and_ifetches_recorded(self):
        pf = make_ebcp()
        pf.observe_offchip_miss(make_access(64), 1, None, is_trigger=False)
        pf.observe_offchip_miss(
            make_access(128, kind=AccessKind.IFETCH), 2, None, is_trigger=False
        )
        assert pf.emab.current_entry == [1, 2]


class TestTableTraffic:
    def test_lookup_generates_read_traffic(self):
        pf = make_ebcp()
        pf.observe_offchip_miss(make_access(64), 1, None, is_trigger=True)
        assert pf.traffic.lookup_read_bytes == pf.config.entry_bytes

    def test_training_generates_read_and_write(self):
        pf = make_ebcp()
        drive_epochs(pf, [[1], [2], [3], [4]])
        pf.traffic.drain()
        pf.on_epoch_boundary(None)  # training update: one read + one write
        _, update_r, update_w, _ = pf.traffic.drain()
        assert update_r == pf.config.entry_bytes
        assert update_w == pf.config.entry_bytes

    def test_pb_hit_lru_update_writes(self):
        pf = make_ebcp()
        drive_epochs(pf, [[1], [2], [3], [4]])
        pf.on_epoch_boundary(None)
        index = pf.table.index_of(1)
        pf.traffic.drain()
        pf.observe_prefetch_hit(
            make_access(3 * 64), 3, table_index=index, epoch_index=0, first_in_epoch=False
        )
        assert pf.traffic.lru_write_bytes == pf.config.entry_bytes

    def test_onchip_variant_generates_no_traffic(self):
        pf = make_ebcp(table_in_memory=False)
        drive_epochs(pf, [[1], [2], [3], [4]])
        pf.on_epoch_boundary(None)
        pf.observe_offchip_miss(make_access(64), 1, None, is_trigger=True)
        assert pf.traffic.total_read_bytes == 0
        assert pf.traffic.total_write_bytes == 0


class TestResidency:
    def test_inactive_when_memory_exhausted(self):
        pf = EpochBasedCorrelationPrefetcher(EBCPConfig(table_entries=1024))
        hierarchy = CacheHierarchy(ProcessorConfig.scaled())
        hierarchy.memory.allocate(hierarchy.memory.free_bytes)  # OS has nothing left
        pf.bind(hierarchy)
        assert not pf.is_active
        assert pf.observe_offchip_miss(make_access(64), 1, None, True) == []

    def test_reactivation(self):
        pf = EpochBasedCorrelationPrefetcher(EBCPConfig(table_entries=1024))
        hierarchy = CacheHierarchy(ProcessorConfig.scaled())
        pf.bind(hierarchy)
        pf.deactivate()
        assert not pf.is_active
        pf.reactivate(hierarchy)
        assert pf.is_active

    def test_deactivation_drops_learned_state(self):
        pf = make_ebcp()
        drive_epochs(pf, [[1], [2], [3], [4]])
        pf.on_epoch_boundary(None)
        pf.deactivate()
        assert pf.table.live_entries == 0


class TestCostReporting:
    def test_memory_table_cost(self):
        pf = make_ebcp(table_entries=1024)
        assert pf.memory_table_bytes == 1024 * 64
        # On-chip cost is tiny: just the EMAB and control.
        assert pf.onchip_storage_bytes < 2048

    def test_onchip_variant_cost(self):
        pf = make_ebcp(table_in_memory=False, table_entries=1024)
        assert pf.memory_table_bytes == 0
        assert pf.onchip_storage_bytes > 1024 * 64
