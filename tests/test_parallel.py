"""repro.parallel: job specs, the pool primitive, and the parallel runner."""

from __future__ import annotations

import logging
import pickle

import pytest

import repro.resilience.executor as executor_mod
from repro.analysis.sweep import SweepRunner
from repro.engine.config import ProcessorConfig
from repro.parallel import JobSpec, ParallelSweepRunner, resolve_jobs, run_jobs
from repro.prefetchers.registry import PREFETCHERS, build_prefetcher

RECORDS = 4_000
WORKLOADS = ("tpcw", "database")


def _spec(workload: str = "tpcw", prefetcher: str | None = "ebcp") -> JobSpec:
    return JobSpec(
        workload=workload,
        records=RECORDS,
        seed=7,
        config=ProcessorConfig.scaled(),
        prefetcher=None if prefetcher is None else build_prefetcher(prefetcher),
        label=prefetcher or "baseline",
    )


class TestResolveJobs:
    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_defaults_to_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs() == 4

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) >= 1

    def test_bad_env_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert resolve_jobs() == 1

    def test_negative_clamped(self):
        assert resolve_jobs(-3) == 1


class TestJobSpec:
    @pytest.mark.parametrize("name", PREFETCHERS)
    def test_every_registered_prefetcher_pickles(self, name):
        spec = _spec(prefetcher=None if name == "none" else name)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.workload == spec.workload
        assert clone.run().stats.to_dict() == spec.run().stats.to_dict()

    def test_cmp_spec_builds_interleaved_trace(self):
        spec = JobSpec(
            workload="tpcw",
            records=2_000,
            seed=7,
            config=ProcessorConfig.scaled(),
            n_threads=2,
        )
        trace = spec.build_trace()
        assert trace.n_threads == 2
        assert len(trace) == 2 * 2_000


class TestRunJobs:
    def test_parallel_matches_sequential_in_order(self):
        specs = [
            _spec(w, p) for w in WORKLOADS for p in (None, "ebcp", "stream")
        ]
        sequential = run_jobs(specs, jobs=1)
        parallel = run_jobs(specs, jobs=2)
        assert len(parallel) == len(specs)
        for seq, par in zip(sequential, parallel):
            assert seq.stats.to_dict() == par.stats.to_dict()

    def test_unpicklable_specs_fall_back_in_process(self, monkeypatch, caplog):
        # Force the pool so the pickle boundary is reached even on a
        # single-core machine (where run_jobs would skip it outright).
        monkeypatch.setenv("REPRO_FORCE_POOL", "1")
        spec = _spec()
        spec.prefetcher.poison = lambda: None  # lambdas don't pickle
        with caplog.at_level(logging.WARNING, logger="repro.resilience.executor"):
            results = run_jobs([spec, _spec(prefetcher=None)], jobs=2)
        assert any("not picklable" in rec.message for rec in caplog.records)
        assert len(results) == 2

    def test_broken_pool_falls_back_in_process(self, monkeypatch, caplog):
        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no process pool here")

        monkeypatch.setenv("REPRO_FORCE_POOL", "1")
        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", ExplodingPool)
        specs = [_spec(prefetcher=None), _spec()]
        with caplog.at_level(logging.WARNING, logger="repro.resilience.executor"):
            results = run_jobs(specs, jobs=2)
        assert any("unavailable" in rec.message for rec in caplog.records)
        assert [r.stats.to_dict() for r in results] == [
            s.run().stats.to_dict() for s in specs
        ]

    def test_single_core_machine_skips_the_pool(self, monkeypatch, caplog):
        """On 1 core a pool is pure overhead; run_jobs goes in-process."""

        class MustNotStart:
            def __init__(self, *args, **kwargs):
                raise AssertionError("pool started on a single-core machine")

        monkeypatch.delenv("REPRO_FORCE_POOL", raising=False)
        monkeypatch.setattr(executor_mod.os, "cpu_count", lambda: 1)
        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", MustNotStart)
        with caplog.at_level(logging.INFO, logger="repro.resilience.executor"):
            results = run_jobs([_spec(prefetcher=None), _spec()], jobs=2)
        assert any("in-process" in rec.message for rec in caplog.records)
        assert len(results) == 2

    def test_force_pool_overrides_single_core_fallback(self, monkeypatch):
        started = []

        class RecordingPool:
            def __init__(self, *args, **kwargs):
                started.append(True)
                raise OSError("stop here; starting was the point")

        monkeypatch.setenv("REPRO_FORCE_POOL", "1")
        monkeypatch.setattr(executor_mod.os, "cpu_count", lambda: 1)
        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", RecordingPool)
        run_jobs([_spec(prefetcher=None), _spec(prefetcher=None)], jobs=2)
        assert started

    def test_compressed_flag_is_bit_identical(self):
        fast = _spec()
        fast.compressed = True
        legacy = _spec()
        legacy.compressed = False
        assert fast.run().stats.to_dict() == legacy.run().stats.to_dict()

    def test_simulation_errors_propagate(self):
        bad = _spec()
        bad.workload = "no-such-workload"
        with pytest.raises(KeyError):
            run_jobs([bad], jobs=1)


class TestParallelSweepRunner:
    def test_matches_sequential_sweep_bit_for_bit(self):
        labels = ["2", "4"]
        config = ProcessorConfig.scaled()

        def factory(label):
            return build_prefetcher("ebcp", prefetch_degree=int(label))

        sequential = SweepRunner(records=RECORDS, workloads=WORKLOADS).sweep(
            labels, factory, config=config
        )
        parallel = ParallelSweepRunner(
            records=RECORDS, workloads=WORKLOADS, jobs=2
        ).sweep(labels, factory, config=config)

        assert list(sequential) == list(parallel)
        for workload in sequential:
            for seq, par in zip(sequential[workload], parallel[workload]):
                assert seq.label == par.label
                assert seq.result.stats.to_dict() == par.result.stats.to_dict()
                assert seq.baseline.stats.to_dict() == par.baseline.stats.to_dict()

    def test_shared_baselines_deduplicated(self, monkeypatch):
        """One fixed config -> one baseline job per workload, however many labels."""
        submitted = []
        real_run_jobs = run_jobs

        def counting_run_jobs(specs, jobs=None, **kwargs):
            submitted.extend(specs)
            return real_run_jobs(specs, 1)

        import repro.parallel.runner as runner_mod

        monkeypatch.setattr(runner_mod, "run_jobs", counting_run_jobs)
        runner = ParallelSweepRunner(records=RECORDS, workloads=WORKLOADS, jobs=2)
        runner.sweep(
            ["2", "4", "6"],
            lambda label: build_prefetcher("ebcp", prefetch_degree=int(label)),
            config=ProcessorConfig.scaled(),
        )
        baselines = [s for s in submitted if s.prefetcher is None]
        assert len(baselines) == len(WORKLOADS)
        assert len(submitted) == len(WORKLOADS) * (3 + 1)
        assert len(runner.baseline_memo) == len(WORKLOADS)

    def test_baseline_memo_shared_with_sequential_runner(self):
        """SweepRunner(jobs=2) fills the same memo its sequential path uses."""
        runner = SweepRunner(records=RECORDS, workloads=WORKLOADS)
        config = ProcessorConfig.scaled()
        runner.sweep(
            ["2"],
            lambda label: build_prefetcher("ebcp", prefetch_degree=int(label)),
            config=config,
            jobs=2,
        )
        assert len(runner._baselines) == len(WORKLOADS)
        # The sequential baseline path now hits the memo, not the simulator.
        memoised = runner._baselines[("tpcw", config.fingerprint())]
        assert runner.baseline("tpcw", config) is memoised

    def test_requires_exactly_one_config_source(self):
        runner = ParallelSweepRunner(records=RECORDS, workloads=WORKLOADS)
        with pytest.raises(ValueError):
            runner.sweep(["2"], lambda label: None)
        with pytest.raises(ValueError):
            runner.sweep(
                ["2"],
                lambda label: None,
                config=ProcessorConfig.scaled(),
                config_factory=lambda label: ProcessorConfig.scaled(),
            )
