"""Tests for epoch tracking and window-termination rules."""

from __future__ import annotations

import pytest

from repro.engine.epoch import Epoch, EpochTracker
from repro.memory.request import AccessKind

from tests.helpers import make_access


def open_epoch(tracker: EpochTracker, line=1, inst=0, kind=AccessKind.LOAD):
    access = make_access(line * 64, kind=kind, inst_index=inst)
    closed, epoch = tracker.open_new(access, line, "first_miss")
    return closed, epoch


class TestMembership:
    def test_first_miss_cannot_join(self):
        tracker = EpochTracker(rob_size=128)
        joins, reason = tracker.can_join(make_access(0), mshr_ok=True)
        assert not joins and reason == "first_miss"

    def test_overlapping_miss_joins(self):
        tracker = EpochTracker(rob_size=128)
        open_epoch(tracker, inst=0)
        joins, _ = tracker.can_join(make_access(64, inst_index=50), mshr_ok=True)
        assert joins

    def test_serial_miss_never_joins(self):
        tracker = EpochTracker(rob_size=128)
        open_epoch(tracker, inst=0)
        joins, reason = tracker.can_join(
            make_access(64, serial=True, inst_index=10), mshr_ok=True
        )
        assert not joins and reason == "serial_dependence"

    def test_rob_window_bound(self):
        tracker = EpochTracker(rob_size=128)
        open_epoch(tracker, inst=0)
        joins, _ = tracker.can_join(make_access(64, inst_index=128), mshr_ok=True)
        assert joins  # exactly at the window edge still joins
        joins, reason = tracker.can_join(make_access(64, inst_index=129), mshr_ok=True)
        assert not joins and reason == "rob_window"

    def test_mshr_full_blocks(self):
        tracker = EpochTracker(rob_size=128)
        open_epoch(tracker, inst=0)
        joins, reason = tracker.can_join(make_access(64, inst_index=10), mshr_ok=False)
        assert not joins and reason == "mshr_full"

    def test_instruction_miss_seals_epoch(self):
        tracker = EpochTracker(rob_size=128)
        _, epoch = open_epoch(tracker, inst=0)
        tracker.join(make_access(64, kind=AccessKind.IFETCH, inst_index=5), 1)
        assert epoch.sealed
        joins, reason = tracker.can_join(make_access(128, inst_index=10), mshr_ok=True)
        assert not joins and reason == "instruction_miss_seal"

    def test_ifetch_trigger_seals_immediately(self):
        tracker = EpochTracker(rob_size=128)
        _, epoch = open_epoch(tracker, kind=AccessKind.IFETCH)
        assert epoch.sealed


class TestLifecycle:
    def test_epoch_count_increments(self):
        tracker = EpochTracker(rob_size=128)
        open_epoch(tracker)
        open_epoch(tracker, inst=1000)
        assert tracker.epoch_count == 2

    def test_open_new_returns_closed_epoch(self):
        tracker = EpochTracker(rob_size=128)
        _, first = open_epoch(tracker, inst=0)
        closed, second = open_epoch(tracker, inst=500)
        assert closed is first
        assert closed.close_inst == 500
        assert second.index == 1

    def test_join_accumulates_misses(self):
        tracker = EpochTracker(rob_size=128)
        _, epoch = open_epoch(tracker)
        tracker.join(make_access(64, inst_index=5), 1)
        tracker.join(make_access(128, inst_index=10), 2)
        assert epoch.n_misses == 3
        assert epoch.miss_lines == [1, 1, 2]  # trigger recorded with its line

    def test_close_without_open(self):
        tracker = EpochTracker(rob_size=128)
        assert tracker.close(0) is None

    def test_termination_reasons_census(self):
        tracker = EpochTracker(rob_size=128)
        open_epoch(tracker)
        access = make_access(64, serial=True, inst_index=10)
        tracker.open_new(access, 1, "serial_dependence")
        assert tracker.termination_reasons["serial_dependence"] == 1

    def test_rejects_bad_rob(self):
        with pytest.raises(ValueError):
            EpochTracker(0)


class TestEpochRecord:
    def test_trigger_fields(self):
        tracker = EpochTracker(rob_size=128)
        access = make_access(0x1000, pc=0x42, inst_index=7)
        _, epoch = tracker.open_new(access, 0x1000 >> 6, "first_miss")
        assert epoch.trigger_line == 0x1000 >> 6
        assert epoch.trigger_pc == 0x42
        assert epoch.trigger_inst == 7
        assert epoch.trigger_kind is AccessKind.LOAD

    def test_add_miss_kinds(self):
        epoch = Epoch(0, 1, AccessKind.LOAD, 0, 0)
        epoch.add_miss(1, AccessKind.LOAD)
        epoch.add_miss(2, AccessKind.IFETCH)
        assert epoch.miss_kinds == [AccessKind.LOAD, AccessKind.IFETCH]
        assert epoch.sealed
