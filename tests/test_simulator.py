"""Tests for the epoch-model timing simulator."""

from __future__ import annotations

import pytest

from repro.engine.config import CacheConfig, ProcessorConfig
from repro.engine.simulator import EpochSimulator
from repro.memory.request import AccessKind, PrefetchRequest
from repro.prefetchers.base import Prefetcher
from repro.workloads.trace import TraceBuilder, TraceMeta


def sim_config(**overrides) -> ProcessorConfig:
    base = ProcessorConfig(
        l1i=CacheConfig(4 * 1024, 4, 64, 3),
        l1d=CacheConfig(4 * 1024, 4, 64, 3),
        l2=CacheConfig(16 * 1024, 4, 64, 20),
        cpi_perf=1.0,
        overlap=0.0,
    )
    return base.replace(**overrides) if overrides else base


def run(builder: TraceBuilder, config=None, prefetcher=None, warmup=0):
    sim = EpochSimulator(config or sim_config(), prefetcher)
    return sim.run(builder.build(), warmup_records=warmup)


def cold_load(builder, line, gap):
    builder.load(0x100, 0x100_0000 + line * 64, gap=gap)


class TestEpochPartitioning:
    def test_overlapping_burst_is_one_epoch(self, builder):
        for i, gap in enumerate((300, 10, 10)):
            cold_load(builder, i, gap)
        result = run(builder)
        assert result.stats.epochs == 1
        assert result.stats.total_offchip_misses == 3

    def test_two_bursts_two_epochs(self, builder):
        for i, gap in enumerate((300, 10, 10, 300, 10)):
            cold_load(builder, i, gap)
        assert run(builder).stats.epochs == 2

    def test_serial_misses_each_epoch(self, builder):
        for i in range(4):
            builder.load(0x100, 0x100_0000 + i * 64, gap=30, serial=True)
        assert run(builder).stats.epochs == 4

    def test_rob_window_splits(self, builder):
        cold_load(builder, 0, 300)
        cold_load(builder, 1, 129)  # beyond the 128-inst window
        assert run(builder).stats.epochs == 2

    def test_within_rob_window_joins(self, builder):
        cold_load(builder, 0, 300)
        cold_load(builder, 1, 100)
        assert run(builder).stats.epochs == 1

    def test_instruction_miss_seals(self, builder):
        builder.ifetch(0x200_0000, gap=300)
        cold_load(builder, 0, 10)  # would overlap, but the ifetch sealed
        assert run(builder).stats.epochs == 2

    def test_load_then_ifetch_joins_then_seals(self, builder):
        cold_load(builder, 0, 300)
        builder.ifetch(0x200_0000, gap=10)  # joins, then seals
        cold_load(builder, 1, 10)
        assert run(builder).stats.epochs == 2

    def test_mshr_limit_splits(self, builder):
        config = sim_config(l2_mshrs=2)
        for i, gap in enumerate((300, 5, 5, 5)):
            cold_load(builder, i, gap)
        assert run(builder, config).stats.epochs == 2

    def test_store_misses_never_epoch(self, builder):
        builder.store(0x100, 0x100_0000, gap=300)
        builder.store(0x100, 0x100_0040, gap=300)
        result = run(builder)
        assert result.stats.epochs == 0
        assert result.stats.offchip_misses[AccessKind.STORE] == 2

    def test_termination_reason_census(self, builder):
        for i in range(3):
            builder.load(0x100, 0x100_0000 + i * 64, gap=30, serial=True)
        cold_load(builder, 10, 400)
        result = run(builder)
        assert result.stats.termination_reasons.get("serial_dependence", 0) >= 2


class TestHitAccounting:
    def test_l1_and_l2_hits(self, builder):
        cold_load(builder, 0, 10)  # off-chip
        cold_load(builder, 0, 10)  # L1 hit
        result = run(builder)
        assert result.stats.l1d_hits == 1
        assert result.stats.total_offchip_misses == 1

    def test_l2_hit_after_l1_eviction(self, builder):
        cold_load(builder, 0, 10)
        for k in range(1, 5):  # evict line 0 from the 64-line L1D set 0
            cold_load(builder, 16 * k, 10)
        cold_load(builder, 0, 10)
        result = run(builder)
        assert result.stats.l2_hits == 1


class TestTiming:
    def test_cycle_equation_exact(self, builder):
        # Two isolated epochs, 1000 instructions total, cpi_perf=1,
        # overlap=0 -> cycles = 1000 + 2*500.
        cold_load(builder, 0, 500)
        cold_load(builder, 1, 500)
        result = run(builder)
        assert result.stats.instructions == 1000
        assert result.cycles == pytest.approx(1000 + 2 * 500)
        assert result.cpi == pytest.approx(2.0)

    def test_overlap_scales_onchip_cycles(self, builder):
        cold_load(builder, 0, 1000)
        config = sim_config(overlap=0.5)
        result = run(builder, config)
        assert result.onchip_cycles == pytest.approx(500.0)

    def test_epochs_per_kilo_inst(self, builder):
        for i in range(4):
            cold_load(builder, i, 250)
        result = run(builder)
        assert result.epochs_per_kilo_inst == pytest.approx(4.0)


class TestWarmup:
    def test_warmup_excluded_from_stats(self, builder):
        for i in range(10):
            cold_load(builder, i, 300)
        result = run(builder, warmup=6)
        assert result.stats.epochs == 4
        assert result.stats.instructions == 4 * 300

    def test_default_warmup_is_30_percent(self, builder):
        for i in range(10):
            cold_load(builder, i, 300)
        sim = EpochSimulator(sim_config())
        result = sim.run(builder.build())
        assert result.stats.epochs == 7


class _ScriptedPrefetcher(Prefetcher):
    """Issues a scripted list of (on_miss_line -> prefetch lines)."""

    name = "scripted"

    def __init__(self, script, epochs_until_ready=1):
        super().__init__()
        self.script = script
        self.epochs_until_ready = epochs_until_ready

    def observe_offchip_miss(self, access, line, epoch, is_trigger):
        return [
            self.make_request(target, epochs_until_ready=self.epochs_until_ready)
            for target in self.script.get(line, [])
        ]


class TestPrefetchLifecycle:
    BASE = 0x100_0000 // 64

    def test_timely_prefetch_averted(self, builder):
        # Miss on line B triggers prefetch of C; C demanded 600 insts
        # (=600 cycles on-chip + 500 stall) later -> ready (1 * 500).
        cold_load(builder, 0, 300)
        cold_load(builder, 1, 600)
        pf = _ScriptedPrefetcher({self.BASE + 0: [self.BASE + 1]})
        result = run(builder, prefetcher=pf)
        assert result.stats.total_prefetch_hits == 1
        assert result.stats.epochs == 1
        assert result.coverage == pytest.approx(0.5)

    def test_late_prefetch_not_averted(self, builder):
        # C demanded only 100 insts after B while the line needs 500
        # cycles; B's stall does NOT help C (same epoch).
        cold_load(builder, 0, 300)
        cold_load(builder, 1, 100)
        pf = _ScriptedPrefetcher({self.BASE + 0: [self.BASE + 1]})
        result = run(builder, prefetcher=pf)
        assert result.stats.total_prefetch_hits == 0
        assert result.stats.late_prefetches == 1

    def test_next_epoch_stall_hides_latency(self, builder):
        # C demanded in the NEXT epoch (gap 200 > ROB): B's 500-cycle
        # stall elapses first, so the prefetch arrives in time.
        cold_load(builder, 0, 300)
        cold_load(builder, 1, 200)
        pf = _ScriptedPrefetcher({self.BASE + 0: [self.BASE + 1]})
        result = run(builder, prefetcher=pf)
        assert result.stats.total_prefetch_hits == 1

    def test_memory_table_needs_two_epochs(self, builder):
        # Same shape, but epochs_until_ready=2 (main-memory table): one
        # following epoch is not enough...
        cold_load(builder, 0, 300)
        cold_load(builder, 1, 200)
        pf = _ScriptedPrefetcher({self.BASE + 0: [self.BASE + 1]}, epochs_until_ready=2)
        result = run(builder, prefetcher=pf)
        assert result.stats.total_prefetch_hits == 0

    def test_memory_table_timely_two_epochs_out(self, builder):
        # ...but two following epochs are.
        cold_load(builder, 0, 300)
        cold_load(builder, 100, 200)
        cold_load(builder, 1, 200)
        pf = _ScriptedPrefetcher({self.BASE + 0: [self.BASE + 1]}, epochs_until_ready=2)
        result = run(builder, prefetcher=pf)
        assert result.stats.total_prefetch_hits == 1

    def test_redundant_prefetch_counted(self, builder):
        cold_load(builder, 1, 300)  # line already brought on-chip
        cold_load(builder, 0, 300)
        pf = _ScriptedPrefetcher({self.BASE + 0: [self.BASE + 1]})
        result = run(builder, prefetcher=pf)
        assert result.stats.prefetches_redundant == 1

    def test_prefetch_fill_charged_to_bus(self, builder):
        cold_load(builder, 0, 300)
        cold_load(builder, 1, 600)
        pf = _ScriptedPrefetcher({self.BASE + 0: [self.BASE + 1]})
        result = run(builder, prefetcher=pf)
        assert result.stats.prefetches_filled == 1
        # One demand line (the trigger) + one prefetched line; the second
        # access was averted so it never issued a demand fill.
        assert result.stats.read_bytes == 2 * 64

    def test_bandwidth_starvation_drops(self, builder):
        # A bus that moves ~0.003 B/cycle cannot carry 16 prefetches.
        config = sim_config(read_bw_gbps=0.01, write_bw_gbps=0.01)
        cold_load(builder, 0, 300)
        for i in range(1, 40):
            cold_load(builder, 100 + i, 300)
        pf = _ScriptedPrefetcher(
            {self.BASE + 0: [self.BASE + 1000 + i for i in range(16)]}
        )
        result = run(builder, config, prefetcher=pf)
        assert result.stats.prefetches_dropped > 0
