"""Tests for the main-memory correlation table."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.correlation_table import CorrelationTable
from repro.memory.main_memory import MainMemory, OutOfMemoryError


def make_table(n_entries=1024, addrs=4, **kwargs):
    return CorrelationTable(n_entries=n_entries, addrs_per_entry=addrs, **kwargs)


class TestLookup:
    def test_miss_on_empty(self):
        table = make_table()
        assert table.lookup(5) is None
        assert table.stats.lookups == 1 and table.stats.lookup_hits == 0

    def test_train_then_lookup(self):
        table = make_table()
        table.train(5, [10, 11, 12])
        index, lines = table.lookup(5)
        assert index == table.index_of(5)
        assert set(lines) == {10, 11, 12}

    def test_lookup_mru_first(self):
        table = make_table()
        table.train(5, [10, 11])
        table.touch(table.index_of(5), 10)  # 10 becomes MRU
        _, lines = table.lookup(5)
        assert lines[0] == 10

    def test_tag_mismatch_is_miss(self):
        table = make_table(n_entries=1)  # everything collides
        table.train(5, [10])
        assert table.lookup(6) is None


class TestTraining:
    def test_allocate_caps_payload(self):
        table = make_table(addrs=3)
        table.train(5, [10, 11, 12, 13, 14])
        _, lines = table.lookup(5)
        # Older-epoch addresses (payload front) win the capped slots.
        assert set(lines) == {10, 11, 12}

    def test_update_refreshes_existing(self):
        table = make_table(addrs=4)
        table.train(5, [10, 11])
        table.train(5, [11, 12])
        _, lines = table.lookup(5)
        assert set(lines) == {10, 11, 12}

    def test_lru_replacement_within_entry(self):
        table = make_table(addrs=2)
        table.train(5, [10, 11])
        table.touch(table.index_of(5), 10)  # 11 is now LRU
        table.train(5, [12])
        _, lines = table.lookup(5)
        assert set(lines) == {10, 12}
        assert table.stats.address_replacements == 1

    def test_same_batch_addresses_protected(self):
        """One training step's payload never evicts itself."""
        table = make_table(addrs=2)
        table.train(5, [10, 11])
        table.train(5, [20, 21, 22])  # 22 exceeds capacity: dropped, not 20/21
        _, lines = table.lookup(5)
        assert set(lines) == {20, 21}

    def test_conflict_overwrites_entry(self):
        table = make_table(n_entries=1)
        table.train(5, [10])
        table.train(6, [20])
        assert table.lookup(5) is None
        _, lines = table.lookup(6)
        assert lines == [20]
        assert table.stats.tag_conflicts == 1

    def test_useful_address_survives_retraining(self):
        """The paper's dynamic depth/width adaptation: prefetch-buffer
        hits keep useful addresses MRU so retraining replaces the rest."""
        table = make_table(addrs=2)
        table.train(5, [10, 11])
        index = table.index_of(5)
        table.touch(index, 10)
        table.touch(index, 10)
        table.train(5, [30])  # replaces LRU (11), never 10
        _, lines = table.lookup(5)
        assert 10 in lines and 30 in lines


class TestTouch:
    def test_touch_present(self):
        table = make_table()
        table.train(5, [10])
        assert table.touch(table.index_of(5), 10)

    def test_touch_absent_address(self):
        table = make_table()
        table.train(5, [10])
        assert not table.touch(table.index_of(5), 99)

    def test_touch_bad_index(self):
        assert not make_table().touch(-1, 10)
        assert not make_table(n_entries=4).touch(4, 10)


class TestResidency:
    def test_attach_allocates_physical_region(self):
        memory = MainMemory(size_bytes=1 << 26)
        table = make_table(n_entries=1024, memory=memory)
        assert table.is_resident
        assert table.allocation.size >= table.size_bytes
        assert memory.owns(table.entry_physical_address(0)) == table.allocation
        assert (
            table.entry_physical_address(1) - table.entry_physical_address(0)
            == table.entry_bytes
        )

    def test_detach_loses_state(self):
        memory = MainMemory(size_bytes=1 << 26)
        table = make_table(memory=memory)
        table.train(5, [10])
        table.detach_memory()
        assert not table.is_resident
        assert table.lookup(5) is None

    def test_unbacked_physical_address_raises(self):
        with pytest.raises(OutOfMemoryError):
            make_table().entry_physical_address(0)

    def test_size_bytes(self):
        assert make_table(n_entries=1024).size_bytes == 1024 * 64


class TestValidation:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            CorrelationTable(0)
        with pytest.raises(ValueError):
            CorrelationTable(16, addrs_per_entry=0)

    def test_live_entries(self):
        table = make_table()
        assert table.live_entries == 0
        table.train(5, [10])
        assert table.live_entries == 1


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 200),
                st.lists(st.integers(0, 500), min_size=1, max_size=10),
            ),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_entry_capacity_invariant(self, trainings):
        table = CorrelationTable(n_entries=64, addrs_per_entry=4)
        for key, payload in trainings:
            table.train(key, payload)
        for index in range(table.n_entries):
            entry = table.entry_at(index)
            if entry is not None:
                assert len(entry.addrs) <= 4

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_index_in_range(self, keys):
        table = CorrelationTable(n_entries=37)  # non power of two
        for key in keys:
            assert 0 <= table.index_of(key) < 37

    @given(st.integers(0, 1 << 40))
    @settings(max_examples=100, deadline=None)
    def test_index_deterministic(self, key):
        table = CorrelationTable(n_entries=1024)
        assert table.index_of(key) == table.index_of(key)
