"""Tests for the MSHR file."""

from __future__ import annotations

import pytest

from repro.memory.mshr import MSHRFile


class TestAllocate:
    def test_allocates_until_full(self):
        mshrs = MSHRFile(2)
        assert mshrs.allocate(1)
        assert mshrs.allocate(2)
        assert mshrs.is_full
        assert not mshrs.allocate(3)
        assert mshrs.stats.full_stalls == 1

    def test_merge_does_not_consume_entry(self):
        mshrs = MSHRFile(1)
        assert mshrs.allocate(5)
        assert mshrs.allocate(5)  # secondary miss merges
        assert mshrs.stats.merges == 1
        assert mshrs.outstanding == 1

    def test_merge_allowed_when_full(self):
        mshrs = MSHRFile(1)
        mshrs.allocate(5)
        assert mshrs.is_full
        assert mshrs.allocate(5)  # merge into existing entry still works

    def test_has(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(9)
        assert mshrs.has(9)
        assert not mshrs.has(10)


class TestDrain:
    def test_drain_releases_all(self):
        mshrs = MSHRFile(4)
        for line in range(3):
            mshrs.allocate(line)
        assert mshrs.drain() == 3
        assert mshrs.outstanding == 0
        assert not mshrs.is_full

    def test_drain_empty(self):
        assert MSHRFile(4).drain() == 0

    def test_reusable_after_drain(self):
        mshrs = MSHRFile(1)
        mshrs.allocate(1)
        mshrs.drain()
        assert mshrs.allocate(2)


def test_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        MSHRFile(0)
