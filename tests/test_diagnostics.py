"""Tests for the diagnostics module."""

from __future__ import annotations

import pytest

from repro.analysis.diagnostics import (
    bus_breakdown,
    miss_mix,
    prefetch_lifecycle,
    render_diagnostics,
    termination_census,
)
from repro.engine.config import ProcessorConfig
from repro.engine.simulator import EpochSimulator
from repro.prefetchers.registry import build_prefetcher
from repro.workloads.synthetic import pointer_chase


@pytest.fixture(scope="module")
def run():
    trace = pointer_chase(unique_lines=12_000, records=20_000)
    sim = EpochSimulator(ProcessorConfig.scaled(), build_prefetcher("ebcp"))
    result = sim.run(trace, warmup_records=6000)
    return sim, result


class TestCensus:
    def test_pointer_chase_is_all_serial(self, run):
        _, result = run
        census = termination_census(result)
        reasons = {reason: fraction for reason, _, fraction in census}
        assert reasons.get("serial_dependence", 0) > 0.95

    def test_fractions_sum_to_one(self, run):
        _, result = run
        census = termination_census(result)
        assert sum(fraction for _, _, fraction in census) == pytest.approx(1.0)


class TestMixAndLifecycle:
    def test_miss_mix_rows(self, run):
        _, result = run
        rows = {kind: (misses, averted) for kind, misses, averted in miss_mix(result)}
        assert rows["load"][0] > 0
        assert rows["ifetch"] == (0, 0)
        assert rows["store"] == (0, 0)

    def test_lifecycle_consistency(self, run):
        _, result = run
        lifecycle = prefetch_lifecycle(run[1])
        assert lifecycle["used (averted misses)"] <= lifecycle["staged (bus)"]
        assert (
            lifecycle["staged (bus)"]
            + lifecycle["dropped (bandwidth)"]
            + lifecycle["redundant (on-chip)"]
            <= lifecycle["generated"]
        )


class TestBusAndRender:
    def test_bus_breakdown_has_table_traffic(self, run):
        sim, _ = run
        rows = bus_breakdown(sim.bandwidth)
        priorities = {(bus, prio) for bus, prio, _, _ in rows}
        assert ("read", "demand") in priorities
        assert ("read", "table_lookup") in priorities  # EBCP's in-memory table
        assert ("write", "table_update") in priorities

    def test_render_contains_all_sections(self, run):
        sim, result = run
        text = render_diagnostics(result, sim.bandwidth)
        for heading in (
            "Window-termination census",
            "Miss mix",
            "Prefetch lifecycle",
            "Bus traffic by priority",
            "utilisation",
        ):
            assert heading in text

    def test_render_without_bandwidth(self, run):
        _, result = run
        text = render_diagnostics(result)
        assert "Bus traffic" not in text
        assert "Miss mix" in text
