"""Tests for the named EBCP variant factories."""

from __future__ import annotations

from repro.core.variants import make_ebcp, make_ebcp_minus, make_ebcp_onchip
from repro.prefetchers.registry import PREFETCHERS, build_prefetcher


class TestFactories:
    def test_tuned_defaults(self):
        pf = make_ebcp()
        assert pf.name == "ebcp"
        assert pf.config.prefetch_degree == 8
        assert pf.config.table_entries == 128 * 1024
        assert pf.config.skip_epochs == 2
        assert pf.config.table_in_memory

    def test_minus_variant(self):
        pf = make_ebcp_minus()
        assert pf.name == "ebcp_minus"
        assert pf.config.skip_epochs == 1
        assert pf.emab.depth == 3  # skip 1 + store 2

    def test_onchip_variant(self):
        pf = make_ebcp_onchip()
        assert pf.name == "ebcp_onchip"
        assert not pf.config.table_in_memory
        assert pf.memory_table_bytes == 0
        assert pf.is_active  # no OS allocation needed

    def test_overrides_forwarded(self):
        pf = make_ebcp(prefetch_degree=16, table_entries=4096)
        assert pf.config.prefetch_degree == 16
        assert pf.table.n_entries == 4096


class TestRegistryIntegration:
    def test_all_registered_names_build(self):
        for name in PREFETCHERS:
            pf = build_prefetcher(name)
            assert pf.name == name or name == "none"

    def test_unknown_name(self):
        import pytest

        with pytest.raises(KeyError):
            build_prefetcher("markov_2000")

    def test_registry_covers_figure9(self):
        from repro.experiments.figure9 import SCHEMES

        for scheme in SCHEMES:
            assert scheme in PREFETCHERS
