"""Unit tests for the experiment result containers and helpers."""

from __future__ import annotations

import pytest

from repro.engine.config import ProcessorConfig
from repro.experiments.common import (
    FigureResult,
    TableResult,
    bandwidth_config,
    default_config,
    idealized_config,
    make_sweep_ebcp,
    memoized,
)


class TestFigureResult:
    def make(self):
        return FigureResult(
            figure_id="Fig X",
            title="demo",
            x_label="degree",
            x_values=(1, 2, 4),
            series={"db": [0.1, 0.2, 0.3], "web": [0.0, 0.05, 0.1]},
        )

    def test_value_lookup(self):
        fig = self.make()
        assert fig.value("db", 2) == 0.2
        assert fig.value("web", 4) == 0.1

    def test_value_unknown_x(self):
        with pytest.raises(ValueError):
            self.make().value("db", 99)

    def test_render_contains_series(self):
        text = self.make().render()
        assert "Fig X" in text
        assert "db" in text and "web" in text
        assert "+20.0%" in text


class TestTableResult:
    def test_render(self):
        table = TableResult("Table T", "demo", ["a", "b"], [["x", "1"], ["y", "2"]])
        text = table.render()
        assert "Table T" in text and "x" in text and "2" in text


class TestConfigs:
    def test_default_is_scaled(self):
        assert default_config().l2.size_bytes == ProcessorConfig.scaled().l2.size_bytes

    def test_default_with_overrides(self):
        config = default_config(prefetch_buffer_entries=128)
        assert config.prefetch_buffer_entries == 128

    def test_idealized_buffer(self):
        assert idealized_config().prefetch_buffer_entries == 1024

    def test_bandwidth_config(self):
        config = bandwidth_config(3.2, 1.6)
        assert config.read_bw_gbps == 3.2
        assert config.write_bw_gbps == 1.6
        assert config.prefetch_buffer_entries == 1024


class TestSweepEBCP:
    def test_idealized_defaults(self):
        pf = make_sweep_ebcp(degree=16)
        assert pf.config.prefetch_degree == 16
        assert pf.config.effective_addrs_per_entry == 32
        assert pf.config.table_entries == 1024 * 1024

    def test_small_entry_keeps_64b(self):
        pf = make_sweep_ebcp(degree=4, addrs_per_entry=8)
        assert pf.config.entry_bytes == 64


class TestMemo:
    def test_memoized_computes_once(self):
        calls = []

        def compute():
            calls.append(1)
            return "value"

        key = ("test_memo_unique_key", 1)
        assert memoized(key, compute) == "value"
        assert memoized(key, compute) == "value"
        assert len(calls) == 1
