"""repro.resilience: ExecutionPolicy, fault injection, retry, checkpoints.

Every scenario asserts the executor's core invariant: whatever faults
fire along the way, the surviving results are bit-identical to a clean
sequential run.
"""

from __future__ import annotations

import pickle

import pytest

import repro.resilience.faults as faults_mod
import repro.resilience.executor as executor_mod
from repro.engine.config import ProcessorConfig
from repro.obs import EventBus
from repro.obs.events import (
    ExecutionDegraded,
    JobResumed,
    JobRetried,
    JobTimedOut,
    WorkerCrashed,
)
from repro.obs.metrics import ResilienceMetrics
from repro.parallel import JobSpec, run_jobs
from repro.prefetchers.registry import build_prefetcher
from repro.resilience import (
    CheckpointJournal,
    ExecutionPolicy,
    FaultSpec,
    WorkerCrashError,
    execute,
    job_key,
)

RECORDS = 3_000


@pytest.fixture(autouse=True)
def _fresh_fault_claims():
    """Local fault claims are process-global; isolate each test."""
    faults_mod._LOCAL_CLAIMS.clear()
    yield
    faults_mod._LOCAL_CLAIMS.clear()


def _spec(label: str = "alpha", prefetcher: str | None = "ebcp") -> JobSpec:
    return JobSpec(
        workload="tpcw",
        records=RECORDS,
        seed=7,
        config=ProcessorConfig.scaled(),
        prefetcher=None if prefetcher is None else build_prefetcher(prefetcher),
        label=label,
    )


def _collect(bus: EventBus, *event_types):
    seen = []
    for event_type in event_types:
        bus.subscribe(event_type, seen.append)
    return seen


class TestExecutionPolicy:
    def test_defaults(self):
        policy = ExecutionPolicy()
        assert policy.retries == 1
        assert policy.timeout_s is None
        assert policy.checkpoint_dir is None

    @pytest.mark.parametrize(
        "kwargs",
        [{"retries": -1}, {"backoff_s": -0.5}, {"timeout_s": 0.0}, {"timeout_s": -1}],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionPolicy(**kwargs)

    def test_frozen(self):
        with pytest.raises(Exception):
            ExecutionPolicy().retries = 5  # type: ignore[misc]

    def test_replace_returns_updated_copy(self):
        base = ExecutionPolicy(jobs=4, retries=2)
        updated = base.replace(retries=0)
        assert updated.retries == 0
        assert updated.jobs == 4
        assert base.retries == 2

    def test_backoff_doubles_per_retry(self):
        policy = ExecutionPolicy(backoff_s=0.25)
        assert policy.backoff_for(1) == 0.25
        assert policy.backoff_for(2) == 0.5
        assert policy.backoff_for(3) == 1.0

    def test_pickles(self):
        policy = ExecutionPolicy(
            jobs=2, timeout_s=60, retries=3, fault_spec=FaultSpec(crash="x:1")
        )
        assert pickle.loads(pickle.dumps(policy)) == policy

    def test_from_env_reads_fault_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_CRASH", "alpha:1")
        policy = ExecutionPolicy.from_env()
        assert policy.faults().crash == "alpha:1"

    def test_explicit_fault_spec_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_CRASH", "alpha:1")
        policy = ExecutionPolicy(fault_spec=FaultSpec())
        assert not policy.faults().active


class TestJobKey:
    def test_deterministic(self):
        assert job_key(_spec(), 0) == job_key(_spec(), 0)

    def test_depends_on_identity_fields(self):
        base = _spec()
        assert job_key(base, 0) != job_key(base, 1)
        other = _spec()
        other.seed = 8
        assert job_key(base, 0) != job_key(other, 0)

    def test_execution_mode_does_not_change_identity(self):
        fast, legacy = _spec(), _spec()
        fast.compressed = True
        legacy.compressed = False
        assert job_key(fast, 0) == job_key(legacy, 0)


class TestFaultSpec:
    def test_inactive_by_default(self):
        spec = FaultSpec()
        assert not spec.active
        spec.maybe_crash("anything")  # no-op
        assert spec.maybe_hang("anything") == 0.0

    def test_malformed_specs_are_ignored(self):
        spec = FaultSpec(crash="toomany:fields:here", hang="nocount")
        spec.maybe_crash("anything")
        assert spec.maybe_hang("anything") == 0.0

    def test_crash_budget_per_site(self):
        spec = FaultSpec(crash="alpha:2")
        for _ in range(2):
            with pytest.raises(WorkerCrashError):
                spec.maybe_crash("alpha#deadbeef")
        spec.maybe_crash("alpha#deadbeef")  # budget spent
        spec.maybe_crash("bravo#deadbeef")  # never matched

    def test_state_dir_shares_claims_across_instances(self, tmp_path):
        first = FaultSpec(crash="alpha:1", state_dir=str(tmp_path))
        second = FaultSpec(crash="alpha:1", state_dir=str(tmp_path))
        with pytest.raises(WorkerCrashError):
            first.maybe_crash("alpha#1")
        second.maybe_crash("alpha#1")  # the claim is durable

    def test_maybe_corrupt_truncates_matching_kind(self, tmp_path):
        victim = tmp_path / "entry.npz"
        victim.write_bytes(b"x" * 100)
        spec = FaultSpec(corrupt="trace:1")
        assert spec.maybe_corrupt(victim, "plane") is False
        assert spec.maybe_corrupt(victim, "trace") is True
        assert victim.stat().st_size == 50
        assert spec.maybe_corrupt(victim, "trace") is False  # budget spent


class TestRetry:
    def test_injected_crash_is_retried_bit_identically(self):
        clean = _spec().run()
        bus = EventBus()
        retried = _collect(bus, JobRetried)
        policy = ExecutionPolicy(
            retries=1, backoff_s=0.0, fault_spec=FaultSpec(crash="alpha:1")
        )
        [result] = execute([_spec()], policy, bus=bus)
        assert result.stats.to_dict() == clean.stats.to_dict()
        assert len(retried) == 1
        assert "injected crash" in retried[0].cause

    def test_exhausted_retry_budget_raises(self):
        policy = ExecutionPolicy(
            retries=1, backoff_s=0.0, fault_spec=FaultSpec(crash="alpha:2")
        )
        with pytest.raises(WorkerCrashError):
            execute([_spec()], policy)

    def test_zero_retries_fails_on_first_crash(self):
        policy = ExecutionPolicy(
            retries=0, fault_spec=FaultSpec(crash="alpha:1")
        )
        with pytest.raises(WorkerCrashError):
            execute([_spec()], policy)

    def test_metrics_count_the_recovery(self):
        bus = EventBus()
        metrics = ResilienceMetrics(bus)
        policy = ExecutionPolicy(
            retries=2, backoff_s=0.0, fault_spec=FaultSpec(crash="alpha:2")
        )
        execute([_spec()], policy, bus=bus)
        assert metrics.retries.value == 2
        assert metrics.timeouts.value == 0


class TestTimeout:
    def test_overrun_is_retried(self):
        clean = _spec().run()
        bus = EventBus()
        timed_out = _collect(bus, JobTimedOut)
        policy = ExecutionPolicy(
            timeout_s=0.75,
            retries=1,
            backoff_s=0.0,
            fault_spec=FaultSpec(hang="alpha:1:1.5"),
        )
        [result] = execute([_spec()], policy, bus=bus)
        assert result.stats.to_dict() == clean.stats.to_dict()
        assert len(timed_out) == 1
        assert timed_out[0].timeout_s == 0.75

    def test_late_result_kept_when_budget_spent(self):
        clean = _spec().run()
        policy = ExecutionPolicy(
            timeout_s=0.75,
            retries=0,
            fault_spec=FaultSpec(hang="alpha:1:1.5"),
        )
        [result] = execute([_spec()], policy)
        assert result.stats.to_dict() == clean.stats.to_dict()


class TestCheckpoint:
    def test_journal_roundtrip(self, tmp_path):
        spec = _spec()
        result = spec.run()
        key = job_key(spec, 0)
        with CheckpointJournal(tmp_path) as journal:
            journal.record(key, result)
        reloaded = CheckpointJournal(tmp_path)
        reloaded.load()
        restored = reloaded.lookup(key)
        assert restored is not None
        assert restored.stats.to_dict() == result.stats.to_dict()
        assert restored.cpi == result.cpi
        assert restored.config_summary == result.config_summary

    def test_corrupt_tail_is_tolerated(self, tmp_path):
        spec = _spec()
        key = job_key(spec, 0)
        with CheckpointJournal(tmp_path) as journal:
            journal.record(key, spec.run())
        with open(tmp_path / CheckpointJournal.FILENAME, "a") as fh:
            fh.write('{"half a rec')  # a crash mid-write
        journal = CheckpointJournal(tmp_path)
        journal.load()
        assert journal.lookup(key) is not None
        assert len(journal) == 1

    def test_interrupted_batch_resumes_bit_identically(self, tmp_path):
        def batch():
            return [_spec("alpha"), _spec("bravo"), _spec("charlie", None)]

        clean = [s.run() for s in batch()]

        # First run: 'bravo' fails permanently after 'alpha' completed.
        failing = ExecutionPolicy(
            retries=0,
            checkpoint_dir=str(tmp_path),
            fault_spec=FaultSpec(crash="bravo:9"),
        )
        with pytest.raises(WorkerCrashError):
            execute(batch(), failing)

        # Second run: the fault is gone (the outage ended); 'alpha' must
        # come from the journal, the rest must run.
        bus = EventBus()
        resumed = _collect(bus, JobResumed)
        policy = ExecutionPolicy(
            checkpoint_dir=str(tmp_path), fault_spec=FaultSpec()
        )
        results = execute(batch(), policy, bus=bus)
        assert [r.stats.to_dict() for r in results] == [
            c.stats.to_dict() for c in clean
        ]
        assert [event.index for event in resumed] == [0]

    def test_completed_batch_resumes_without_any_simulation(self, tmp_path):
        policy = ExecutionPolicy(checkpoint_dir=str(tmp_path))
        first = execute([_spec("alpha"), _spec("bravo", None)], policy)
        bus = EventBus()
        resumed = _collect(bus, JobResumed)
        second = execute([_spec("alpha"), _spec("bravo", None)], policy, bus=bus)
        assert len(resumed) == 2
        assert [r.stats.to_dict() for r in second] == [
            r.stats.to_dict() for r in first
        ]


class TestDegradationIsObservable:
    """The legacy silent in-process fallbacks now announce themselves."""

    def test_pool_unavailable_warns_and_emits(self, monkeypatch, caplog):
        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no pool for you")

        monkeypatch.setenv("REPRO_FORCE_POOL", "1")
        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", ExplodingPool)
        bus = EventBus()
        degraded = _collect(bus, ExecutionDegraded)
        import logging

        with caplog.at_level(logging.WARNING, logger="repro.resilience.executor"):
            results = execute(
                [_spec("alpha", None), _spec("bravo", None)],
                ExecutionPolicy(jobs=2),
                bus=bus,
            )
        assert len(results) == 2
        assert any("unavailable" in rec.message for rec in caplog.records)
        assert [event.reason for event in degraded] == ["pool_unavailable"]
        assert "no pool for you" in degraded[0].cause

    def test_unpicklable_specs_emit_cause(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_POOL", "1")
        bad = _spec("alpha")
        bad.prefetcher.poison = lambda: None
        bus = EventBus()
        degraded = _collect(bus, ExecutionDegraded)
        execute([bad, _spec("bravo", None)], ExecutionPolicy(jobs=2), bus=bus)
        assert [event.reason for event in degraded] == ["unpicklable"]
        assert degraded[0].cause


class TestPoolRecovery:
    def test_worker_crash_recovers_bit_identically(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_FORCE_POOL", "1")
        specs = [_spec("alpha", None), _spec("bravo")]
        clean = [s.run() for s in specs]
        bus = EventBus()
        crashed = _collect(bus, WorkerCrashed)
        policy = ExecutionPolicy(
            jobs=2,
            retries=2,
            backoff_s=0.0,
            fault_spec=FaultSpec(crash="*:1", state_dir=str(tmp_path)),
        )
        results = execute(
            [_spec("alpha", None), _spec("bravo")], policy, bus=bus
        )
        assert [r.stats.to_dict() for r in results] == [
            c.stats.to_dict() for c in clean
        ]
        assert crashed  # the pool breakage was observed


class TestPolicyThreadsThroughTheStack:
    def test_run_jobs_accepts_policy(self):
        clean = _spec().run()
        policy = ExecutionPolicy(
            retries=1, backoff_s=0.0, fault_spec=FaultSpec(crash="alpha:1")
        )
        [result] = run_jobs([_spec()], policy=policy)
        assert result.stats.to_dict() == clean.stats.to_dict()

    def test_sweep_runner_accepts_policy(self, tmp_path):
        from repro.analysis.sweep import SweepRunner

        config = ProcessorConfig.scaled()

        def factory(label):
            return build_prefetcher("ebcp", prefetch_degree=int(label))

        sequential = SweepRunner(records=RECORDS, workloads=("tpcw",)).sweep(
            ["2"], factory, config=config
        )
        policy = ExecutionPolicy(checkpoint_dir=str(tmp_path))
        resilient = SweepRunner(records=RECORDS, workloads=("tpcw",)).sweep(
            ["2"], factory, config=config, policy=policy
        )
        seq, res = sequential["tpcw"][0], resilient["tpcw"][0]
        assert seq.result.stats.to_dict() == res.result.stats.to_dict()
        assert (tmp_path / CheckpointJournal.FILENAME).exists()
