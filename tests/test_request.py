"""Tests for request/access types and address helpers."""

from __future__ import annotations

from repro.memory.request import (
    Access,
    AccessKind,
    PrefetchRequest,
    Priority,
    line_address,
    line_number,
)


class TestAccessKind:
    def test_encoding_matches_trace_format(self):
        assert int(AccessKind.IFETCH) == 0
        assert int(AccessKind.LOAD) == 1
        assert int(AccessKind.STORE) == 2

    def test_instruction_predicate(self):
        assert AccessKind.IFETCH.is_instruction
        assert not AccessKind.LOAD.is_instruction
        assert AccessKind.LOAD.is_data
        assert AccessKind.STORE.is_data


class TestPriority:
    def test_demand_outranks_everything(self):
        assert Priority.DEMAND < Priority.TABLE_LOOKUP < Priority.PREFETCH
        assert Priority.PREFETCH < Priority.TABLE_UPDATE < Priority.LRU_WRITEBACK


class TestLineHelpers:
    def test_line_address(self):
        assert line_address(0, 6) == 0
        assert line_address(63, 6) == 0
        assert line_address(64, 6) == 64
        assert line_address(130, 6) == 128

    def test_line_number(self):
        assert line_number(0, 6) == 0
        assert line_number(127, 6) == 1
        assert line_number(128, 6) == 2


class TestTypes:
    def test_access_is_frozen(self):
        access = Access(AccessKind.LOAD, 0x100, 0x2000)
        try:
            access.addr = 5  # type: ignore[misc]
        except AttributeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("Access should be immutable")

    def test_prefetch_request_defaults(self):
        req = PrefetchRequest(line_addr=10)
        assert req.epochs_until_ready == 1
        assert req.priority is Priority.PREFETCH
        assert req.table_index is None
        assert req.issue_epoch == -1
