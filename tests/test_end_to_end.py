"""End-to-end behavioural tests on synthetic microbenchmarks.

Each prefetcher must shine on its home-turf pattern and do no harm on
patterns it cannot predict.
"""

from __future__ import annotations

import pytest

from repro.engine.config import ProcessorConfig
from repro.engine.simulator import EpochSimulator
from repro.prefetchers.registry import build_prefetcher
from repro.workloads.synthetic import (
    pointer_chase,
    random_uniform,
    repeating_miss_loop,
    streaming,
)


def simulate(trace, prefetcher_name=None, **pf_kwargs):
    config = ProcessorConfig.scaled()
    pf = build_prefetcher(prefetcher_name, **pf_kwargs) if prefetcher_name else None
    return EpochSimulator(config, pf).run(trace)


@pytest.fixture(scope="module")
def loop_trace():
    return repeating_miss_loop(unique_lines=12_288, records=60_000, misses_per_epoch=3)


@pytest.fixture(scope="module")
def chase_trace():
    return pointer_chase(unique_lines=16_384, records=50_000)


@pytest.fixture(scope="module")
def stream_trace():
    return streaming(streams=4, lines_per_stream=8192, records=40_000)


@pytest.fixture(scope="module")
def random_trace():
    return random_uniform(records=30_000)


class TestRepeatingLoop:
    def test_ebcp_large_gain(self, loop_trace):
        base = simulate(loop_trace)
        ebcp = simulate(loop_trace, "ebcp")
        assert ebcp.improvement_over(base) > 0.30
        assert ebcp.coverage > 0.4

    def test_solihin_gains_but_less_than_ebcp(self, loop_trace):
        base = simulate(loop_trace)
        ebcp = simulate(loop_trace, "ebcp", prefetch_degree=6)
        solihin = simulate(loop_trace, "solihin_6_1")
        assert solihin.improvement_over(base) > 0.0
        assert ebcp.improvement_over(base) > solihin.improvement_over(base)

    def test_stream_prefetcher_useless_on_shuffled_loop(self, loop_trace):
        base = simulate(loop_trace)
        stream = simulate(loop_trace, "stream")
        assert abs(stream.improvement_over(base)) < 0.05


class TestPointerChase:
    def test_chase_is_pure_serial_epochs(self, chase_trace):
        base = simulate(chase_trace)
        # One epoch per miss: EPI == miss rate.
        assert base.stats.epochs == pytest.approx(
            base.stats.total_offchip_misses, rel=0.01
        )

    def test_ebcp_covers_recurring_chase(self, chase_trace):
        """A recurring chase is the textbook correlation-prefetch win:
        serial misses that no stride scheme can touch."""
        base = simulate(chase_trace)
        ebcp = simulate(chase_trace, "ebcp")
        assert ebcp.improvement_over(base) > 0.5

    def test_stream_cannot_touch_a_chase(self, chase_trace):
        base = simulate(chase_trace)
        stream = simulate(chase_trace, "stream")
        assert stream.coverage < 0.02
        assert abs(stream.improvement_over(base)) < 0.05


class TestStreaming:
    def test_stream_prefetcher_dominates(self, stream_trace):
        base = simulate(stream_trace)
        stream = simulate(stream_trace, "stream")
        assert stream.coverage > 0.7
        assert stream.improvement_over(base) > 0.5

    def test_ghb_handles_streams_too(self, stream_trace):
        """PC/DC generalises strides: constant deltas repeat."""
        base = simulate(stream_trace)
        ghb = simulate(stream_trace, "ghb_large")
        assert ghb.improvement_over(base) > 0.3


class TestRandom:
    def test_nothing_predicts_random(self, random_trace):
        base = simulate(random_trace)
        for name in ("ebcp", "stream", "ghb_small", "solihin_3_2", "sms"):
            result = simulate(random_trace, name)
            assert result.coverage < 0.02, name

    def test_prefetchers_do_no_harm_on_random(self, random_trace):
        """Useless prefetches must not delay demand (paper Section 5.2.1)
        when bandwidth is plentiful."""
        base = simulate(random_trace)
        ebcp = simulate(random_trace, "ebcp")
        assert ebcp.improvement_over(base) > -0.05


class TestDeterminism:
    def test_same_run_same_result(self, loop_trace):
        a = simulate(loop_trace, "ebcp")
        b = simulate(loop_trace, "ebcp")
        assert a.cpi == b.cpi
        assert a.stats.epochs == b.stats.epochs
        assert a.stats.total_prefetch_hits == b.stats.total_prefetch_hits
