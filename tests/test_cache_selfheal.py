"""Self-healing on-disk caches: checksums, quarantine, regeneration.

A corrupt ``.npz`` entry — truncated, bit-rotted, or injected via
``REPRO_FAULT_CORRUPT`` — must never fail a run: it is detected (by
checksum sidecar or decode failure), moved into ``quarantine/`` with a
reason note, announced as a :class:`CacheQuarantined` event, and the
entry is regenerated bit-identically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.filter_plane import _plane_path, get_filter_plane
from repro.obs.bus import global_bus, reset_global_bus
from repro.obs.events import CacheQuarantined
from repro.resilience.integrity import (
    checksum_path,
    quarantine_entry,
    verify_checksum,
    write_checksum,
)
from repro.workloads import make_workload
from repro.workloads.cache import TraceCache

RECORDS = 2_000


@pytest.fixture()
def quarantine_events():
    reset_global_bus()
    seen = []
    global_bus().subscribe(CacheQuarantined, seen.append)
    yield seen
    reset_global_bus()


def _build():
    return make_workload("tpcw", records=RECORDS, seed=7)


def _truncate(path) -> None:
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])


class TestIntegrityPrimitives:
    def test_checksum_roundtrip(self, tmp_path):
        entry = tmp_path / "entry.npz"
        entry.write_bytes(b"payload")
        write_checksum(entry)
        assert checksum_path(entry).exists()
        assert verify_checksum(entry) is None

    def test_modification_is_detected(self, tmp_path):
        entry = tmp_path / "entry.npz"
        entry.write_bytes(b"payload")
        write_checksum(entry)
        entry.write_bytes(b"tampered")
        assert verify_checksum(entry) == "checksum_mismatch"

    def test_missing_sidecar_is_unverifiable_not_fatal(self, tmp_path):
        entry = tmp_path / "entry.npz"
        entry.write_bytes(b"payload")
        assert verify_checksum(entry) is None

    def test_quarantine_moves_entry_and_emits(self, tmp_path, quarantine_events):
        entry = tmp_path / "entry.npz"
        entry.write_bytes(b"payload")
        write_checksum(entry)
        moved = quarantine_entry(entry, "trace", "checksum_mismatch")
        assert not entry.exists()
        assert not checksum_path(entry).exists()
        assert moved == tmp_path / "quarantine" / "entry.npz"
        assert moved.exists()
        reason = moved.with_name(moved.name + ".reason").read_text()
        assert "checksum_mismatch" in reason
        assert [e.kind for e in quarantine_events] == ["trace"]


class TestTraceCacheSelfHealing:
    def test_store_writes_sidecar(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.get_or_build("tpcw", RECORDS, 7, 1.0, _build)
        entry = cache.path_for("tpcw", RECORDS, 7, 1.0)
        assert entry.exists()
        assert verify_checksum(entry) is None

    def test_truncated_entry_quarantined_and_regenerated(
        self, tmp_path, quarantine_events
    ):
        cache = TraceCache(tmp_path)
        original = cache.get_or_build("tpcw", RECORDS, 7, 1.0, _build)
        entry = cache.path_for("tpcw", RECORDS, 7, 1.0)
        _truncate(entry)

        healed = cache.get_or_build("tpcw", RECORDS, 7, 1.0, _build)
        assert (healed.addr == original.addr).all()
        assert (healed.gap == original.gap).all()
        assert cache.hits == 0 and cache.misses == 2
        assert (tmp_path / "quarantine" / entry.name).exists()
        assert [e.reason for e in quarantine_events] == ["checksum_mismatch"]

        # The regenerated entry is a clean cache hit afterwards.
        cache.get_or_build("tpcw", RECORDS, 7, 1.0, _build)
        assert cache.hits == 1

    def test_garbage_that_passes_checksum_still_quarantined(
        self, tmp_path, quarantine_events
    ):
        cache = TraceCache(tmp_path)
        cache.get_or_build("tpcw", RECORDS, 7, 1.0, _build)
        entry = cache.path_for("tpcw", RECORDS, 7, 1.0)
        entry.write_bytes(b"not an npz archive at all")
        write_checksum(entry)  # a consistent sidecar for garbage data

        healed = cache.get_or_build("tpcw", RECORDS, 7, 1.0, _build)
        assert healed is not None
        assert len(quarantine_events) == 1
        assert "unreadable entry" in quarantine_events[0].reason

    def test_disabled_cache_builds_every_time(self):
        cache = TraceCache(None)
        assert cache.get_or_build("tpcw", RECORDS, 7, 1.0, _build) is not None
        assert cache.misses == 0 and cache.hits == 0


class TestFaultCorruptHook:
    def test_injected_corruption_self_heals(
        self, tmp_path, monkeypatch, quarantine_events
    ):
        monkeypatch.setenv("REPRO_FAULT_CORRUPT", "trace:1")
        monkeypatch.setenv("REPRO_FAULT_STATE", str(tmp_path / "fault-state"))
        cache = TraceCache(tmp_path / "cache")
        original = cache.get_or_build("tpcw", RECORDS, 7, 1.0, _build)
        entry = cache.path_for("tpcw", RECORDS, 7, 1.0)
        # The store hook corrupted the fresh entry (budget: exactly one).
        assert verify_checksum(entry) == "checksum_mismatch"

        healed = cache.get_or_build("tpcw", RECORDS, 7, 1.0, _build)
        assert (healed.addr == original.addr).all()
        assert [e.kind for e in quarantine_events] == ["trace"]
        # The regenerated entry is intact: the fault budget is spent.
        assert verify_checksum(entry) is None
        cache.get_or_build("tpcw", RECORDS, 7, 1.0, _build)
        assert cache.hits == 1


class TestPlaneCacheSelfHealing:
    L1I = (4 * 1024, 4, 64)
    L1D = (4 * 1024, 4, 64)

    @pytest.fixture()
    def plane_trace(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        # Long enough to clear the plane persistence floor (20k records).
        trace = make_workload("tpcw", records=20_000, seed=11)
        # The workload registry memoises traces per process; drop any
        # in-memory plane so each test exercises the on-disk layer.
        trace._plane_cache.clear()
        return trace

    def test_truncated_plane_quarantined_and_recomputed(
        self, tmp_path, plane_trace, quarantine_events
    ):
        plane = get_filter_plane(plane_trace, self.L1I, self.L1D)
        path = _plane_path(plane_trace, self.L1I, self.L1D)
        assert path.exists()
        assert verify_checksum(path) is None

        _truncate(path)
        plane_trace._plane_cache.clear()
        healed = get_filter_plane(plane_trace, self.L1I, self.L1D)
        assert (healed.miss_mask == plane.miss_mask).all()
        assert (path.parent / "quarantine" / path.name).exists()
        assert [e.kind for e in quarantine_events] == ["plane"]

        # And the rewritten entry loads cleanly.
        plane_trace._plane_cache.clear()
        again = get_filter_plane(plane_trace, self.L1I, self.L1D)
        assert (again.miss_mask == plane.miss_mask).all()
        assert len(quarantine_events) == 1

    def test_injected_plane_corruption_self_heals(
        self, tmp_path, plane_trace, monkeypatch, quarantine_events
    ):
        monkeypatch.setenv("REPRO_FAULT_CORRUPT", "plane:1")
        monkeypatch.setenv("REPRO_FAULT_STATE", str(tmp_path / "fault-state"))
        plane = get_filter_plane(plane_trace, self.L1I, self.L1D)
        path = _plane_path(plane_trace, self.L1I, self.L1D)
        assert verify_checksum(path) == "checksum_mismatch"

        plane_trace._plane_cache.clear()
        healed = get_filter_plane(plane_trace, self.L1I, self.L1D)
        assert (healed.miss_mask == plane.miss_mask).all()
        assert verify_checksum(path) is None
        assert [e.kind for e in quarantine_events] == ["plane"]
