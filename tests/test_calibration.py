"""Calibration tests: synthetic baselines vs the paper's Table 1."""

from __future__ import annotations

import pytest

from repro.analysis.calibration import TABLE1_TARGETS, check_baseline

RECORDS = 160_000


@pytest.mark.parametrize("workload", sorted(TABLE1_TARGETS))
def test_baseline_matches_table1(workload):
    """Every workload's baseline lands within 25 % of every Table 1 cell.

    The relative tolerance is dominated by the tiny-magnitude cells
    (SPECjbb2005's 0.12 I-misses/kinst); the full-length benches show
    CPI/EPI within ~4 % everywhere (see EXPERIMENTS.md).
    """
    report = check_baseline(workload, records=RECORDS)
    assert report.within(0.25), (
        workload,
        report.cpi_error,
        report.epi_error,
        report.inst_miss_error,
        report.load_miss_error,
    )


def test_cpi_ordering_matches_paper():
    """The paper's CPI ordering: database > jappserver > jbb ~ tpcw."""
    cpis = {
        w: check_baseline(w, records=RECORDS).measured.cpi for w in TABLE1_TARGETS
    }
    assert cpis["database"] > cpis["jappserver2004"] > cpis["tpcw"]


def test_miss_mix_matches_paper():
    """Qualitative mix: jbb is load-dominated with negligible I-misses;
    tpcw and jappserver have substantial instruction-miss fractions."""
    jbb = check_baseline("specjbb2005", records=RECORDS).measured
    tpcw = check_baseline("tpcw", records=RECORDS).measured
    japp = check_baseline("jappserver2004", records=RECORDS).measured
    assert jbb.l2_inst_miss_rate < 0.25
    assert tpcw.l2_inst_miss_rate > 0.4
    assert japp.l2_inst_miss_rate > 1.0


def test_unknown_workload_rejected():
    with pytest.raises(KeyError):
        check_baseline("nosuch")
