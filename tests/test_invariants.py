"""Property-based invariants over whole simulations.

Hypothesis generates small random traces; the simulator's aggregate
statistics must satisfy structural invariants regardless of the input.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.config import CacheConfig, ProcessorConfig
from repro.engine.simulator import EpochSimulator
from repro.prefetchers.registry import build_prefetcher
from repro.workloads.trace import TraceBuilder


def small_config() -> ProcessorConfig:
    return ProcessorConfig(
        l1i=CacheConfig(4 * 1024, 4, 64, 3),
        l1d=CacheConfig(4 * 1024, 4, 64, 3),
        l2=CacheConfig(16 * 1024, 4, 64, 20),
        cpi_perf=1.0,
        overlap=0.0,
    )


@st.composite
def random_traces(draw):
    """Short random traces with mixed kinds, gaps and dependences."""
    n = draw(st.integers(min_value=1, max_value=250))
    builder = TraceBuilder()
    for _ in range(n):
        kind = draw(st.sampled_from([0, 1, 1, 1, 2]))  # loads dominate
        line = draw(st.integers(min_value=0, max_value=4000))
        gap = draw(st.sampled_from([5, 12, 60, 150, 300, 900]))
        serial = draw(st.booleans()) and kind == 1
        builder.add(kind, pc=0x1000 + (line % 37) * 16, addr=0x100_0000 + line * 64,
                    gap=gap, serial=serial)
    return builder.build()


class TestBaselineInvariants:
    @given(random_traces())
    @settings(max_examples=40, deadline=None)
    def test_epoch_and_miss_accounting(self, trace):
        result = EpochSimulator(small_config(), None).run(trace, warmup_records=0)
        stats = result.stats
        # Epochs never exceed non-store off-chip misses.
        from repro.memory.request import AccessKind

        nonstore = (
            stats.offchip_misses[AccessKind.LOAD]
            + stats.offchip_misses[AccessKind.IFETCH]
        )
        assert stats.epochs <= nonstore
        # Every epoch costs at least the unloaded penalty.
        assert stats.offchip_cycles >= stats.epochs * 500
        # Accounting identities.
        assert stats.accesses == len(trace)
        assert stats.instructions == trace.instructions
        assert 0 <= result.coverage <= 1

    @given(random_traces())
    @settings(max_examples=30, deadline=None)
    def test_determinism(self, trace):
        a = EpochSimulator(small_config(), None).run(trace, warmup_records=0)
        b = EpochSimulator(small_config(), None).run(trace, warmup_records=0)
        assert a.cycles == b.cycles
        assert a.stats.epochs == b.stats.epochs


class TestPrefetcherInvariants:
    @given(random_traces(), st.sampled_from(["ebcp", "stream", "ghb_small", "solihin_3_2", "sms"]))
    @settings(max_examples=30, deadline=None)
    def test_lifecycle_accounting(self, trace, name):
        result = EpochSimulator(small_config(), build_prefetcher(name)).run(
            trace, warmup_records=0
        )
        stats = result.stats
        # Every generated prefetch is filled, dropped, redundant, or still
        # staged/pending at trace end.
        accounted = (
            stats.prefetches_filled + stats.prefetches_dropped + stats.prefetches_redundant
        )
        assert accounted <= stats.prefetches_generated
        assert stats.total_prefetch_hits <= stats.prefetches_filled
        assert 0 <= result.accuracy <= 1
        assert 0 <= result.coverage <= 1

    @given(random_traces())
    @settings(max_examples=20, deadline=None)
    def test_prefetching_never_slows_epochless_metrics(self, trace):
        """Prefetchers cannot create new demand misses: off-chip misses
        with a prefetcher never exceed the baseline's."""
        base = EpochSimulator(small_config(), None).run(trace, warmup_records=0)
        with_pf = EpochSimulator(small_config(), build_prefetcher("ebcp")).run(
            trace, warmup_records=0
        )
        assert (
            with_pf.stats.total_offchip_misses + with_pf.stats.total_prefetch_hits
            == base.stats.total_offchip_misses
        )
