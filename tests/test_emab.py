"""Tests for the Epoch Miss Addresses Buffer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.emab import EpochMissAddressBuffer


def fill_epochs(emab: EpochMissAddressBuffer, epochs: list[list[int]]):
    """Record each epoch's misses, rotating between them; returns views."""
    views = []
    for i, epoch in enumerate(epochs):
        if i > 0:
            views.append(emab.epoch_boundary())
        for line in epoch:
            emab.record_miss(line)
    return views


class TestGeometry:
    def test_default_is_papers_four_entry_buffer(self):
        emab = EpochMissAddressBuffer()
        assert emab.depth == 4
        assert emab.skip_epochs == 2 and emab.stored_epochs == 2

    def test_minus_variant_depth(self):
        assert EpochMissAddressBuffer(skip_epochs=1).depth == 3

    def test_rejects_zero_skip(self):
        with pytest.raises(ValueError):
            EpochMissAddressBuffer(skip_epochs=0)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            EpochMissAddressBuffer(capacity_per_epoch=0)


class TestTraining:
    def test_no_view_until_full(self):
        emab = EpochMissAddressBuffer()  # depth 4
        emab.record_miss(1)
        assert emab.epoch_boundary() is None  # 2 entries
        emab.record_miss(2)
        assert emab.epoch_boundary() is None  # 3 entries
        emab.record_miss(3)
        assert emab.epoch_boundary() is None  # 4 entries now, but view needs full-before

    def test_paper_example_update(self):
        """Section 3.4.2: epochs i..i+3 = (A,B)(C,D,E)(F,G)(H,I).

        Key = first miss of epoch i (A); payload = epochs i+2, i+3.
        """
        emab = EpochMissAddressBuffer()
        A, B, C, D, E, F, G, H, I = range(1, 10)
        fill_epochs(emab, [[A, B], [C, D, E], [F, G], [H, I]])
        view = emab.epoch_boundary()
        assert view is not None
        assert view.key_line == A
        assert view.payload == (F, G, H, I)  # older epoch first

    def test_minus_variant_stores_next_epoch(self):
        emab = EpochMissAddressBuffer(skip_epochs=1)  # depth 3
        A, B, C, D, E, F, G = range(1, 8)
        fill_epochs(emab, [[A, B], [C, D, E], [F, G]])
        view = emab.epoch_boundary()
        assert view.key_line == A
        assert view.payload == (C, D, E, F, G)

    def test_rolling_views(self):
        emab = EpochMissAddressBuffer()
        views = fill_epochs(emab, [[1], [2], [3], [4], [5]])
        views.append(emab.epoch_boundary())
        # First three boundaries: buffer not yet full.
        assert views[:3] == [None, None, None]
        assert views[3].key_line == 1 and views[3].payload == (3, 4)
        assert views[4].key_line == 2 and views[4].payload == (4, 5)

    def test_empty_oldest_epoch_yields_no_view(self):
        emab = EpochMissAddressBuffer()
        fill_epochs(emab, [[], [1], [2], [3]])
        assert emab.epoch_boundary() is None

    def test_empty_payload_yields_no_view(self):
        emab = EpochMissAddressBuffer()
        fill_epochs(emab, [[1], [2], [], []])
        assert emab.epoch_boundary() is None

    def test_payload_deduplicated_preserving_old_first(self):
        emab = EpochMissAddressBuffer()
        fill_epochs(emab, [[1], [2], [7, 8], [8, 9]])
        view = emab.epoch_boundary()
        assert view.payload == (7, 8, 9)


class TestCapacity:
    def test_overflow_drops_and_counts(self):
        emab = EpochMissAddressBuffer(capacity_per_epoch=2)
        for line in range(5):
            emab.record_miss(line)
        assert emab.current_entry == [0, 1]
        assert emab.overflow_drops == 3

    def test_reset(self):
        emab = EpochMissAddressBuffer()
        fill_epochs(emab, [[1], [2], [3], [4]])
        emab.reset()
        assert emab.filled_entries == 1
        assert emab.current_entry == []


class TestProperties:
    @given(
        st.lists(
            st.lists(st.integers(0, 1000), max_size=8),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_depth_invariant_and_key_correctness(self, epochs):
        emab = EpochMissAddressBuffer()
        for i, epoch in enumerate(epochs):
            if i > 0:
                view = emab.epoch_boundary()
                assert emab.filled_entries <= emab.depth
                # Any view's key must be the first miss of the epoch that
                # is depth-1 boundaries behind the one just ended.
                if view is not None:
                    source_epoch = epochs[i - emab.depth]
                    assert view.key_line == source_epoch[0]
            for line in epoch:
                emab.record_miss(line)
        snapshot = emab.snapshot()
        assert len(snapshot) <= emab.depth
