"""Tests for processor configuration presets and validation."""

from __future__ import annotations

import pytest

from repro.engine.config import CacheConfig, ProcessorConfig, SCALE_FACTOR


class TestPresets:
    def test_scaled_l2_is_paper_over_scale_factor(self):
        scaled = ProcessorConfig.scaled()
        paper = ProcessorConfig.paper()
        assert paper.l2.size_bytes == 2 * 1024 * 1024
        assert scaled.l2.size_bytes * SCALE_FACTOR == paper.l2.size_bytes

    def test_latency_and_bandwidth_not_scaled(self):
        scaled = ProcessorConfig.scaled()
        paper = ProcessorConfig.paper()
        assert scaled.memory_latency == paper.memory_latency == 500
        assert scaled.read_bw_gbps == paper.read_bw_gbps == 9.6
        assert scaled.rob_size == paper.rob_size == 128

    def test_paper_section_4_4_defaults(self):
        config = ProcessorConfig.paper()
        assert config.core_ghz == 3.0
        assert config.l1i.size_bytes == 32 * 1024 and config.l1i.ways == 4
        assert config.l1d.size_bytes == 32 * 1024 and config.l1d.ways == 4
        assert config.l2.ways == 4 and config.l2.line_size == 64
        assert config.l2_mshrs == 32
        assert config.write_bw_gbps == 4.8
        assert config.prefetch_buffer_entries == 64

    def test_replace(self):
        config = ProcessorConfig.scaled().replace(read_bw_gbps=3.2)
        assert config.read_bw_gbps == 3.2
        assert config.write_bw_gbps == 4.8  # untouched

    def test_replace_returns_new_object(self):
        base = ProcessorConfig.scaled()
        other = base.replace(rob_size=64)
        assert base.rob_size == 128
        assert other.rob_size == 64


class TestDerived:
    def test_bytes_per_cycle(self):
        config = ProcessorConfig.scaled()
        assert config.read_bytes_per_cycle == pytest.approx(3.2)
        assert config.write_bytes_per_cycle == pytest.approx(1.6)

    def test_line_shift(self):
        assert ProcessorConfig.scaled().line_shift == 6

    def test_cache_config_derived(self):
        cache = CacheConfig(32 * 1024, 4, 64)
        assert cache.n_lines == 512
        assert cache.n_sets == 128


class TestValidation:
    def test_valid_default(self):
        ProcessorConfig.scaled().validate()

    def test_rejects_bad_overlap(self):
        with pytest.raises(ValueError):
            ProcessorConfig.scaled().replace(overlap=1.0).validate()

    def test_rejects_bad_cpi(self):
        with pytest.raises(ValueError):
            ProcessorConfig.scaled().replace(cpi_perf=0.0).validate()

    def test_rejects_mismatched_line_sizes(self):
        config = ProcessorConfig.scaled().replace(l1i=CacheConfig(32 * 1024, 4, 128))
        with pytest.raises(ValueError):
            config.validate()

    def test_rejects_bad_rob(self):
        with pytest.raises(ValueError):
            ProcessorConfig.scaled().replace(rob_size=0).validate()
