"""Tests for cache-hierarchy composition and outcome classification."""

from __future__ import annotations

from repro.memory.hierarchy import AccessOutcome, CacheHierarchy
from repro.memory.request import AccessKind

from tests.helpers import line_addr, make_access


def make_hierarchy(tiny_config):
    return CacheHierarchy(tiny_config)


class TestOutcomes:
    def test_cold_access_is_offchip(self, tiny_config):
        h = CacheHierarchy(tiny_config)
        result = h.access(make_access(line_addr(1000)), current_cycle=0.0)
        assert result.outcome is AccessOutcome.OFFCHIP_MISS

    def test_second_access_hits_l1(self, tiny_config):
        h = CacheHierarchy(tiny_config)
        h.access(make_access(line_addr(1000)), 0.0)
        result = h.access(make_access(line_addr(1000)), 0.0)
        assert result.outcome is AccessOutcome.L1_HIT

    def test_l2_hit_after_l1_eviction(self, tiny_config):
        h = CacheHierarchy(tiny_config)
        h.access(make_access(line_addr(0)), 0.0)
        # Evict line 0 from the 64-line L1D by filling its set (4 ways,
        # 16 sets: lines 0, 16, 32, 48, 64 share set 0).
        for k in range(1, 5):
            h.access(make_access(line_addr(16 * k)), 0.0)
        result = h.access(make_access(line_addr(0)), 0.0)
        assert result.outcome is AccessOutcome.L2_HIT

    def test_ifetch_uses_l1i(self, tiny_config):
        h = CacheHierarchy(tiny_config)
        h.access(make_access(line_addr(7), AccessKind.IFETCH), 0.0)
        # Same line as a load misses L1D (separate L1s) but hits L2.
        result = h.access(make_access(line_addr(7), AccessKind.LOAD), 0.0)
        assert result.outcome is AccessOutcome.L2_HIT


class TestPrefetchPath:
    def test_ready_prefetch_averted_miss(self, tiny_config):
        h = CacheHierarchy(tiny_config)
        assert h.fill_prefetch(1000, ready_cycle=100.0, table_index=3, source="ebcp")
        result = h.access(make_access(line_addr(1000)), current_cycle=200.0)
        assert result.outcome is AccessOutcome.PREFETCH_HIT
        assert result.table_index == 3
        assert result.prefetch_source == "ebcp"
        # Promoted into L2 + L1 on use.
        assert h.l2.contains(1000)
        assert h.access(make_access(line_addr(1000)), 0.0).outcome is AccessOutcome.L1_HIT

    def test_late_prefetch_is_miss_with_flag(self, tiny_config):
        h = CacheHierarchy(tiny_config)
        h.fill_prefetch(1000, ready_cycle=500.0)
        result = h.access(make_access(line_addr(1000)), current_cycle=100.0)
        assert result.outcome is AccessOutcome.OFFCHIP_MISS
        assert result.late_prefetch

    def test_redundant_prefetch_filtered(self, tiny_config):
        h = CacheHierarchy(tiny_config)
        h.access(make_access(line_addr(5)), 0.0)  # line now in L2
        assert not h.fill_prefetch(5, ready_cycle=0.0)
        assert not h.prefetch_buffer.contains(5)

    def test_prefetch_not_in_l2_until_used(self, tiny_config):
        h = CacheHierarchy(tiny_config)
        h.fill_prefetch(9, ready_cycle=0.0)
        assert not h.l2.contains(9)  # no cache pollution before use


class TestFlush:
    def test_flush_clears_everything(self, tiny_config):
        h = CacheHierarchy(tiny_config)
        h.access(make_access(line_addr(1)), 0.0)
        h.fill_prefetch(2, 0.0)
        h.flush()
        assert h.l1d.occupancy == 0
        assert h.l2.occupancy == 0
        assert h.prefetch_buffer.occupancy == 0
