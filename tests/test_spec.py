"""Declarative sweep specs: schema, round-trip, expansion, execution.

Four layers, mirroring the redesign's promises:

* **Schema** — every malformed field raises a typed :class:`SpecError`
  whose ``path`` locates the offending key.
* **Round-trip** — every committed ``specs/*.toml`` file survives
  ``dump -> loads`` with an identical spec and fingerprint.
* **Expansion** — the grid lowers to jobs with baselines deduplicated
  per (workload, seed) cell and candidates wired to them by index.
* **Execution** — ``run_spec`` is bit-identical to the imperative
  experiment runners, and a spec submitted to a (sharded) service
  streams back the same results field for field.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import table1
from repro.experiments.from_spec import run_experiment
from repro.obs import EventBus
from repro.obs.events import TraceCacheWarmed
from repro.parallel.jobs import reset_warm_registry, run_jobs
from repro.resilience.policy import ExecutionPolicy
from repro.service import BackgroundService, ServiceConfig, ShardedService
from repro.spec import (
    SPEC_VERSION,
    SpecError,
    SpecVersionError,
    SweepSpec,
    dumps_spec,
    expand,
    load_spec,
    loads_spec,
    run_spec,
    submit_spec,
)

SPEC_DIR = Path(__file__).resolve().parents[1] / "specs"
POLICY = ExecutionPolicy(jobs=1)
RECORDS = 8_000


def minimal(**overrides) -> dict:
    """A small valid spec document; tests mutate one field at a time."""
    payload = {
        "version": SPEC_VERSION,
        "name": "t",
        "workloads": ["pointer_chase"],
        "grid": {"records": RECORDS, "seeds": [7]},
        "prefetchers": [
            {"name": "ebcp", "label": "d4", "overrides": {"prefetch_degree": 4}},
        ],
    }
    payload.update(overrides)
    return payload


def spec_of(**overrides) -> SweepSpec:
    return SweepSpec.from_dict(minimal(**overrides))


class TestSchemaErrors:
    """Every invalid field raises SpecError with a locating path."""

    def error(self, **overrides) -> SpecError:
        with pytest.raises(SpecError) as excinfo:
            SweepSpec.from_dict(minimal(**overrides))
        return excinfo.value

    def test_version_missing(self):
        payload = minimal()
        del payload["version"]
        with pytest.raises(SpecError) as excinfo:
            SweepSpec.from_dict(payload)
        assert excinfo.value.path == "version"

    def test_version_unsupported(self):
        with pytest.raises(SpecVersionError) as excinfo:
            SweepSpec.from_dict(minimal(version=SPEC_VERSION + 1))
        assert excinfo.value.found == SPEC_VERSION + 1
        assert "version" in str(excinfo.value)

    def test_version_wrong_type(self):
        with pytest.raises(SpecVersionError):
            SweepSpec.from_dict(minimal(version="1"))

    def test_unknown_top_level_key(self):
        err = self.error(bogus=1)
        assert "bogus" in err.message

    def test_unknown_workload(self):
        err = self.error(workloads=["pointer_chase", "no_such_workload"])
        assert err.path == "workloads[1]"
        assert "unknown workload" in err.message

    def test_duplicate_workload(self):
        err = self.error(workloads=["pointer_chase", "pointer_chase"])
        assert err.path == "workloads[1]"

    def test_unknown_prefetcher(self):
        err = self.error(prefetchers=[{"name": "warp_drive"}])
        assert err.path == "prefetchers[0].name"

    def test_duplicate_prefetcher_labels(self):
        err = self.error(
            prefetchers=[{"name": "ebcp", "label": "x"}, {"name": "stream", "label": "x"}]
        )
        assert err.path == "prefetchers"

    def test_prefetcher_override_table_rejected(self):
        err = self.error(
            prefetchers=[{"name": "ebcp", "overrides": {"prefetch_degree": {"a": 1}}}]
        )
        assert err.path.startswith("prefetchers[0].overrides")

    def test_config_override_rejected_by_processor_config(self):
        err = self.error(configs=[{"label": "x", "overrides": {"warp_factor": 9}}])
        assert err.path.startswith("configs[0].overrides")

    def test_grid_records_below_minimum(self):
        err = self.error(grid={"records": 0, "seeds": [7]})
        assert err.path.startswith("grid")

    def test_grid_duplicate_seeds(self):
        err = self.error(grid={"records": RECORDS, "seeds": [7, 7]})
        assert err.path == "grid.seeds"

    def test_grid_nonpositive_scale(self):
        err = self.error(grid={"records": RECORDS, "seeds": [7], "scale": 0})
        assert err.path == "grid.scale"

    def test_execution_nonpositive_timeout(self):
        err = self.error(execution={"timeout_s": 0})
        assert err.path == "execution.timeout_s"

    def test_empty_sweep_rejected(self):
        err = self.error(prefetchers=[], output={"baseline": False})
        assert err.path == "prefetchers"

    def test_explicit_none_prefetcher_rejected(self):
        err = self.error(
            prefetchers=[{"name": "ebcp"}, {"name": "none", "label": "base"}]
        )
        assert err.path == "prefetchers[1].name"

    def test_loader_rejects_bad_toml(self):
        with pytest.raises(SpecError) as excinfo:
            loads_spec("version = ", fmt="toml")
        assert "invalid TOML" in excinfo.value.message

    def test_loader_rejects_unknown_format(self):
        with pytest.raises(SpecError):
            loads_spec("{}", fmt="yaml")


COMMITTED = sorted(SPEC_DIR.glob("*.toml"))


class TestRoundTrip:
    @pytest.mark.parametrize("path", COMMITTED, ids=lambda p: p.stem)
    def test_committed_specs_round_trip(self, path):
        spec = load_spec(path)
        again = loads_spec(dumps_spec(spec), fmt="json")
        assert again == spec
        assert again.fingerprint() == spec.fingerprint()

    def test_fingerprint_tracks_content(self):
        spec = spec_of()
        assert spec.fingerprint() == spec_of().fingerprint()
        changed = spec.with_grid(records=RECORDS + 1)
        assert changed.fingerprint() != spec.fingerprint()

    def test_fingerprint_covers_whole_document(self):
        # The fingerprint is a content address of the canonical form, so
        # even presentation-only changes produce a distinct identity.
        restyled = spec_of(output={"title": "Different", "x_label": "x"})
        assert restyled.fingerprint() != spec_of().fingerprint()


class TestExpansion:
    def test_baseline_dedup_per_cell(self):
        spec = SweepSpec.from_dict(
            minimal(
                grid={"records": RECORDS, "seeds": [3, 5]},
                prefetchers=[
                    {"name": "ebcp", "label": "d4", "overrides": {"prefetch_degree": 4}},
                    {"name": "ebcp", "label": "d8", "overrides": {"prefetch_degree": 8}},
                ],
            )
        )
        plan = expand(spec)
        # One baseline per (workload, seed) cell, shared by both candidates.
        assert plan.n_baselines == 2
        assert len(plan.jobs) == 2 + 2 * 2
        for meta in plan.meta:
            if meta.kind != "candidate":
                continue
            base = plan.meta[meta.baseline_index]
            assert base.kind == "baseline"
            assert (base.workload, base.seed) == (meta.workload, meta.seed)

    def test_meta_parallels_jobs(self):
        plan = expand(spec_of())
        assert len(plan.meta) == len(plan.jobs)
        for i, meta in enumerate(plan.meta):
            assert meta.index == i


class TestLocalRun:
    def test_run_spec_matches_legacy_table1(self):
        from_spec = run_experiment("table1", records=12_000, seed=7, policy=POLICY)
        legacy = table1.run_legacy(records=12_000, seed=7, policy=POLICY)
        assert from_spec == legacy

    def test_deprecated_entry_point_warns_and_matches(self):
        with pytest.warns(DeprecationWarning, match="specs/table1.toml"):
            shimmed = table1.run(records=12_000, seed=7, policy=POLICY)
        assert shimmed == table1.run_legacy(records=12_000, seed=7, policy=POLICY)

    def test_run_spec_summary_shape(self):
        result = run_spec(spec_of(), policy=POLICY)
        summary = result.summary()
        assert summary["jobs"] == len(result) == 2
        assert summary["fingerprint"] == result.spec.fingerprint()
        (candidate,) = [p for p in summary["points"] if p["kind"] == "candidate"]
        assert "improvement" in candidate


class TestWarmRegistry:
    def test_sweep_warms_each_geometry_once(self):
        """Across run_jobs calls, a distinct trace warms exactly once."""
        reset_warm_registry()
        try:
            bus = EventBus()
            warmed = []
            bus.subscribe(TraceCacheWarmed, warmed.append)
            spec = spec_of()
            plan = expand(spec)
            run_jobs(plan.jobs, policy=POLICY, bus=bus)
            first = sum(e.traces for e in warmed)
            assert first >= 1
            warmed.clear()
            # Second run over the same grid: everything already registered.
            run_jobs(expand(spec).jobs, policy=POLICY, bus=bus)
            assert sum(e.traces for e in warmed) == 0
        finally:
            reset_warm_registry()


def service_spec() -> SweepSpec:
    return SweepSpec.from_dict(
        minimal(
            name="service_identity",
            grid={"records": RECORDS, "seeds": [3, 5]},
            prefetchers=[
                {"name": "ebcp", "label": "d4", "overrides": {"prefetch_degree": 4}},
                {"name": "stream", "label": "stream"},
            ],
        )
    )


class TestServiceSweep:
    """Local and service-submitted sweeps are bit-identical."""

    def assert_identical(self, local, remote):
        assert len(local) == len(remote)
        for ours, theirs in zip(local.results, remote.results):
            assert ours.snapshot() == theirs.snapshot()

    def test_single_server_stream(self):
        spec = service_spec()
        local = run_spec(spec, policy=POLICY)
        with BackgroundService(
            ServiceConfig(port=0), policy=POLICY, start_timeout_s=120.0
        ) as svc:
            host, port = svc.address
            remote = submit_spec(spec, host=host, port=port)
        self.assert_identical(local, remote)
        assert remote.cached is not None and len(remote.cached) == len(remote)

    def test_sharded_stream(self):
        spec = service_spec()
        local = run_spec(spec, policy=POLICY)
        config = ServiceConfig(port=0, cache_entries=64)
        service = ShardedService(config=config, policy=POLICY, workers=2)
        with BackgroundService(service=service, start_timeout_s=120.0) as svc:
            host, port = svc.address
            remote = submit_spec(spec, host=host, port=port)
        self.assert_identical(local, remote)
        # The router stamps which shard served each job.
        assert all(shard is not None for shard in remote.shards)
        assert {shard["index"] for shard in remote.shards} <= {0, 1}

    def test_cache_hits_on_resubmit(self):
        spec = service_spec()
        with BackgroundService(
            ServiceConfig(port=0), policy=POLICY, start_timeout_s=120.0
        ) as svc:
            host, port = svc.address
            first = submit_spec(spec, host=host, port=port)
            second = submit_spec(spec, host=host, port=port)
        self.assert_identical(first, second)
        assert all(second.cached)
