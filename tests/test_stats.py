"""Tests for statistics containers and derived paper metrics."""

from __future__ import annotations

import pytest

from repro.engine.stats import SimulationResult, SimulationStats
from repro.memory.request import AccessKind


def make_result(
    instructions=100_000,
    epochs=400,
    offchip_cycles=200_000.0,
    cpi_perf=1.0,
    overlap=0.10,
    **stat_overrides,
):
    stats = SimulationStats(instructions=instructions, epochs=epochs,
                            offchip_cycles=offchip_cycles)
    for key, value in stat_overrides.items():
        setattr(stats, key, value)
    return SimulationResult(
        workload="w", prefetcher="p", stats=stats, cpi_perf=cpi_perf, overlap=overlap
    )


class TestTiming:
    def test_cpi_equation(self):
        # cycles = 100k * 1.0 * 0.9 + 200k = 290k -> CPI 2.9
        result = make_result()
        assert result.onchip_cycles == pytest.approx(90_000.0)
        assert result.cpi == pytest.approx(2.9)
        assert result.offchip_cpi == pytest.approx(2.0)

    def test_zero_instructions(self):
        result = make_result(instructions=0)
        assert result.cpi == 0.0
        assert result.offchip_cpi == 0.0


class TestPaperMetrics:
    def test_epochs_per_kilo_inst(self):
        assert make_result().epochs_per_kilo_inst == pytest.approx(4.0)

    def test_miss_rates(self):
        result = make_result()
        result.stats.offchip_misses[AccessKind.IFETCH] = 100
        result.stats.offchip_misses[AccessKind.LOAD] = 623
        assert result.l2_inst_miss_rate == pytest.approx(1.0)
        assert result.l2_load_miss_rate == pytest.approx(6.23)

    def test_coverage(self):
        result = make_result()
        result.stats.prefetch_hits[AccessKind.LOAD] = 30
        result.stats.offchip_misses[AccessKind.LOAD] = 70
        assert result.coverage == pytest.approx(0.3)

    def test_coverage_no_misses(self):
        assert make_result().coverage == 0.0

    def test_accuracy(self):
        result = make_result(prefetches_filled=200)
        result.stats.prefetch_hits[AccessKind.LOAD] = 50
        assert result.accuracy == pytest.approx(0.25)

    def test_accuracy_no_prefetches(self):
        assert make_result().accuracy == 0.0

    def test_bus_utilization(self):
        result = make_result(read_bytes=500, read_budget_bytes=1000)
        assert result.read_bus_utilization == pytest.approx(0.5)


class TestComparison:
    def test_improvement_over(self):
        base = make_result(offchip_cycles=400_000.0)  # CPI 4.9
        better = make_result(offchip_cycles=200_000.0)  # CPI 2.9
        assert better.improvement_over(base) == pytest.approx(4.9 / 2.9 - 1.0)
        assert base.improvement_over(better) < 0

    def test_epi_reduction(self):
        base = make_result(epochs=400)
        better = make_result(epochs=300)
        assert better.epi_reduction_over(base) == pytest.approx(0.25)

    def test_epi_reduction_zero_base(self):
        base = make_result(epochs=0)
        assert make_result().epi_reduction_over(base) == 0.0


class TestZeroInstructionGuards:
    """Every derived metric must be well-defined on an empty run."""

    def test_all_rates_are_zero(self):
        result = make_result(instructions=0, epochs=0, offchip_cycles=0.0)
        assert result.cpi == 0.0
        assert result.offchip_cpi == 0.0
        assert result.epochs_per_kilo_inst == 0.0
        assert result.l2_inst_miss_rate == 0.0
        assert result.l2_load_miss_rate == 0.0
        assert result.coverage == 0.0
        assert result.accuracy == 0.0
        assert result.read_bus_utilization == 0.0

    def test_improvement_over_zero_cpi(self):
        empty = make_result(instructions=0, offchip_cycles=0.0)
        assert empty.improvement_over(make_result()) == 0.0

    def test_to_dict_survives_empty_run(self):
        d = make_result(instructions=0, epochs=0, offchip_cycles=0.0).to_dict()
        assert d["cpi"] == 0.0 and d["epochs"] == 0


class TestStatsSerialization:
    def test_round_trip(self):
        stats = SimulationStats(instructions=1000, epochs=42, offchip_cycles=5.5)
        stats.offchip_misses[AccessKind.LOAD] = 7
        stats.prefetch_hits[AccessKind.IFETCH] = 3
        stats.termination_reasons["drain"] = 9
        rebuilt = SimulationStats.from_dict(stats.to_dict())
        assert rebuilt == stats

    def test_to_dict_is_json_safe(self):
        import json

        stats = SimulationStats(instructions=10)
        stats.offchip_misses[AccessKind.STORE] = 1
        payload = json.loads(json.dumps(stats.to_dict()))
        assert payload["offchip_misses"]["store"] == 1

    def test_from_dict_ignores_unknown_keys(self):
        stats = SimulationStats.from_dict({"instructions": 5, "not_a_field": 1})
        assert stats.instructions == 5
        assert not hasattr(stats, "not_a_field")


class TestContainers:
    def test_per_kilo_inst(self):
        stats = SimulationStats(instructions=2000)
        assert stats.per_kilo_inst(4) == pytest.approx(2.0)
        assert SimulationStats().per_kilo_inst(4) == 0.0

    def test_totals(self):
        stats = SimulationStats()
        stats.offchip_misses[AccessKind.LOAD] = 3
        stats.offchip_misses[AccessKind.IFETCH] = 2
        stats.prefetch_hits[AccessKind.LOAD] = 1
        assert stats.total_offchip_misses == 5
        assert stats.total_prefetch_hits == 1

    def test_to_dict_keys(self):
        d = make_result().to_dict()
        for key in ("workload", "prefetcher", "cpi", "coverage", "accuracy", "epochs"):
            assert key in d
