"""Determinism regression: optimized and parallel paths match frozen goldens.

``tests/data/goldens.json`` holds ``SimulationStats.to_dict()`` captured
from the pre-optimization simulator (before the inlined L1 fast path,
cached trace columns and hierarchy re-probe elision) for every commercial
workload with and without the default EBCP.  Any hot-path "optimization"
that changes a single counter — and any divergence between in-process and
process-pool execution — fails here bit-for-bit.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.engine.config import ProcessorConfig
from repro.engine.simulator import EpochSimulator
from repro.parallel import JobSpec, run_jobs
from repro.prefetchers.registry import build_prefetcher
from repro.workloads.registry import COMMERCIAL_WORKLOADS, make_workload

GOLDENS = json.loads((Path(__file__).parent / "data" / "goldens.json").read_text())
RECORDS = GOLDENS["records"]
SEED = GOLDENS["seed"]


def _expected(workload: str, scheme: str) -> dict:
    return GOLDENS["workloads"][workload][scheme]


@pytest.mark.parametrize("workload", COMMERCIAL_WORKLOADS)
@pytest.mark.parametrize("scheme", ["none", "ebcp"])
def test_sequential_matches_golden(workload: str, scheme: str) -> None:
    trace = make_workload(workload, records=RECORDS, seed=SEED)
    prefetcher = None if scheme == "none" else build_prefetcher(scheme)
    result = EpochSimulator(
        ProcessorConfig.scaled(),
        prefetcher,
        cpi_perf=trace.meta.cpi_perf,
        overlap=trace.meta.overlap,
    ).run(trace)
    assert result.stats.to_dict() == _expected(workload, scheme)


def test_parallel_matches_golden() -> None:
    """Every golden point run through the process pool is bit-identical."""
    config = ProcessorConfig.scaled()
    pairs = [(w, s) for w in COMMERCIAL_WORKLOADS for s in ("none", "ebcp")]
    specs = [
        JobSpec(
            workload=w,
            records=RECORDS,
            seed=SEED,
            config=config,
            prefetcher=None if s == "none" else build_prefetcher(s),
            label=s,
        )
        for w, s in pairs
    ]
    results = run_jobs(specs, jobs=2)
    for (workload, scheme), result in zip(pairs, results):
        assert result.stats.to_dict() == _expected(workload, scheme), (workload, scheme)
