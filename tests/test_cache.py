"""Unit and property tests for the set-associative cache."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import SetAssociativeCache


def make_cache(size=4096, ways=4, line=64):
    return SetAssociativeCache(size, ways, line, "test")


class TestGeometry:
    def test_basic_geometry(self):
        cache = make_cache(size=4096, ways=4, line=64)
        assert cache.n_sets == 16
        assert cache.line_shift == 6

    def test_single_set(self):
        cache = SetAssociativeCache(256, 4, 64)
        assert cache.n_sets == 1

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(4096, 4, 48)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(3 * 64 * 4, 4, 64)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(0, 4, 64)
        with pytest.raises(ValueError):
            SetAssociativeCache(4096, 0, 64)

    def test_line_of(self):
        cache = make_cache()
        assert cache.line_of(0) == 0
        assert cache.line_of(63) == 0
        assert cache.line_of(64) == 1
        assert cache.line_of(1000) == 15


class TestHitMiss:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        assert not cache.access(5)
        assert cache.access(5)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lookup_does_not_insert(self):
        cache = make_cache()
        assert not cache.lookup(7)
        assert not cache.contains(7)

    def test_contains_no_stats(self):
        cache = make_cache()
        cache.insert(3)
        before = cache.stats.accesses
        assert cache.contains(3)
        assert not cache.contains(4)
        assert cache.stats.accesses == before

    def test_distinct_sets_do_not_conflict(self):
        cache = make_cache(size=1024, ways=1, line=64)  # 16 sets, direct-mapped
        for line in range(16):
            cache.insert(line)
        for line in range(16):
            assert cache.contains(line)


class TestLRU:
    def test_lru_eviction_order(self):
        # Direct control: 1 set, 4 ways.
        cache = SetAssociativeCache(256, 4, 64)
        for line in range(4):
            cache.insert(line)
        cache.lookup(0)  # 0 becomes MRU; 1 is now LRU
        evicted = cache.insert(4)
        assert evicted == 1

    def test_insert_refreshes_lru(self):
        cache = SetAssociativeCache(256, 4, 64)
        for line in range(4):
            cache.insert(line)
        cache.insert(0)  # refresh 0
        evicted = cache.insert(4)
        assert evicted == 1

    def test_lookup_without_update_preserves_order(self):
        cache = SetAssociativeCache(256, 4, 64)
        for line in range(4):
            cache.insert(line)
        cache.lookup(0, update_lru=False)
        evicted = cache.insert(4)
        assert evicted == 0  # 0 stayed LRU

    def test_eviction_counts(self):
        cache = SetAssociativeCache(256, 4, 64)
        for line in range(6):
            cache.insert(line)
        assert cache.stats.evictions == 2
        assert cache.occupancy == 4


class TestInvalidateFlush:
    def test_invalidate(self):
        cache = make_cache()
        cache.insert(9)
        assert cache.invalidate(9)
        assert not cache.contains(9)
        assert not cache.invalidate(9)

    def test_flush_preserves_stats(self):
        cache = make_cache()
        cache.access(1)
        cache.access(1)
        cache.flush()
        assert cache.occupancy == 0
        assert cache.stats.hits == 1

    def test_resident_lines_roundtrip(self):
        cache = make_cache()
        lines = [0, 17, 33, 255, 1024]
        for line in lines:
            cache.insert(line)
        assert sorted(cache.resident_lines()) == sorted(lines)


class TestStats:
    def test_miss_ratio(self):
        cache = make_cache()
        cache.access(1)
        cache.access(1)
        cache.access(2)
        assert cache.stats.miss_ratio == pytest.approx(2 / 3)

    def test_miss_ratio_empty(self):
        assert make_cache().stats.miss_ratio == 0.0

    def test_reset(self):
        cache = make_cache()
        cache.access(1)
        cache.stats.reset()
        assert cache.stats.accesses == 0


@st.composite
def line_sequences(draw):
    return draw(st.lists(st.integers(min_value=0, max_value=512), min_size=1, max_size=300))


class TestProperties:
    @given(line_sequences())
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, lines):
        cache = SetAssociativeCache(1024, 2, 64)  # 16 lines total
        for line in lines:
            cache.access(line)
        assert cache.occupancy <= 16
        for index in range(cache.n_sets):
            assert cache.set_occupancy(index) <= cache.ways

    @given(line_sequences())
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_lru_model(self, lines):
        """Full-behavioural check against a simple reference LRU."""
        cache = SetAssociativeCache(512, 4, 64)  # 2 sets x 4 ways
        reference: dict[int, list[int]] = {0: [], 1: []}  # MRU-first lists

        for line in lines:
            index = line & 1
            tags = reference[index]
            expected_hit = line in tags
            actual_hit = cache.access(line)
            assert actual_hit == expected_hit
            if expected_hit:
                tags.remove(line)
            elif len(tags) == 4:
                tags.pop()  # evict LRU (tail)
            tags.insert(0, line)

        for index, tags in reference.items():
            for tag in tags:
                assert cache.contains(tag)

    @given(line_sequences())
    @settings(max_examples=40, deadline=None)
    def test_insert_then_contains(self, lines):
        cache = SetAssociativeCache(64 * 1024, 16, 64)  # big enough: no eviction
        for line in lines:
            cache.insert(line)
        for line in lines:
            assert cache.contains(line)
