"""Tests for counters, gauges, fixed-bucket histograms and the registry."""

from __future__ import annotations

import pytest

from repro.obs import EventBus, MetricsRegistry, SimulationMetrics
from repro.obs.events import (
    BudgetExhausted,
    EpochClosed,
    PrefetchHit,
    TableRead,
    TableWrite,
)
from repro.obs.metrics import Counter, Gauge, Histogram


class TestCounter:
    def test_inc(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_to_dict(self):
        assert Counter("c").to_dict() == {"type": "counter", "value": 0}


class TestGauge:
    def test_set_tracks_extremes_and_mean(self):
        gauge = Gauge("g")
        for value in (2.0, 8.0, 5.0):
            gauge.set(value)
        assert gauge.value == 5.0
        assert gauge.min == 2.0
        assert gauge.max == 8.0
        assert gauge.mean == pytest.approx(5.0)

    def test_empty_gauge_serializes_to_zeros(self):
        d = Gauge("g").to_dict()
        assert d["min"] == 0.0 and d["max"] == 0.0 and d["samples"] == 0


class TestHistogram:
    def test_bucket_bounds_are_inclusive(self):
        # Value exactly on a bound lands in that bound's bucket.
        hist = Histogram("h", (1, 2, 4, 8))
        for value in (1, 2, 4, 8):
            hist.observe(value)
        assert hist.counts == [1, 1, 1, 1]
        assert hist.overflow == 0

    def test_value_between_bounds_rounds_up(self):
        hist = Histogram("h", (1, 2, 4, 8))
        hist.observe(3)  # lands in the "<= 4" bucket
        assert hist.counts == [0, 0, 1, 0]

    def test_overflow_bucket(self):
        hist = Histogram("h", (1, 2, 4))
        hist.observe(5)
        hist.observe(100)
        assert hist.overflow == 2
        assert sum(hist.counts) == 0
        assert hist.total == 2

    def test_mean_min_max(self):
        hist = Histogram("h", (10, 20))
        for value in (2, 4, 12):
            hist.observe(value)
        assert hist.mean == pytest.approx(6.0)
        assert hist.to_dict()["min"] == 2
        assert hist.to_dict()["max"] == 12

    def test_quantile(self):
        hist = Histogram("h", (1, 2, 4, 8))
        for value in (1, 1, 2, 2, 2, 4, 8, 8, 8, 8):
            hist.observe(value)
        assert hist.quantile(0.0) == 0.0 if hist.total == 0 else True
        assert hist.quantile(0.2) == 1
        assert hist.quantile(0.5) == 2
        assert hist.quantile(1.0) == 8

    def test_quantile_of_empty_histogram(self):
        assert Histogram("h", (1,)).quantile(0.5) == 0.0

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram("h", (1,)).quantile(1.5)

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", (1, 1, 2))
        with pytest.raises(ValueError):
            Histogram("h", (4, 2))
        with pytest.raises(ValueError):
            Histogram("h", ())

    def test_to_dict_counts_add_up(self):
        hist = Histogram("h", (1, 2))
        for value in (1, 2, 3):
            hist.observe(value)
        d = hist.to_dict()
        assert sum(d["counts"]) + d["overflow"] == d["total"] == 3


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_names_and_contains(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert registry.names() == ["a", "b"]
        assert "a" in registry and "c" not in registry

    def test_to_dict_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        snapshot = registry.to_dict()
        assert snapshot == {"hits": {"type": "counter", "value": 3}}


def _epoch_closed(**overrides):
    defaults = dict(
        epoch=None,
        index=0,
        n_misses=2,
        start_cycle=0.0,
        duration_cycles=400.0,
        read_utilization=0.5,
        queueing_cycles=0.0,
        measured=True,
        emab_occupancy=4,
        buffer_occupancy=8,
    )
    defaults.update(overrides)
    return EpochClosed(**defaults)


class TestSimulationMetrics:
    def test_epoch_close_feeds_epoch_instruments(self):
        bus = EventBus()
        metrics = SimulationMetrics(bus)
        bus.emit(_epoch_closed(n_misses=3))
        bus.emit(_epoch_closed(index=1, n_misses=1, read_utilization=0.9))
        assert metrics.epochs.value == 2
        assert metrics.epoch_misses.total == 2
        assert metrics.epoch_mlp.mean == pytest.approx(2.0)
        assert metrics.bus_queue.value == pytest.approx(0.9)
        assert metrics.buffer_occupancy.value == 8

    def test_negative_emab_occupancy_not_observed(self):
        bus = EventBus()
        metrics = SimulationMetrics(bus)
        bus.emit(_epoch_closed(emab_occupancy=-1))
        assert metrics.emab_occupancy.total == 0

    def test_unknown_lead_time_not_observed(self):
        bus = EventBus()
        metrics = SimulationMetrics(bus)
        bus.emit(PrefetchHit(line=1, epoch_index=5, issue_epoch=-1, source="s", measured=True))
        bus.emit(PrefetchHit(line=2, epoch_index=5, issue_epoch=3, source="s", measured=True))
        assert metrics.hits.value == 2
        assert metrics.lead_epochs.total == 1
        assert metrics.lead_epochs.mean == pytest.approx(2.0)

    def test_table_traffic_counts_bytes(self):
        bus = EventBus()
        metrics = SimulationMetrics(bus)
        bus.emit(TableRead(nbytes=64, purpose="lookup"))
        bus.emit(TableRead(nbytes=64, purpose="update"))
        bus.emit(TableWrite(nbytes=32, purpose="lru"))
        assert metrics.table_reads.value == 128
        assert metrics.table_writes.value == 32

    def test_budget_exhausted_updates_queue_gauge(self):
        bus = EventBus()
        metrics = SimulationMetrics(bus)
        bus.emit(BudgetExhausted(bus="read", priority=2, nbytes=64, utilization=1.25))
        assert metrics.budget_exhausted.value == 1
        assert metrics.bus_queue.value == pytest.approx(1.25)

    def test_per_type_tally(self):
        bus = EventBus()
        metrics = SimulationMetrics(bus)
        bus.emit(TableRead(nbytes=1, purpose="lookup"))
        bus.emit(TableRead(nbytes=1, purpose="lookup"))
        assert metrics.events_by_type.value == 2
        assert metrics.registry["events.TableRead"].value == 2

    def test_detach_stops_observing(self):
        bus = EventBus()
        metrics = SimulationMetrics(bus)
        metrics.detach()
        bus.emit(TableRead(nbytes=1, purpose="lookup"))
        assert metrics.table_reads.value == 0
        assert not bus.wants(TableRead)

    def test_shared_registry(self):
        registry = MetricsRegistry()
        metrics = SimulationMetrics(EventBus(), registry)
        assert metrics.registry is registry
        assert "epochs_closed" in registry
