"""Shape tests over the paper-figure experiment modules.

These run the real experiment harness at a reduced trace length and
assert the paper's *qualitative* findings — orderings, knees and
crossovers — rather than absolute numbers.  The full-length runs live in
``benchmarks/`` and are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.experiments import figure6, figure7, figure9, table1
from repro.experiments.common import DEFAULT_RECORDS
from repro.workloads.registry import COMMERCIAL_WORKLOADS

RECORDS = 140_000  # reduced but still several passes over each workload
SEED = 7


@pytest.fixture(scope="module")
def fig9():
    return figure9.run(records=RECORDS, seed=SEED)


class TestTable1:
    def test_renders_all_workloads(self):
        result = table1.run(records=RECORDS, seed=SEED)
        text = result.render()
        for workload in COMMERCIAL_WORKLOADS:
            assert workload in text
        assert len(result.rows) == 4

    def test_measured_tracks_paper_loosely(self):
        """At reduced length the baseline should still be within ~35 % of
        every Table 1 cell (the full-length bench is much tighter).
        Tiny-magnitude cells (< 0.5 events/kinst) get an absolute bound
        instead: relative error on 0.1-ish rates is dominated by noise."""
        result = table1.run(records=RECORDS, seed=SEED)
        for row in result.rows:
            for measured_col, paper_col in ((1, 2), (3, 4), (5, 6), (7, 8)):
                measured = float(row[measured_col])
                paper = float(row[paper_col])
                if paper < 0.5:
                    assert measured == pytest.approx(paper, abs=0.08), row[0]
                else:
                    assert measured == pytest.approx(paper, rel=0.35), row[0]


class TestFigure9Shape:
    def test_ebcp_wins_everywhere(self, fig9):
        for workload in COMMERCIAL_WORKLOADS:
            ebcp = fig9.value(workload, "ebcp")
            for scheme in figure9.SCHEMES:
                if scheme == "ebcp":
                    continue
                assert ebcp >= fig9.value(workload, scheme), (workload, scheme)

    def test_ebcp_beats_ebcp_minus(self, fig9):
        for workload in COMMERCIAL_WORKLOADS:
            assert fig9.value(workload, "ebcp") > fig9.value(workload, "ebcp_minus")

    def test_depth_beats_width(self, fig9):
        """Solihin 6,1 > Solihin 3,2 on all four benchmarks."""
        for workload in COMMERCIAL_WORKLOADS:
            assert fig9.value(workload, "solihin_6_1") >= fig9.value(
                workload, "solihin_3_2"
            ), workload

    def test_capacity_matters(self, fig9):
        for workload in COMMERCIAL_WORKLOADS:
            assert fig9.value(workload, "ghb_large") >= fig9.value(workload, "ghb_small")
            assert fig9.value(workload, "tcp_large") >= fig9.value(workload, "tcp_small")

    def test_small_onchip_schemes_ineffective(self, fig9):
        """GHB small / TCP small / stream gain little on these workloads."""
        for workload in COMMERCIAL_WORKLOADS:
            for scheme in ("ghb_small", "tcp_small", "stream"):
                assert fig9.value(workload, scheme) < 0.10, (workload, scheme)

    def test_sms_split_personality(self, fig9):
        """SMS does relatively well on the data-dominated workloads but
        poorly where instruction misses matter (no I-prefetching)."""
        data_side = min(
            fig9.value("database", "sms"), fig9.value("specjbb2005", "sms")
        )
        inst_side = max(fig9.value("tpcw", "sms"), fig9.value("jappserver2004", "sms"))
        assert data_side > inst_side

    def test_ebcp_headline_magnitudes(self, fig9):
        """Degree-6 EBCP should land within a few points of the paper's
        20/12/28/24 (reduced-length tolerance)."""
        paper = {
            "database": 0.20,
            "tpcw": 0.12,
            "specjbb2005": 0.28,
            "jappserver2004": 0.24,
        }
        for workload, expected in paper.items():
            measured = fig9.value(workload, "ebcp")
            assert measured == pytest.approx(expected, abs=0.10), workload


class TestFigure6Shape:
    def test_table_size_knee(self):
        result = figure6.run(records=RECORDS, seed=SEED)
        for workload in COMMERCIAL_WORKLOADS:
            tiny = result.value(workload, 1024)
            big = result.value(workload, 128 * 1024)
            biggest = result.value(workload, 512 * 1024)
            # Erosion below the knee, plateau above it.
            assert big > tiny, workload
            assert biggest == pytest.approx(big, abs=0.06), workload


class TestFigure7Shape:
    def test_buffer_size_knee(self):
        result = figure7.run(records=RECORDS, seed=SEED)
        for workload in COMMERCIAL_WORKLOADS:
            small = result.value(workload, 16)
            tuned = result.value(workload, 64)
            huge = result.value(workload, 1024)
            assert tuned > small, workload
            # 64 entries is "adequate": within a few points of 1024.
            assert huge - tuned < 0.08, workload


class TestDefaults:
    def test_default_records_constant(self):
        assert DEFAULT_RECORDS >= 200_000
