"""Tests for the tiered result cache and the client's jittered backoff.

The disk tier's contract: a spilled entry survives process death and is
served back **bit-identical** after a restart; anything corrupt — bad
sidecar, undecodable payload, entry at the wrong address — is
quarantined and transparently recomputed, never served.  The unit tests
exercise :class:`ResultCache` directly (a second instance over the same
directory *is* a restart); the service tests drive the same path
through a real :class:`SimulationService` end to end.
"""

from __future__ import annotations

import dataclasses
import json
import shutil

import pytest

from repro.engine.config import ProcessorConfig
from repro.parallel.jobs import JobSpec
from repro.resilience.integrity import checksum_path, write_checksum
from repro.resilience.policy import ExecutionPolicy
from repro.service import BackgroundService, ResultCache, ServiceClient, ServiceConfig
from repro.service.client import _ClientBase

RECORDS = 3_000
WORKLOAD = "pointer_chase"
POLICY = ExecutionPolicy(jobs=1)


@pytest.fixture(scope="module")
def result():
    return JobSpec(
        workload=WORKLOAD,
        records=RECORDS,
        seed=7,
        config=ProcessorConfig.scaled(),
        prefetcher=None,
        label="none",
    ).run()


def make_key(seed: int = 7):
    return ResultCache.key(f"trace-fp-{seed}", (1, (2, 3)), "none", None)


class TestDiskTier:
    def test_round_trip_is_bit_identical(self, result, tmp_path):
        cache = ResultCache(max_entries=4, spill_dir=tmp_path)
        key = make_key()
        cache.put(key, result)
        assert cache.disk_entries() == 1
        assert cache.spilled == 1

        # A fresh instance over the same directory is a restart: the
        # memory tier is empty, the disk tier serves the entry.
        reborn = ResultCache(max_entries=4, spill_dir=tmp_path)
        served = reborn.get(key)
        assert served is not None
        assert reborn.disk_hits == 1 and reborn.hits == 0
        assert dataclasses.asdict(served.stats) == dataclasses.asdict(result.stats)
        assert served.to_dict() == result.to_dict()

    def test_disk_hit_promotes_to_memory(self, result, tmp_path):
        cache = ResultCache(max_entries=4, spill_dir=tmp_path)
        key = make_key()
        cache.put(key, result)
        reborn = ResultCache(max_entries=4, spill_dir=tmp_path)
        reborn.get(key)
        reborn.get(key)
        assert reborn.disk_hits == 1  # second get came from memory
        assert reborn.hits == 1

    def test_entry_has_checksum_sidecar(self, result, tmp_path):
        cache = ResultCache(max_entries=4, spill_dir=tmp_path)
        key = make_key()
        cache.put(key, result)
        path = cache.entry_path(key)
        assert path.exists()
        assert checksum_path(path).exists()

    def test_memoryless_cache_still_spills(self, result, tmp_path):
        # cache_entries=0 disables the memory LRU, not the disk tier.
        cache = ResultCache(max_entries=0, spill_dir=tmp_path)
        key = make_key()
        cache.put(key, result)
        assert len(cache) == 0
        assert cache.disk_entries() == 1
        assert cache.get(key) is not None

    def test_corrupt_payload_quarantines_and_misses(self, result, tmp_path):
        cache = ResultCache(max_entries=4, spill_dir=tmp_path)
        key = make_key()
        cache.put(key, result)
        path = cache.entry_path(key)
        path.write_text(path.read_text(encoding="utf-8")[:-40], encoding="utf-8")

        reborn = ResultCache(max_entries=4, spill_dir=tmp_path)
        assert reborn.get(key) is None
        assert reborn.quarantined == 1
        assert reborn.misses == 1
        assert not path.exists()  # moved aside, not left to fail again
        quarantine = tmp_path / "quarantine"
        assert quarantine.exists() and any(quarantine.iterdir())

    def test_corrupt_sidecar_quarantines(self, result, tmp_path):
        cache = ResultCache(max_entries=4, spill_dir=tmp_path)
        key = make_key()
        cache.put(key, result)
        sidecar = checksum_path(cache.entry_path(key))
        sidecar.write_text("0" * 64 + "\n", encoding="utf-8")
        assert ResultCache(max_entries=4, spill_dir=tmp_path).get(key) is None

    def test_valid_checksum_but_garbage_json_quarantines(self, result, tmp_path):
        cache = ResultCache(max_entries=4, spill_dir=tmp_path)
        key = make_key()
        cache.put(key, result)
        path = cache.entry_path(key)
        path.write_text("not json {", encoding="utf-8")
        write_checksum(path)  # integrity passes; decoding must not
        reborn = ResultCache(max_entries=4, spill_dir=tmp_path)
        assert reborn.get(key) is None
        assert reborn.quarantined == 1

    def test_entry_at_wrong_address_quarantines(self, result, tmp_path):
        cache = ResultCache(max_entries=4, spill_dir=tmp_path)
        cache.put(make_key(seed=1), result)
        src = cache.entry_path(make_key(seed=1))
        dst = cache.entry_path(make_key(seed=2))
        shutil.copy(src, dst)
        write_checksum(dst)
        reborn = ResultCache(max_entries=4, spill_dir=tmp_path)
        assert reborn.get(make_key(seed=2)) is None
        assert reborn.quarantined == 1
        assert reborn.get(make_key(seed=1)) is not None  # untouched

    def test_recompute_after_quarantine_repopulates(self, result, tmp_path):
        cache = ResultCache(max_entries=4, spill_dir=tmp_path)
        key = make_key()
        cache.put(key, result)
        cache.entry_path(key).write_text("garbage", encoding="utf-8")
        reborn = ResultCache(max_entries=4, spill_dir=tmp_path)
        assert reborn.get(key) is None  # the miss that triggers recompute
        reborn.put(key, result)  # ... the service re-simulates and re-puts
        assert reborn.get(key) is not None
        assert reborn.disk_entries() == 1

    def test_disk_pruning_drops_oldest(self, result, tmp_path):
        import os
        import time

        cache = ResultCache(max_entries=2, spill_dir=tmp_path, max_disk_entries=3)
        now = time.time()
        for seed in range(5):
            cache.put(make_key(seed=seed), result)
            path = cache.entry_path(make_key(seed=seed))
            # Back-date so early seeds are oldest and a fresh write is
            # always newest (pruning runs inside put()).
            stamp = now - (10 - seed)
            os.utime(path, (stamp, stamp))
        assert cache.disk_entries() == 3
        assert cache.get(make_key(seed=0)) is None  # oldest pruned
        assert cache.get(make_key(seed=4)) is not None

    def test_info_reports_the_disk_tier(self, result, tmp_path):
        cache = ResultCache(max_entries=4, spill_dir=tmp_path)
        cache.put(make_key(), result)
        cache.clear()  # memory only
        cache.get(make_key())
        info = cache.info()
        assert info["disk"]["entries"] == 1
        assert info["disk"]["hits"] == 1
        assert info["disk"]["spilled"] == 1
        assert info["disk"]["quarantined"] == 0

    def test_no_spill_dir_means_no_disk_fields(self, result):
        cache = ResultCache(max_entries=4)
        cache.put(make_key(), result)
        assert "disk" not in cache.info()
        assert cache.disk_entries() == 0


class TestServiceRestartSurvival:
    """The acceptance property: warm results outlive a full restart."""

    def _serve_once(self, tmp_path, seed=7, expect_cached=False):
        config = ServiceConfig(port=0, cache_entries=16, cache_dir=str(tmp_path))
        with BackgroundService(config=config, policy=POLICY) as svc:
            with ServiceClient(*svc.address, timeout_s=120.0, retries=0) as client:
                served = client.simulate(WORKLOAD, "ebcp", records=RECORDS, seed=seed)
                assert served.cached is expect_cached
                stats = client.stats()
                return served, stats

    def test_warm_result_survives_full_restart(self, tmp_path):
        first, _ = self._serve_once(tmp_path, expect_cached=False)
        # The service process is gone; only the spill directory remains.
        second, stats = self._serve_once(tmp_path, expect_cached=True)
        assert dataclasses.asdict(second.result.stats) == dataclasses.asdict(
            first.result.stats
        )
        assert second.result.to_dict() == first.result.to_dict()
        assert stats["cache"]["disk"]["hits"] == 1

    def test_corrupt_entry_is_quarantined_and_recomputed(self, tmp_path):
        first, _ = self._serve_once(tmp_path, expect_cached=False)
        [entry] = [
            p
            for p in tmp_path.glob("*.json")
            if not p.name.endswith(".sha256")
        ]
        payload = json.loads(entry.read_text(encoding="utf-8"))
        payload["snapshot"]["stats"] = {}
        entry.write_text(json.dumps(payload), encoding="utf-8")
        # Sidecar now disagrees -> quarantine -> recompute, same answer.
        second, stats = self._serve_once(tmp_path, expect_cached=False)
        assert second.result.to_dict() == first.result.to_dict()
        assert stats["cache"]["disk"]["quarantined"] == 1
        assert (tmp_path / "quarantine").exists()


class TestJitteredBackoff:
    def test_exponential_shape_without_jitter(self):
        client = _ClientBase(backoff_s=0.25, jitter=False)
        assert client._backoff_for(0) == 0.0
        assert client._backoff_for(1) == 0.25
        assert client._backoff_for(2) == 0.5
        assert client._backoff_for(3) == 1.0

    def test_cap_at_max_backoff(self):
        client = _ClientBase(backoff_s=0.25, max_backoff_s=2.0, jitter=False)
        assert client._backoff_for(10) == 2.0

    def test_jitter_only_shortens_within_half(self):
        client = _ClientBase(backoff_s=0.25, max_backoff_s=10.0)
        for attempt in range(1, 8):
            full = min(0.25 * 2 ** (attempt - 1), 10.0)
            for _ in range(50):
                delay = client._backoff_for(attempt)
                assert full * 0.5 <= delay <= full

    def test_jitter_actually_varies(self):
        client = _ClientBase(backoff_s=1.0)
        delays = {client._backoff_for(3) for _ in range(50)}
        assert len(delays) > 1

    def test_zero_backoff_stays_zero(self):
        assert _ClientBase(backoff_s=0.0)._backoff_for(5) == 0.0
